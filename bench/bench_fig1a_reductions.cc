// E1 — Figure 1a: the reduction diagram, executed.
//
// Every arrow of the figure that this library implements is run on a suite
// of random partitioned databases and verified against a ground-truth
// solver for the source problem. "verified" means exact equality of the
// numeric outputs on every instance (these are reductions, not
// approximations). Red arrows in the figure (FGMC → SVC) are the paper's
// contribution; they appear at the bottom of the table.

#include <iostream>

#include "bench_util.h"
#include "shapley/analysis/witnesses.h"
#include "shapley/engines/fgmc.h"
#include "shapley/engines/pqe.h"
#include "shapley/engines/svc.h"
#include "shapley/gen/generators.h"
#include "shapley/query/query_parser.h"
#include "shapley/reductions/interpolation.h"
#include "shapley/reductions/lemmas.h"

namespace {

using namespace shapley;
using shapley::bench::Banner;
using shapley::bench::PassFail;
using shapley::bench::Table;
using shapley::bench::Timer;

constexpr int kInstances = 10;

PartitionedDatabase Instance(const std::shared_ptr<Schema>& schema,
                             uint64_t seed, double exo_fraction) {
  RandomDatabaseOptions options;
  options.num_facts = 7;
  options.domain_size = 3;
  options.exogenous_fraction = exo_fraction;
  options.seed = seed;
  return RandomPartitionedDatabase(schema, options);
}

}  // namespace

int main() {
  Banner(
      "E1 / Figure 1a — every implemented reduction arrow, verified on "
      "random instances");
  Table table({"arrow", "via", "instances", "verified", "ms"},
              {34, 26, 11, 12, 10});
  table.PrintHeader();

  // --- MC -> GMC, FMC -> FGMC: trivial inclusions (run FGMC on Dx = ∅). ---
  {
    auto schema = Schema::Create();
    UcqPtr q = ParseUcq(schema, "R(x), S(x,y) | T(y)");
    BruteForceFgmc fgmc;
    Timer timer;
    bool ok = true;
    for (int i = 0; i < kInstances; ++i) {
      PartitionedDatabase db = Instance(schema, 100 + i, 0.0);
      ok = ok && fgmc.Gmc(*q, db) == fgmc.CountBySize(*q, db).SumOfCoefficients();
    }
    table.PrintRow("MC <= GMC, FMC <= FGMC", "inclusion (Dx = empty)",
                   kInstances, PassFail(ok), timer.ElapsedMs());
  }

  // --- SVC <= FGMC (Claim A.1). ---
  {
    auto schema = Schema::Create();
    UcqPtr q = ParseUcq(schema, "R(x), S(x,y) | T(y)");
    BruteForceSvc direct;
    SvcViaFgmc via(std::make_shared<BruteForceFgmc>());
    Timer timer;
    bool ok = true;
    for (int i = 0; i < kInstances; ++i) {
      PartitionedDatabase db = Instance(schema, 200 + i, 0.3);
      for (const Fact& f : db.endogenous().facts()) {
        ok = ok && via.Value(*q, db, f) == direct.Value(*q, db, f);
      }
    }
    table.PrintRow("SVC <= FGMC", "Claim A.1", kInstances, PassFail(ok),
                   timer.ElapsedMs());
  }

  // --- FGMC <= SPPQE (Claim A.2, interpolation). ---
  {
    auto schema = Schema::Create();
    UcqPtr q = ParseUcq(schema, "R(x), S(x,y) | T(y)");
    BruteForceFgmc direct;
    InterpolationFgmc via(std::make_shared<BruteForcePqe>());
    Timer timer;
    bool ok = true;
    for (int i = 0; i < kInstances; ++i) {
      PartitionedDatabase db = Instance(schema, 300 + i, 0.3);
      ok = ok && via.CountBySize(*q, db) == direct.CountBySize(*q, db);
    }
    table.PrintRow("FGMC <= SPPQE", "Claim A.2 (Vandermonde)", kInstances,
                   PassFail(ok), timer.ElapsedMs());
  }

  // --- SPPQE <= FGMC (Claim A.2, same database). ---
  {
    auto schema = Schema::Create();
    CqPtr q = ParseCq(schema, "R(x), S(x,y), T(y)");
    BruteForcePqe direct;
    FgmcBackedSppqe via(std::make_shared<BruteForceFgmc>());
    Timer timer;
    bool ok = true;
    for (int i = 0; i < kInstances; ++i) {
      PartitionedDatabase pdb = Instance(schema, 400 + i, 0.25);
      ProbabilisticDatabase db = ProbabilisticDatabase::FromPartitioned(
          pdb, BigRational(BigInt(1), BigInt(3)));
      ok = ok && via.Probability(*q, db) == direct.Probability(*q, db);
    }
    table.PrintRow("SPPQE <= FGMC", "Claim A.2 (evaluation)", kInstances,
                   PassFail(ok), timer.ElapsedMs());
  }

  // --- SPQE <= PQE, SPPQE <= PQE: restrictions (sanity only). ---
  {
    auto schema = Schema::Create();
    CqPtr q = ParseCq(schema, "R(x), S(x,y)");
    BruteForcePqe pqe;
    LiftedPqe lifted;
    Timer timer;
    bool ok = true;
    for (int i = 0; i < kInstances; ++i) {
      PartitionedDatabase pdb = Instance(schema, 500 + i, 0.0);
      ProbabilisticDatabase db = ProbabilisticDatabase::FromPartitioned(
          pdb, BigRational(BigInt(1), BigInt(2)));
      ok = ok && pqe.Probability(*q, db) == lifted.Probability(*q, db);
    }
    table.PrintRow("SPQE/PQE^(1/2) c= PQE", "restriction (engines agree)",
                   kInstances, PassFail(ok), timer.ElapsedMs());
  }

  // --- FGMC <= SVC for pseudo-connected queries (Lemma 4.1) — RED ARROW. --
  {
    auto schema = Schema::Create();
    CqPtr q = ParseCq(schema, "R(x,y), S(y,z)");
    auto witness = CertifyPseudoConnected(*q);
    BruteForceFgmc direct;
    BruteForceSvc oracle;
    Timer timer;
    bool ok = witness.has_value();
    for (int i = 0; ok && i < kInstances; ++i) {
      PartitionedDatabase db = Instance(schema, 600 + i, 0.25);
      ok = FgmcViaSvcLemma41(*q, *witness, db, oracle) ==
           direct.CountBySize(*q, db);
    }
    table.PrintRow("FGMC <= SVC  [RED]", "Lemma 4.1 (pseudo-conn.)",
                   kInstances, PassFail(ok), timer.ElapsedMs());
  }

  // --- FGMC_qvc <= SVC_q (Lemma 4.3) — RED ARROW. ---
  {
    auto schema = Schema::Create();
    CqPtr q = ParseCq(schema, "R(x), S(x,y), T(y), U(w)");
    BruteForceFgmc direct;
    BruteForceSvc oracle;
    Timer timer;
    bool ok = true;
    for (int i = 0; ok && i < kInstances; ++i) {
      PartitionedDatabase db = Instance(schema, 700 + i, 0.2);
      CqPtr counted;
      Polynomial via =
          FgmcViaSvcLemma43(*q, 0, db, oracle, nullptr, &counted);
      ok = via == direct.CountBySize(*counted, db);
    }
    table.PrintRow("FGMC_qvc <= SVC_q  [RED]", "Lemma 4.3 (var-conn. + q')",
                   kInstances, PassFail(ok), timer.ElapsedMs());
  }

  // --- FGMC <= SVC for decomposable queries (Lemma 4.4) — RED ARROW. ---
  {
    auto schema = Schema::Create();
    CqPtr q = ParseCq(schema, "R(x,y), S(u,w)");
    auto decomposition = FindDecomposition(*q);
    BruteForceFgmc direct;
    BruteForceSvc oracle;
    Timer timer;
    bool ok = decomposition.has_value();
    for (int i = 0; ok && i < kInstances; ++i) {
      PartitionedDatabase db = Instance(schema, 800 + i, 0.25);
      ok = FgmcViaSvcLemma44(*q, *decomposition, db, oracle) ==
           direct.CountBySize(*q, db);
    }
    table.PrintRow("FGMC <= SVC  [RED]", "Lemma 4.4 (decomposable)",
                   kInstances, PassFail(ok), timer.ElapsedMs());
  }

  // --- SVCn <= FMC (Corollary 6.1) and FGMC <= 2^k FMC (Lemma 6.1). ---
  {
    auto schema = Schema::Create();
    CqPtr q = ParseCq(schema, "R(x,y), S(y,z)");
    BruteForceFgmc direct, fmc_oracle;
    Timer timer;
    bool ok = true;
    for (int i = 0; ok && i < kInstances; ++i) {
      PartitionedDatabase db = Instance(schema, 900 + i, 0.3);
      size_t calls = 0;
      ok = FgmcViaFmcLemma61(*q, db, fmc_oracle, &calls) ==
               direct.CountBySize(*q, db) &&
           calls == (size_t{1} << db.exogenous().size());
    }
    table.PrintRow("FGMC <= 2^k FMC", "Lemma 6.1", kInstances, PassFail(ok),
                   timer.ElapsedMs());
  }

  // --- FMC <= SVCn (Lemma 6.2) — RED ARROW, purely endogenous. ---
  {
    auto schema = Schema::Create();
    CqPtr q = ParseCq(schema, "R(x,y), S(y,z)");
    auto witness = CertifyPseudoConnected(*q);
    BruteForceFgmc direct;
    BruteForceSvc oracle;
    Timer timer;
    bool ok = witness.has_value();
    for (int i = 0; ok && i < kInstances; ++i) {
      PartitionedDatabase db = Instance(schema, 1000 + i, 0.0);
      ok = FmcViaSvcnLemma62(*q, *witness, db.endogenous(), oracle) ==
           direct.CountBySize(*q, db);
    }
    table.PrintRow("FMC <= SVCn  [RED]", "Lemma 6.2 (unshared const.)",
                   kInstances, PassFail(ok), timer.ElapsedMs());
  }

  std::cout << "\nAll arrows exact; the [RED] rows are the reductions this "
               "paper contributes.\n";
  return 0;
}
