// Sample-count reduction of the adaptive stopping strategies on
// low-variance instances BEYOND the brute-force guard (|Dn| > 25), with
// the exact reference from the lifted polynomial engine (the query is kept
// hierarchical on purpose).
//
// Instance 1 ("pivotal"): n endogenous R-facts, one exogenous S-edge —
// exactly one R-fact is pivotal in EVERY permutation (marginal
// identically 1) and every other fact's marginal is identically 0. The
// marginals have zero variance, which is precisely the regime the
// empirical-Bernstein rule converts into an order-of-magnitude early
// stop while the variance-blind Hoeffding count keeps drawing. The
// self-check asserts
//   (1) bernstein draws >= 5x fewer samples than the Hoeffding baseline,
//   (2) every estimate stays within its own reported per-fact half-width
//       of the exact value, at every point of the table,
//   (3) serial and 4-thread runs are bit-identical (values, sample
//       counts, half-widths).
// Deterministic under the fixed seed: it can never flake, only regress.
//
// Instance 2 ("sparse"): a random sparse database over the same query —
// low but nonzero variance; reported for the realism of the reduction
// numbers, with the same honesty + determinism checks (no 5x floor: how
// far the rule gets depends on the instance's actual variance).
//
// Flags: --facts N     endogenous fact target      (default 48)
//        --threads N   pool width for the parallel rerun (default 4)
//        --epsilon E   target half-width            (default 0.005)
//        --json PATH   machine-readable rows (BENCH_approx.json format)

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "shapley/approx/sampling.h"
#include "shapley/data/parser.h"
#include "shapley/engines/fgmc.h"
#include "shapley/engines/svc.h"
#include "shapley/exec/thread_pool.h"
#include "shapley/gen/generators.h"
#include "shapley/query/query_parser.h"

using namespace shapley;
using shapley::bench::Banner;
using shapley::bench::JsonReporter;
using shapley::bench::PassFail;
using shapley::bench::Table;
using shapley::bench::Timer;

namespace {

struct RunResult {
  std::map<Fact, BigRational> values;
  ApproxInfo info;
  double wall_ms = 0.0;
};

RunResult RunStrategy(const BooleanQuery& query, const PartitionedDatabase& db,
                      const ApproxParams& params, ThreadPool* pool) {
  SamplingSvc sampler(params);
  if (pool != nullptr) sampler.set_exec_context(ExecContext{pool, nullptr});
  Timer timer;
  RunResult result;
  result.values = sampler.AllValues(query, db);
  result.wall_ms = timer.ElapsedMs();
  result.info = sampler.last_info();
  return result;
}

/// Worst violation of the per-fact honesty contract: max over facts of
/// (|est − exact| − reported half-width); honest runs stay <= 0.
double WorstExcess(const RunResult& run,
                   const std::map<Fact, BigRational>& exact,
                   const PartitionedDatabase& db) {
  const auto& endo = db.endogenous().facts();
  double worst = -1.0;
  for (size_t i = 0; i < endo.size(); ++i) {
    const double err = std::abs(run.values.at(endo[i]).ToDouble() -
                                exact.at(endo[i]).ToDouble());
    worst = std::max(worst, err - run.info.fact_half_widths[i]);
  }
  return worst;
}

}  // namespace

int main(int argc, char** argv) {
  size_t facts = 48;
  size_t threads = 4;
  double epsilon = 0.005;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--facts" && i + 1 < argc) {
      facts = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--threads" && i + 1 < argc) {
      threads = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--epsilon" && i + 1 < argc) {
      epsilon = std::atof(argv[++i]);
    }
  }
  JsonReporter json =
      JsonReporter::FromArgs(argc, argv, "bench_adaptive_stopping");

  Banner("Adaptive sequential stopping vs. the fixed Hoeffding count");

  auto schema = Schema::Create();
  UcqPtr parsed = ParseUcq(schema, "R(x), S(x,y)");
  QueryPtr query = parsed->disjuncts()[0];

  // Instance 1: n endogenous R-facts, one exogenous S-edge. Only R(a0)
  // completes a witness — its marginal is 1 in every permutation, every
  // other marginal is 0. Zero variance, |Dn| beyond the exhaustive guard.
  std::string text;
  for (size_t i = 0; i < std::max<size_t>(facts, 32); ++i) {
    text += "R(a" + std::to_string(i) + ") ";
  }
  text += "| S(a0,b)";
  PartitionedDatabase pivotal = ParsePartitionedDatabase(schema, text);

  // Instance 2: sparse random — low but nonzero variance.
  RandomDatabaseOptions options;
  options.num_facts = std::max<size_t>(facts, 32);
  options.domain_size = 8;
  options.exogenous_fraction = 0.0;
  options.seed = 29;
  PartitionedDatabase sparse = RandomPartitionedDatabase(schema, options);
  while (sparse.NumEndogenous() <= kBruteForceMaxEndogenous) {
    options.num_facts += 8;
    sparse = RandomPartitionedDatabase(schema, options);
  }

  SvcViaFgmc lifted(std::make_shared<LiftedFgmc>());
  ThreadPool pool(threads);

  Table table({"instance", "strategy", "samples", "baseline", "reduction",
               "max_hw", "worst_excess", "wall_ms", "ok"},
              {10, 12, 10, 10, 11, 11, 13, 9, 10});
  table.PrintHeader();

  bool all_ok = true;
  double pivotal_bernstein_reduction = 0.0;

  struct Case {
    const char* name;
    const PartitionedDatabase* db;
  };
  for (const Case& c : {Case{"pivotal", &pivotal}, Case{"sparse", &sparse}}) {
    std::map<Fact, BigRational> exact = lifted.AllValues(*query, *c.db);

    for (ApproxStrategy strategy :
         {ApproxStrategy::kHoeffding, ApproxStrategy::kBernstein,
          ApproxStrategy::kStratified}) {
      const ApproxParams params{
          .epsilon = epsilon, .delta = 0.05, .seed = 17, .strategy = strategy};
      RunResult serial = RunStrategy(*query, *c.db, params, nullptr);
      RunResult parallel = RunStrategy(*query, *c.db, params, &pool);

      const bool deterministic =
          serial.values == parallel.values &&
          serial.info.samples == parallel.info.samples &&
          serial.info.fact_samples == parallel.info.fact_samples &&
          serial.info.fact_half_widths == parallel.info.fact_half_widths;
      const double excess = WorstExcess(serial, exact, *c.db);
      const bool bounded = excess <= 0.0;
      const double reduction =
          static_cast<double>(serial.info.hoeffding_baseline) /
          static_cast<double>(serial.info.samples);
      const bool ok = bounded && deterministic;
      all_ok = all_ok && ok;
      if (c.db == &pivotal && strategy == ApproxStrategy::kBernstein) {
        pivotal_bernstein_reduction = reduction;
      }

      table.PrintRow(c.name, ToString(strategy), serial.info.samples,
                     serial.info.hoeffding_baseline, reduction,
                     serial.info.half_width, excess, parallel.wall_ms,
                     PassFail(ok));
      json.Row({{"name", std::string("adaptive_") + c.name},
                {"strategy", std::string(ToString(strategy))},
                {"facts", static_cast<double>(c.db->NumEndogenous())},
                {"threads", static_cast<double>(threads)},
                {"epsilon", epsilon},
                {"samples", static_cast<double>(serial.info.samples)},
                {"hoeffding_baseline",
                 static_cast<double>(serial.info.hoeffding_baseline)},
                {"reduction", reduction},
                {"checkpoints",
                 static_cast<double>(serial.info.checkpoints)},
                {"facts_retired",
                 static_cast<double>(serial.info.facts_retired)},
                {"max_half_width", serial.info.half_width},
                {"worst_excess", excess},
                {"wall_ms_serial", serial.wall_ms},
                {"wall_ms_parallel", parallel.wall_ms},
                {"bounded", bounded ? "yes" : "no"},
                {"deterministic", deterministic ? "yes" : "no"}});
    }
  }

  const bool big_win = pivotal_bernstein_reduction >= 5.0;
  all_ok = all_ok && big_win;
  std::cout << "bernstein on the zero-variance instance: "
            << pivotal_bernstein_reduction
            << "x fewer samples than the Hoeffding baseline (floor: 5x): "
            << PassFail(big_win) << "\n"
            << "self-check (every estimate within its reported per-fact "
               "half-width; serial == 4-thread bit for bit): "
            << PassFail(all_ok) << "\n";
  json.Write();
  return all_ok ? 0 : 1;
}
