// Always-on observability overhead guard (obs/flight.h + obs/heavy.h +
// obs/slowlog.h): the flight recorder and heavy-hitter sketches run on
// EVERY request with no opt-in, so their cost must be provably negligible.
// Same methodology as bench_trace_overhead:
//
//   1. baseline rounds: blocks of in-process requests with NO recording —
//      the deck exists but is never touched;
//   2. recorded rounds: the same blocks paying exactly what the server's
//      hot path pays per request — DigestKeysFor (canonical shard key +
//      hash) and RecordServedRequest (flight ring write + two Space-Saving
//      updates + the slow-log threshold compare);
//   3. guard (exit 1 on violation): compared on the PER-REQUEST MINIMUM
//      latency (the fastest request is the one the scheduler left alone).
//      Best recorded request within 5% of the best baseline request, with
//      a noise allowance self-calibrated from the spread the baseline
//      rounds themselves exhibited (2 µs floor);
//   4. functional self-check: after the recorded rounds the deck must
//      show exact conservation — flight total == requests recorded,
//      resident == min(total, capacity), sketch totals == requests, and
//      ZERO slow captures (the threshold sits far above any real
//      latency, so the always-on path never pays for capture).
//
// Usage:
//   bench_flight_overhead [--reps N] [--json out.json]
//
// --json rows (JSONL-appended to BENCH_obs.json by scripts/check.sh):
//   {"name": "unrecorded_baseline" | "recorded", "requests": N,
//    "us_per_req": ...}
//   {"name": "self_check", "overhead_pct": ..., "conservation_errors": 0,
//    "slow_captures": 0, "ok": 1}

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "bench_util.h"
#include "shapley/data/parser.h"
#include "shapley/net/server.h"
#include "shapley/query/query_parser.h"
#include "shapley/service/shapley_service.h"

namespace {

using namespace shapley;

QueryPtr ParseQuery(const std::shared_ptr<Schema>& schema, const char* text) {
  UcqPtr ucq = ParseUcq(schema, text);
  if (ucq->disjuncts().size() == 1) return ucq->disjuncts()[0];
  return ucq;
}

/// The hot-path instance: small, exact, lifted — per-request cost is
/// dominated by the service path the always-on recording rides on.
SvcRequest HotInstance(const std::shared_ptr<Schema>& schema) {
  SvcRequest request;
  request.query = ParseQuery(schema, "R(x), S(x,y)");
  request.db = ParsePartitionedDatabase(
      schema, "R(a) R(b) S(a,c) S(b,d) | S(a,d) S(b,c)");
  return request;
}

struct BlockStats {
  double mean_us = 0.0;
  double min_us = 0.0;
};

double MinOf(const std::vector<BlockStats>& rounds,
             double BlockStats::* member) {
  double best = std::numeric_limits<double>::infinity();
  for (const BlockStats& round : rounds) best = std::min(best, round.*member);
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  size_t reps = 300;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--reps" && i + 1 < argc) {
      reps = std::max<size_t>(50, std::strtoul(argv[++i], nullptr, 10));
    }
  }
  constexpr size_t kRounds = 4;

  bench::JsonReporter json =
      bench::JsonReporter::FromArgs(argc, argv, "bench_flight_overhead");
  bench::Banner(
      "Flight/heavy overhead guard (always-on recording must be ~free)");

  auto schema = Schema::Create();
  const SvcRequest request = HotInstance(schema);
  ShapleyService service(ServiceOptions{.threads = 2});
  net::ServerOptions deck_options;  // Production defaults, incl. 250 ms.
  net::DebugDeck deck(deck_options);

  if (!service.Compute(request).ok()) {
    std::cerr << "reference request failed\n";
    return 1;
  }
  for (size_t i = 0; i < 50; ++i) service.Compute(request);

  // ---- Baseline rounds: the deck exists but nothing records into it.
  std::vector<BlockStats> baseline_rounds;
  for (size_t round = 0; round < kRounds; ++round) {
    BlockStats stats;
    stats.min_us = std::numeric_limits<double>::infinity();
    bench::Timer block_timer;
    for (size_t i = 0; i < reps; ++i) {
      bench::Timer request_timer;
      const SvcResponse response = service.Compute(request);
      stats.min_us =
          std::min(stats.min_us, 1000.0 * request_timer.ElapsedMs());
      if (!response.ok()) {
        std::cerr << "hot-path request failed mid-block\n";
        return 1;
      }
    }
    stats.mean_us =
        1000.0 * block_timer.ElapsedMs() / static_cast<double>(reps);
    baseline_rounds.push_back(stats);
  }

  // ---- Recorded rounds: per request, exactly the server's always-on
  // additions — digest keys, flight write, both sketches, threshold gate.
  size_t slow_captures = 0;
  std::vector<BlockStats> recorded_rounds;
  for (size_t round = 0; round < kRounds; ++round) {
    BlockStats stats;
    stats.min_us = std::numeric_limits<double>::infinity();
    bench::Timer block_timer;
    for (size_t i = 0; i < reps; ++i) {
      bench::Timer request_timer;
      const net::RequestDigestKeys keys = net::DigestKeysFor(request);
      const SvcResponse response = service.Compute(request);
      const double wall_ms = request_timer.ElapsedMs();
      if (net::RecordServedRequest(&deck, keys, "/v1/compute", response,
                                   /*status=*/200, wall_ms,
                                   /*trace_id=*/"")) {
        ++slow_captures;  // Must stay 0: nothing here is 250 ms slow.
      }
      stats.min_us = std::min(stats.min_us, 1000.0 * wall_ms);
      if (!response.ok()) {
        std::cerr << "hot-path request failed mid-block\n";
        return 1;
      }
    }
    stats.mean_us =
        1000.0 * block_timer.ElapsedMs() / static_cast<double>(reps);
    recorded_rounds.push_back(stats);
  }

  // Functional self-check: exact conservation after kRounds * reps
  // recorded requests.
  const uint64_t recorded_n = static_cast<uint64_t>(kRounds * reps);
  size_t conservation_errors = 0;
  if (deck.flight.total_recorded() != recorded_n) ++conservation_errors;
  const size_t resident = deck.flight.Snapshot().size();
  const size_t expected_resident =
      std::min<size_t>(recorded_n, deck.flight.capacity());
  if (resident != expected_resident) ++conservation_errors;
  if (deck.flight.dropped() + resident != recorded_n) ++conservation_errors;
  if (deck.hot_keys.total() != recorded_n) ++conservation_errors;
  if (deck.hot_classes.total() != recorded_n) ++conservation_errors;
  if (deck.slow.total_captured() != 0) ++conservation_errors;

  const double baseline = MinOf(baseline_rounds, &BlockStats::min_us);
  const double recorded = MinOf(recorded_rounds, &BlockStats::min_us);
  double baseline_spread = 0.0;
  for (const BlockStats& round : baseline_rounds) {
    baseline_spread = std::max(baseline_spread, round.min_us - baseline);
  }
  const double allowance = std::max(2.0, baseline_spread);
  const double overhead_pct = 100.0 * (recorded - baseline) / baseline;
  const bool fast_enough =
      recorded <= baseline * 1.05 || recorded - baseline <= allowance;

  bench::Table table({"phase", "requests", "min us/req", "mean us/req"},
                     {22, 12, 12, 12});
  table.PrintHeader();
  const double block_total = static_cast<double>(reps * kRounds);
  table.PrintRow("unrecorded_baseline", reps * kRounds, baseline,
                 MinOf(baseline_rounds, &BlockStats::mean_us));
  table.PrintRow("recorded", reps * kRounds, recorded,
                 MinOf(recorded_rounds, &BlockStats::mean_us));
  json.Row({{"name", "unrecorded_baseline"},
            {"requests", block_total},
            {"us_per_req", baseline},
            {"mean_us_per_req", MinOf(baseline_rounds, &BlockStats::mean_us)}});
  json.Row({{"name", "recorded"},
            {"requests", block_total},
            {"us_per_req", recorded},
            {"mean_us_per_req", MinOf(recorded_rounds, &BlockStats::mean_us)}});

  const bool ok =
      fast_enough && conservation_errors == 0 && slow_captures == 0;
  std::cout << "\nself-check: recording overhead "
            << (overhead_pct < 0 ? 0.0 : overhead_pct) << "% (guard 5% or "
            << allowance << " us noise allowance), " << conservation_errors
            << " conservation errors, " << slow_captures
            << " spurious slow captures: " << bench::PassFail(ok) << "\n";
  json.Row({{"name", "self_check"},
            {"overhead_pct", overhead_pct},
            {"conservation_errors", static_cast<double>(conservation_errors)},
            {"slow_captures", static_cast<double>(slow_captures)},
            {"ok", ok ? 1.0 : 0.0}});
  return ok ? 0 : 1;
}
