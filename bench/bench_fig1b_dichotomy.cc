// E2 — Figure 1b: the dichotomy map, as a classification table.
//
// One row per catalog query, spanning every leaf class of the figure:
// sjf-CQ (with/without constants), constant-free CQs with self-joins,
// connected UCQs, dss queries, RPQs, sjf-CRPQs, cc-disjoint CRPQs,
// connected UCRPQs and sjf-CQ¬. The "FGMC≡SVC" column marks the queries for
// which this library's reductions establish the polynomial-time equivalence
// (the paper's headline result); "verdict" is the FP / #P-hard side.

#include <iostream>

#include "bench_util.h"
#include "shapley/analysis/classifier.h"
#include "shapley/query/path_query.h"
#include "shapley/query/query_parser.h"

namespace {

using namespace shapley;
using shapley::bench::Banner;
using shapley::bench::Table;

void Classify(const Table& table, const std::string& label,
              const BooleanQuery& query) {
  DichotomyVerdict v = ClassifySvcComplexity(query);
  table.PrintRow(label, v.query_class, ToString(v.tractability),
                 v.fgmc_svc_equivalent ? "yes" : "-", v.justification);
}

}  // namespace

int main() {
  Banner("E2 / Figure 1b — the SVC dichotomy map over the paper's classes");
  Table table({"query", "class", "verdict", "FGMC≡SVC", "justification"},
              {42, 26, 10, 10, 60});
  table.PrintHeader();

  // --- sjf-CQ (dichotomy: [Livshits et al. 2021], recaptured). ---
  Classify(table, "R(x), S(x,y)", *ParseCq(Schema::Create(), "R(x), S(x,y)"));
  Classify(table, "R(x), S(x,y), T(y)   [q_RST]",
           *ParseCq(Schema::Create(), "R(x), S(x,y), T(y)"));
  Classify(table, "R(x), S(x,y), T(x,y)",
           *ParseCq(Schema::Create(), "R(x), S(x,y), T(x,y)"));
  Classify(table, "R(a,x), S(x)  [with constant]",
           *ParseCq(Schema::Create(), "R(a,x), S(x)"));

  // --- constant-free CQ with self-joins (Corollary 4.5 / open). ---
  Classify(table, "R(x,u), S(x,y), R(y,w)",
           *ParseCq(Schema::Create(), "R(x,u), S(x,y), R(y,w)"));
  Classify(table, "R(x,y), R(y,z)  [hierarchical self-join]",
           *ParseCq(Schema::Create(), "R(x,y), R(y,z)"));

  // --- connected constant-free UCQs (Corollary 4.2(1), new in the paper).
  Classify(table, "R(x,y) | S(x,y), T(y,x)",
           *ParseUcq(Schema::Create(), "R(x,y) | S(x,y), T(y,x)"));
  Classify(table, "A(x), S(x,y), B(y) | C(x,y)",
           *ParseUcq(Schema::Create(), "A(x), S(x,y), B(y) | C(x,y)"));

  // --- dss: duplicable singleton support (Corollary 4.4). ---
  Classify(table, "A(x) | R(x,c), S(c,x)   [dss]",
           *ParseUcq(Schema::Create(), "A(x) | R(x,c), S(c,x)"));

  // --- RPQs (Corollary 4.3, recaptures [Khalil & Kimelfeld 2023]). ---
  auto rpq = [](const char* regex) {
    return RegularPathQuery::Create(Schema::Create(), Regex::Parse(regex),
                                    Constant::Named("s"),
                                    Constant::Named("t"));
  };
  Classify(table, "[A](s,t)", *rpq("A"));
  Classify(table, "[A B | C](s,t)", *rpq("A B | C"));
  Classify(table, "[A B C](s,t)", *rpq("A B C"));
  Classify(table, "[A* B](s,t)", *rpq("A* B"));

  // --- CRPQs (Corollary 4.6). ---
  auto schema_crpq = Schema::Create();
  {
    std::vector<PathAtom> atoms;
    atoms.push_back({Regex::Parse("A B*A"), Term(Variable::Named("x")),
                     Term(Variable::Named("y"))});
    Classify(table, "[A B*A](x,y)   [unbounded CRPQ]",
             *ConjunctiveRegularPathQuery::Create(schema_crpq, atoms));
  }
  {
    std::vector<PathAtom> atoms;
    atoms.push_back({Regex::Parse("A | B"), Term(Variable::Named("x")),
                     Term(Variable::Named("y"))});
    Classify(table, "[A|B](x,y)   [bounded CRPQ]",
             *ConjunctiveRegularPathQuery::Create(Schema::Create(), atoms));
  }
  {
    std::vector<PathAtom> atoms;
    atoms.push_back({Regex::Parse("A B"), Term(Variable::Named("x")),
                     Term(Variable::Named("y"))});
    atoms.push_back({Regex::Parse("C"), Term(Variable::Named("u")),
                     Term(Variable::Named("w"))});
    Classify(table, "[A B](x,y) ^ [C](u,w)   [cc-disjoint]",
             *ConjunctiveRegularPathQuery::Create(Schema::Create(), atoms));
  }

  // --- connected UCRPQ without constants (Corollary 4.2(2)). ---
  {
    auto schema = Schema::Create();
    std::vector<PathAtom> a1, a2;
    a1.push_back({Regex::Parse("A A"), Term(Variable::Named("x")),
                  Term(Variable::Named("y"))});
    a2.push_back({Regex::Parse("B"), Term(Variable::Named("x")),
                  Term(Variable::Named("y"))});
    auto q = UnionCrpq::Create(
        {ConjunctiveRegularPathQuery::Create(schema, std::move(a1)),
         ConjunctiveRegularPathQuery::Create(schema, std::move(a2))});
    Classify(table, "[A A](x,y) | [B](x,y)   [conn. UCRPQ]", *q);
  }

  // --- sjf-CQ¬ ([Reshef et al. 2020], partially recaptured by Prop 6.1).
  Classify(table, "A(x), !S(x,y), B(y)",
           *ParseCq(Schema::Create(), "A(x), !S(x,y), B(y)"));
  Classify(table, "A(x), S(x,y), !T(x,y)",
           *ParseCq(Schema::Create(), "A(x), S(x,y), !T(x,y)"));
  Classify(table, "A(x), S(x,y), B(y), !N(x,y)",
           *ParseCq(Schema::Create(), "A(x), S(x,y), B(y), !N(x,y)"));

  std::cout
      << "\nShape check vs the paper: hierarchical/safe/short-word queries "
         "are FP;\nnon-hierarchical, unsafe, long-word and unbounded ones "
         "are #P-hard;\nthe FGMC≡SVC column covers exactly the classes of "
         "Figure 1b.\n";
  return 0;
}
