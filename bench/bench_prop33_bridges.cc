// E4 — Proposition 3.3 / Claims A.1–A.3: the forward bridges, measured.
//
// (a) SVC ≤ FGMC (Claim A.1): two counting-oracle calls per fact;
// (b) FGMC ≤ SPPQE (Claim A.2): |Dn|+1 probability-oracle calls plus a
//     Vandermonde solve — all on the same partitioned database;
// (c) FMC ≡ SPQE (Claim A.3): the same machinery on purely endogenous
//     inputs.
// Reports oracle-call counts and wall time as |Dn| grows, with exactness
// checks against brute force throughout.

#include <iostream>

#include "bench_util.h"
#include "shapley/engines/fgmc.h"
#include "shapley/engines/pqe.h"
#include "shapley/engines/svc.h"
#include "shapley/gen/generators.h"
#include "shapley/query/query_parser.h"
#include "shapley/reductions/interpolation.h"

int main() {
  using namespace shapley;
  using namespace shapley::bench;

  Banner("E4 / Prop 3.3 — SVC<=FGMC and FGMC<=SPPQE bridges");

  auto schema = Schema::Create();
  UcqPtr q = ParseUcq(schema, "R(x), S(x,y) | T(y)");
  std::cout << "query: " << q->ToString() << "\n\n";

  Table table({"|Dn|", "bridge", "oracle calls", "verified", "ms"},
              {7, 30, 14, 12, 12});
  table.PrintHeader();

  BruteForceFgmc brute_fgmc;
  BruteForceSvc brute_svc;

  for (size_t n : {4, 6, 8, 10}) {
    RandomDatabaseOptions options;
    options.num_facts = n + 2;
    options.domain_size = 3;
    options.exogenous_fraction = 0.25;
    options.seed = 7 * n;
    PartitionedDatabase db = RandomPartitionedDatabase(schema, options);

    // (a) SVC via FGMC.
    {
      SvcViaFgmc via(std::make_shared<BruteForceFgmc>());
      Timer timer;
      bool ok = true;
      for (const Fact& f : db.endogenous().facts()) {
        ok = ok && via.Value(*q, db, f) == brute_svc.Value(*q, db, f);
      }
      table.PrintRow(db.NumEndogenous(), "SVC <= FGMC (A.1)",
                     via.oracle_calls(), PassFail(ok), timer.ElapsedMs());
    }
    // (b) FGMC via SPPQE.
    {
      InterpolationFgmc via(std::make_shared<BruteForcePqe>());
      Timer timer;
      bool ok = via.CountBySize(*q, db) == brute_fgmc.CountBySize(*q, db);
      table.PrintRow(db.NumEndogenous(), "FGMC <= SPPQE (A.2)",
                     via.oracle_calls(), PassFail(ok), timer.ElapsedMs());
    }
    // (c) FMC ≡ SPQE on the endogenous part only.
    {
      PartitionedDatabase endo =
          PartitionedDatabase::AllEndogenous(db.endogenous());
      InterpolationFgmc via(std::make_shared<BruteForcePqe>());
      Timer timer;
      bool ok = via.CountBySize(*q, endo) == brute_fgmc.CountBySize(*q, endo);
      table.PrintRow(endo.NumEndogenous(), "FMC ≡ SPQE (A.3)",
                     via.oracle_calls(), PassFail(ok), timer.ElapsedMs());
    }
  }

  std::cout << "\nShape check vs the paper: bridge (a) uses 2 counting calls "
               "per fact;\nbridge (b) uses |Dn|+1 probability calls on the "
               "same partitioned database\n(as Proposition 3.3 requires); "
               "all outputs are exact.\n";
  return 0;
}
