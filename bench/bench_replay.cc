// Record/replay harness demo and self-check (obs/reqlog.h + obs/replay.h):
// a live HttpServer captures a mixed request stream — exact lifted, guarded
// brute force, all three (ε, δ) sampling strategies (hoeffding, bernstein,
// stratified), a pipelined batch, and a deliberately malformed body — into
// an ndjson request log, then the capture is replayed against a FRESH
// server twice (max speed, then paced at the capture's own clock) over real
// TCP.
//
// Self-checks (the bench FAILS, exit 1, if any is violated):
//   1. every captured request replays — zero transport errors, zero dropped
//      responses, in both replay runs;
//   2. each replayed response is BIT-IDENTICAL to the recorded one in
//      canonical form (run-volatile "stats"/"trace" members stripped, batch
//      lines id-sorted): the serving stack is deterministic in
//      (request bytes, seed), and replay proves it across processes —
//      including the malformed request, which must reproduce its error;
//   3. the replay server's stats conserve: submitted == completed + failed
//      after the drain.
//
// Usage:
//   bench_replay [--requests N] [--json out.json]
//
// --json rows (JSONL-appended to BENCH_obs.json by scripts/check.sh):
//   {"name": "record" | "replay_max" | "replay_paced",
//    "requests": N, "wall_ms": ..., "rps": ...}
//   {"name": "self_check", "mismatches": 0, "transport_errors": 0, ...}

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "shapley/data/parser.h"
#include "shapley/net/client.h"
#include "shapley/net/codec.h"
#include "shapley/net/server.h"
#include "shapley/obs/replay.h"
#include "shapley/obs/reqlog.h"
#include "shapley/obs/stats_json.h"
#include "shapley/query/query_parser.h"
#include "shapley/service/shapley_service.h"

namespace {

using namespace shapley;

QueryPtr ParseQuery(const std::shared_ptr<Schema>& schema, const char* text) {
  UcqPtr ucq = ParseUcq(schema, text);
  if (ucq->disjuncts().size() == 1) return ucq->disjuncts()[0];
  return ucq;
}

// The capture: a mixed stream of raw wire bodies (plus one non-JSON body —
// its 400 must replay too). Encoded once so the recorded bytes and the
// in-memory list agree exactly.
struct WireRequest {
  std::string target;
  std::string body;
};

std::vector<WireRequest> BuildMix(size_t repeat) {
  auto schema = Schema::Create();
  QueryPtr easy = ParseQuery(schema, "R(x), S(x,y)");
  QueryPtr hard = ParseQuery(schema, "R(x), S(x,y), T(y)");
  PartitionedDatabase db = ParsePartitionedDatabase(
      schema, "R(a) R(b) S(a,c) S(b,d) T(c) | T(d) S(a,e)");

  std::vector<std::string> singles;
  {
    SvcRequest r;
    r.query = easy;
    r.db = db;
    singles.push_back(net::EncodeRequest(r).Dump());  // → lifted, exact
    r.query = hard;
    singles.push_back(net::EncodeRequest(r).Dump());  // → brute, exact
    for (ApproxStrategy strategy :
         {ApproxStrategy::kHoeffding, ApproxStrategy::kBernstein,
          ApproxStrategy::kStratified}) {
      SvcRequest s;
      s.query = hard;
      s.db = db;
      s.engine = "sampling";
      s.approx.epsilon = 0.1;
      s.approx.seed = 42;
      s.approx.strategy = strategy;
      singles.push_back(net::EncodeRequest(s).Dump());
    }
  }

  // One batch POST carrying the whole mix — scatter/stream/reassemble is
  // part of what must replay deterministically.
  net::Json batch = net::Json::Obj();
  net::Json requests = net::Json::Arr();
  for (const std::string& body : singles) {
    requests.Push(*net::Json::Parse(body));
  }
  batch.Set("requests", std::move(requests));

  std::vector<WireRequest> mix;
  for (size_t rep = 0; rep < repeat; ++rep) {
    for (const std::string& body : singles) {
      mix.push_back({"/v1/compute", body});
    }
    mix.push_back({"/v1/batch", batch.Dump()});
    mix.push_back({"/v1/compute", "{not json"});  // → 400, also replayed
  }
  return mix;
}

}  // namespace

int main(int argc, char** argv) {
  size_t repeat = 4;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--requests" && i + 1 < argc) {
      // Interpreted as mix repetitions (7 requests each).
      repeat = std::max<size_t>(1, std::strtoul(argv[++i], nullptr, 10) / 7);
    }
  }

  bench::JsonReporter json =
      bench::JsonReporter::FromArgs(argc, argv, "bench_replay");
  bench::Banner("Record/replay harness (capture -> fresh server, real TCP)");

  const std::string log_path = "bench_replay_capture.ndjson";
  const std::vector<WireRequest> mix = BuildMix(repeat);

  ServiceOptions service_options;
  service_options.threads = 4;

  // ---- Record: serve the mix with capture on, keep the live responses.
  std::vector<std::string> recorded;
  double record_ms = 0.0;
  {
    obs::RequestLogWriter capture(log_path);
    ShapleyService service(service_options);
    net::ServerOptions server_options;
    server_options.request_log = &capture;
    net::HttpServer server(&service, server_options);
    server.Start();

    net::ShapleyClient client("127.0.0.1", server.port());
    bench::Timer timer;
    for (const WireRequest& request : mix) {
      if (request.target == "/v1/batch") {
        std::vector<std::string> lines;
        client.RawBatch(request.body,
                        [&](const std::string& line) { lines.push_back(line); });
        recorded.push_back(obs::CanonicalBatchBody(lines));
      } else {
        int status = 0;
        recorded.push_back(
            obs::CanonicalResponseBody(client.RawCompute(request.body, &status)));
      }
    }
    record_ms = timer.ElapsedMs();
    server.Stop();
    capture.Flush();
  }

  std::string error;
  auto log = obs::ReadRequestLog(log_path, &error);
  if (!log || log->size() != mix.size()) {
    std::cerr << "capture read failed: "
              << (log ? "entry count mismatch" : error) << "\n";
    return 1;
  }

  // ---- Replay, twice, each against a fresh service (new process in
  // spirit: nothing shared with the recording run but the log file).
  size_t mismatches = 0;
  size_t transport_errors = 0;
  bool conserved = true;
  bench::Table table({"phase", "requests", "wall ms", "req/s"},
                     {14, 10, 12, 12});
  table.PrintHeader();

  auto run_replay = [&](const char* name, double speed) {
    ShapleyService service(service_options);
    net::HttpServer server(&service, {});
    server.Start();
    obs::ReplayOptions options;
    options.speed = speed;
    const obs::ReplayResult result =
        obs::Replay(*log, "127.0.0.1", server.port(), options);
    server.Stop();
    conserved = conserved && obs::StatsConserved(service.Stats());

    transport_errors += result.transport_errors;
    for (size_t i = 0; i < result.responses.size(); ++i) {
      if (result.responses[i] != recorded[i]) ++mismatches;
    }
    if (result.responses.size() != recorded.size()) ++mismatches;
    const double rps =
        1000.0 * static_cast<double>(result.requests_sent) / result.wall_ms;
    table.PrintRow(name, result.requests_sent, result.wall_ms, rps);
    json.Row({{"name", name},
              {"requests", static_cast<double>(result.requests_sent)},
              {"wall_ms", result.wall_ms},
              {"rps", rps}});
  };

  table.PrintRow("record", mix.size(), record_ms,
                 1000.0 * static_cast<double>(mix.size()) / record_ms);
  json.Row({{"name", "record"},
            {"requests", static_cast<double>(mix.size())},
            {"wall_ms", record_ms},
            {"rps", 1000.0 * static_cast<double>(mix.size()) / record_ms}});
  run_replay("replay_max", 0.0);
  run_replay("replay_paced", 1.0);

  const bool ok = mismatches == 0 && transport_errors == 0 && conserved;
  std::cout << "\nself-check: " << log->size() << " captured, " << mismatches
            << " canonical mismatches, " << transport_errors
            << " transport errors, stats "
            << (conserved ? "conserved" : "NOT conserved") << ": "
            << bench::PassFail(ok) << "\n";
  json.Row({{"name", "self_check"},
            {"captured", static_cast<double>(log->size())},
            {"mismatches", static_cast<double>(mismatches)},
            {"transport_errors", static_cast<double>(transport_errors)},
            {"conserved", conserved ? 1.0 : 0.0}});
  std::remove(log_path.c_str());
  return ok ? 0 : 1;
}
