// Streaming throughput of the ShapleyService serving layer: a mixed-class
// request stream (hierarchical sjf-CQs routed to the lifted polynomial
// engine, non-hierarchical ones to guarded brute force) is submitted
// asynchronously and drained, at several pool widths. The self-check
// asserts bit-identical agreement with the serial per-engine AllValues —
// the serving layer may only change scheduling and reuse, never values.
//
// Flags: --requests N   stream length            (default 64)
//        --facts N      endogenous+exogenous facts per instance (default 7)
//        --threads-max N  widest pool tried      (default 8)
//        --json PATH    machine-readable rows (BENCH_service.json format)

#include <cstdlib>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "shapley/engines/fgmc.h"
#include "shapley/engines/svc.h"
#include "shapley/gen/generators.h"
#include "shapley/query/query_parser.h"
#include "shapley/service/shapley_service.h"

using namespace shapley;
using shapley::bench::Banner;
using shapley::bench::JsonReporter;
using shapley::bench::PassFail;
using shapley::bench::Table;
using shapley::bench::Timer;

namespace {

QueryPtr ParseQuery(const std::shared_ptr<Schema>& schema, const char* text) {
  UcqPtr ucq = ParseUcq(schema, text);
  if (ucq->disjuncts().size() == 1) return ucq->disjuncts()[0];
  return ucq;
}

struct StreamCase {
  QueryPtr query;
  PartitionedDatabase db;
  std::map<Fact, BigRational> expected;
  std::string expected_engine;
};

}  // namespace

int main(int argc, char** argv) {
  size_t requests = 64;
  size_t facts = 7;
  size_t threads_max = 8;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--requests" && i + 1 < argc) {
      requests = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--facts" && i + 1 < argc) {
      facts = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--threads-max" && i + 1 < argc) {
      threads_max = std::strtoull(argv[++i], nullptr, 10);
    }
  }
  JsonReporter json =
      JsonReporter::FromArgs(argc, argv, "bench_service_throughput");

  Banner("ShapleyService streaming throughput (mixed dichotomy classes)");
  std::cout << "stream: " << requests << " requests, ~" << facts
            << " facts each, alternating hierarchical sjf-CQ (lifted) / "
               "non-hierarchical CQ (brute force)\n";

  auto schema = Schema::Create();
  QueryPtr easy = ParseQuery(schema, "R(x), S(x,y)");
  QueryPtr hard = ParseQuery(schema, "R(x), S(x,y), T(y)");

  // Build the stream and its serial reference once, outside the timers.
  SvcViaFgmc serial_lifted(std::make_shared<LiftedFgmc>());
  BruteForceSvc serial_brute;
  std::vector<StreamCase> stream;
  stream.reserve(requests);
  Timer serial_timer;
  for (size_t k = 0; k < requests; ++k) {
    RandomDatabaseOptions options;
    options.num_facts = facts;
    options.domain_size = 3;
    options.exogenous_fraction = 0.2;
    options.seed = 31 * k + 7;
    StreamCase c;
    c.query = (k % 2 == 0) ? easy : hard;
    c.db = RandomPartitionedDatabase(schema, options);
    stream.push_back(std::move(c));
  }
  // Serial per-engine baseline (what a caller without the service does).
  serial_timer = Timer();
  for (StreamCase& c : stream) {
    SvcEngine& serial = (c.query == easy)
                            ? static_cast<SvcEngine&>(serial_lifted)
                            : static_cast<SvcEngine&>(serial_brute);
    c.expected = serial.AllValues(*c.query, c.db);
    c.expected_engine = serial.name();
  }
  const double serial_ms = serial_timer.ElapsedMs();

  Table table({"threads", "wall_ms", "req/s", "speedup", "cache_hits",
               "cache_bytes", "identical"},
              {10, 12, 12, 10, 13, 14, 12});
  table.PrintHeader();

  bool all_ok = true;
  std::vector<size_t> widths;
  for (size_t t = 1; t <= threads_max; t *= 2) widths.push_back(t);
  for (size_t threads : widths) {
    ServiceOptions options;
    options.threads = threads;
    ShapleyService service(options);

    Timer timer;
    std::vector<std::future<SvcResponse>> futures;
    futures.reserve(stream.size());
    for (const StreamCase& c : stream) {
      SvcRequest request;
      request.query = c.query;
      request.db = c.db;
      futures.push_back(service.Submit(request));
    }
    bool identical = true;
    for (size_t k = 0; k < futures.size(); ++k) {
      SvcResponse response = futures[k].get();
      identical = identical && response.ok() &&
                  response.engine == stream[k].expected_engine &&
                  response.values == stream[k].expected;
    }
    const double wall_ms = timer.ElapsedMs();
    all_ok = all_ok && identical;

    const double rps = wall_ms > 0 ? 1000.0 * requests / wall_ms : 0.0;
    const size_t cache_hits =
        service.cache() != nullptr ? service.cache()->hits() : 0;
    const size_t cache_bytes =
        service.cache() != nullptr ? service.cache()->bytes_used() : 0;
    table.PrintRow(threads, wall_ms, rps,
                   wall_ms > 0 ? serial_ms / wall_ms : 0.0, cache_hits,
                   cache_bytes, PassFail(identical));
    json.Row({{"name", "stream"},
              {"requests", static_cast<double>(requests)},
              {"facts", static_cast<double>(facts)},
              {"threads", static_cast<double>(threads)},
              {"wall_ms", wall_ms},
              {"serial_ms", serial_ms},
              {"requests_per_s", rps},
              {"speedup_vs_serial", wall_ms > 0 ? serial_ms / wall_ms : 0.0},
              {"cache_hits", static_cast<double>(cache_hits)},
              {"cache_bytes", static_cast<double>(cache_bytes)},
              {"identical", identical ? "yes" : "no"}});
  }

  std::cout << "serial per-engine baseline: " << serial_ms << " ms\n"
            << "self-check (bit-identical to serial engines): "
            << PassFail(all_ok) << "\n";
  json.Write();
  return all_ok ? 0 : 1;
}
