// E8 — Section 6.1: purely endogenous databases.
//
// (a) Lemma 6.1: FGMC on a database with k exogenous facts through exactly
//     2^k FMC-oracle calls (table shows the call count doubling).
// (b) Lemma 6.2: FMC ≤ SVCn — the reduction never hands the oracle an
//     exogenous fact (asserted inside), exercised on growing instances.

#include <iostream>

#include "bench_util.h"
#include "shapley/analysis/witnesses.h"
#include "shapley/engines/fgmc.h"
#include "shapley/engines/svc.h"
#include "shapley/gen/generators.h"
#include "shapley/query/query_parser.h"
#include "shapley/reductions/lemmas.h"

int main() {
  using namespace shapley;
  using namespace shapley::bench;

  Banner("E8a / Lemma 6.1 — FGMC via 2^k FMC oracle calls");
  {
    auto schema = Schema::Create();
    CqPtr q = ParseCq(schema, "R(x,y), S(y,z)");
    Table table({"|Dn|", "k = |Dx|", "FMC calls", "verified", "ms"},
                {7, 10, 11, 12, 12});
    table.PrintHeader();
    BruteForceFgmc direct, fmc_oracle;
    for (size_t k = 0; k <= 4; ++k) {
      RandomDatabaseOptions options;
      options.num_facts = 8 + k;
      options.domain_size = 3;
      options.exogenous_fraction = 0.0;
      options.seed = 19 + k;
      PartitionedDatabase base = RandomPartitionedDatabase(schema, options);
      // Move exactly k facts to the exogenous side.
      PartitionedDatabase db = base;
      for (size_t moved = 0; moved < k && db.NumEndogenous() > 1; ++moved) {
        db = db.WithFactMadeExogenous(db.endogenous().facts().front());
      }
      size_t calls = 0;
      Timer timer;
      Polynomial via = FgmcViaFmcLemma61(*q, db, fmc_oracle, &calls);
      bool ok = via == direct.CountBySize(*q, db) &&
                calls == (size_t{1} << db.exogenous().size());
      table.PrintRow(db.NumEndogenous(), db.exogenous().size(), calls,
                     PassFail(ok), timer.ElapsedMs());
    }
  }

  Banner("E8b / Lemma 6.2 — FMC <= SVCn (oracle stays purely endogenous)");
  {
    auto schema = Schema::Create();
    CqPtr q = ParseCq(schema, "R(x,y), S(y,z)");
    auto witness = CertifyPseudoConnected(*q);
    if (!witness.has_value()) {
      std::cerr << "witness missing\n";
      return 1;
    }
    Table table({"|D|", "oracle calls", "verified", "ms"}, {7, 14, 12, 12});
    table.PrintHeader();
    BruteForceFgmc direct;
    BruteForceSvc oracle;
    for (size_t n = 3; n <= 8; ++n) {
      RandomDatabaseOptions options;
      options.num_facts = n;
      options.domain_size = 3;
      options.exogenous_fraction = 0.0;
      options.seed = 23 + n;
      PartitionedDatabase db = RandomPartitionedDatabase(schema, options);
      PascalStats stats;
      Timer timer;
      Polynomial via =
          FmcViaSvcnLemma62(*q, *witness, db.endogenous(), oracle, &stats);
      bool ok = via == direct.CountBySize(*q, db);
      table.PrintRow(db.NumEndogenous(), stats.oracle_calls, PassFail(ok),
                     timer.ElapsedMs());
    }
  }

  std::cout << "\nShape check vs the paper: Lemma 6.1's call count is "
               "exactly 2^k;\nLemma 6.2's construction adds no exogenous "
               "facts (the S0 = {μ} singleton\ncase), so the SVCn oracle "
               "suffices.\n";
  return 0;
}
