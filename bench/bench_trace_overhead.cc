// Tracing overhead guard (obs/trace.h + the deep-path hooks): tracing is
// strictly OPT-IN, and a disabled-trace request must not allocate a
// recorder or take a trace lock anywhere on the hot path. This bench
// enforces that contract — and the structural one — at runtime:
//
//   1. baseline rounds: blocks of UNTRACED in-process requests served
//      before any request has ever been traced;
//   2. mixed rounds: the same untraced blocks, interleaved with blocks of
//      traced requests. If the disabled path paid for tracing (shared
//      locks, allocation, residue), these blocks would slow down;
//   3. guard (exit 1 on violation): compared on the PER-REQUEST MINIMUM
//      latency of each phase (block averages are polluted by whatever
//      else the machine is doing; the fastest single request is the one
//      the scheduler left alone, so it isolates the code path's own
//      cost). Best mixed untraced request within 5% of the best baseline
//      request, with a noise allowance self-calibrated from the spread
//      the baseline rounds themselves exhibited (2 µs floor);
//   4. every traced response must carry a WELL-FORMED tree — a "service"
//      root, decode-free in-process shape route → engine → ..., the
//      engine span decomposed into compile/delta/accumulate (exact) or
//      per-checkpoint rounds (sampling) — and values BIT-IDENTICAL to the
//      untraced run: tracing observes, it never perturbs.
//
// Usage:
//   bench_trace_overhead [--reps N] [--json out.json]
//
// --json rows (JSONL-appended to BENCH_obs.json by scripts/check.sh):
//   {"name": "untraced_baseline" | "untraced_mixed" | "traced",
//    "requests": N, "us_per_req": ...}
//   {"name": "self_check", "overhead_pct": ..., "malformed_trees": 0,
//    "value_mismatches": 0, "ok": 1}

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "bench_util.h"
#include "shapley/data/parser.h"
#include "shapley/obs/trace.h"
#include "shapley/query/query_parser.h"
#include "shapley/service/shapley_service.h"

namespace {

using namespace shapley;

QueryPtr ParseQuery(const std::shared_ptr<Schema>& schema, const char* text) {
  UcqPtr ucq = ParseUcq(schema, text);
  if (ucq->disjuncts().size() == 1) return ucq->disjuncts()[0];
  return ucq;
}

/// The hot-path instance: small, exact, lifted — per-request cost is
/// dominated by the service/engine path the tracing hooks live on.
SvcRequest HotInstance(const std::shared_ptr<Schema>& schema) {
  SvcRequest request;
  request.query = ParseQuery(schema, "R(x), S(x,y)");
  request.db = ParsePartitionedDatabase(
      schema, "R(a) R(b) S(a,c) S(b,d) | S(a,d) S(b,c)");
  return request;
}

/// One measured block of `reps` requests: the block-average per-request
/// microseconds (throughput view, noise included) and the fastest single
/// request (the one the scheduler left alone — the guard's estimator).
struct BlockStats {
  double mean_us = 0.0;
  double min_us = 0.0;
};

BlockStats RunBlock(ShapleyService* service, const SvcRequest& request,
                    size_t reps) {
  BlockStats stats;
  stats.min_us = std::numeric_limits<double>::infinity();
  bench::Timer block_timer;
  for (size_t i = 0; i < reps; ++i) {
    bench::Timer request_timer;
    const SvcResponse response = service->Compute(request);
    stats.min_us = std::min(stats.min_us, 1000.0 * request_timer.ElapsedMs());
    if (!response.ok()) {
      std::cerr << "hot-path request failed mid-block\n";
      std::exit(1);
    }
  }
  stats.mean_us = 1000.0 * block_timer.ElapsedMs() /
                  static_cast<double>(reps);
  return stats;
}

double MinOf(const std::vector<BlockStats>& rounds,
             double BlockStats::* member) {
  double best = std::numeric_limits<double>::infinity();
  for (const BlockStats& round : rounds) best = std::min(best, round.*member);
  return best;
}

/// Structural contract of one traced EXACT response; increments
/// `malformed` on any violation.
void CheckExactTree(const SvcResponse& response, size_t* malformed) {
  if (!response.trace.has_value() ||
      response.trace->root.name != "service" ||
      !obs::WellNested(response.trace->root)) {
    ++*malformed;
    return;
  }
  for (const char* span :
       {"route", "cache", "engine", "compile", "delta", "accumulate"}) {
    if (response.trace->Find(span) == nullptr) {
      ++*malformed;
      return;
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  size_t reps = 300;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--reps" && i + 1 < argc) {
      reps = std::max<size_t>(50, std::strtoul(argv[++i], nullptr, 10));
    }
  }
  constexpr size_t kRounds = 4;

  bench::JsonReporter json =
      bench::JsonReporter::FromArgs(argc, argv, "bench_trace_overhead");
  bench::Banner(
      "Trace overhead guard (untraced hot path must not pay for tracing)");

  auto schema = Schema::Create();
  const SvcRequest untraced_request = HotInstance(schema);
  SvcRequest traced_request = untraced_request;
  traced_request.trace = true;

  ShapleyService service(ServiceOptions{.threads = 2});

  // Ground truth for the perturbation check, and cache warmup in one.
  const SvcResponse reference = service.Compute(untraced_request);
  if (!reference.ok()) {
    std::cerr << "reference request failed\n";
    return 1;
  }
  for (size_t i = 0; i < 50; ++i) service.Compute(untraced_request);

  // ---- Baseline rounds: tracing has NEVER been used in this process.
  std::vector<BlockStats> baseline_rounds;
  for (size_t round = 0; round < kRounds; ++round) {
    baseline_rounds.push_back(RunBlock(&service, untraced_request, reps));
  }

  // ---- Mixed rounds: traced blocks interleaved with untraced blocks.
  size_t malformed = 0;
  size_t value_mismatches = 0;
  std::vector<BlockStats> mixed_rounds;
  std::vector<BlockStats> traced_rounds;
  for (size_t round = 0; round < kRounds; ++round) {
    BlockStats traced_block;
    traced_block.min_us = std::numeric_limits<double>::infinity();
    bench::Timer block_timer;
    for (size_t i = 0; i < reps; ++i) {
      bench::Timer request_timer;
      const SvcResponse response = service.Compute(traced_request);
      traced_block.min_us =
          std::min(traced_block.min_us, 1000.0 * request_timer.ElapsedMs());
      if (response.values != reference.values) ++value_mismatches;
      CheckExactTree(response, &malformed);
    }
    traced_block.mean_us = 1000.0 * block_timer.ElapsedMs() /
                           static_cast<double>(reps);
    traced_rounds.push_back(traced_block);
    mixed_rounds.push_back(RunBlock(&service, untraced_request, reps));
  }

  // A traced SAMPLING request must decompose into per-checkpoint rounds.
  {
    SvcRequest sampled = traced_request;
    sampled.engine = "sampling";
    sampled.approx.epsilon = 0.25;
    sampled.approx.seed = 3;
    const SvcResponse response = service.Compute(sampled);
    const obs::TraceSpan* round =
        response.trace.has_value() ? response.trace->Find("round") : nullptr;
    if (round == nullptr || round->FindAttr("samples") == nullptr ||
        round->FindAttr("retired") == nullptr) {
      ++malformed;
    }
  }

  // The guard compares FASTEST SINGLE REQUESTS, not block averages: an
  // average absorbs whatever else the machine ran during the block, while
  // the fastest request of a 100+-request block is one the scheduler left
  // alone. The noise allowance is self-calibrated: a baseline→mixed shift
  // is only evidence of residue when it exceeds the spread the baseline
  // rounds showed AMONG THEMSELVES (with a 2 µs floor).
  const double baseline = MinOf(baseline_rounds, &BlockStats::min_us);
  const double mixed = MinOf(mixed_rounds, &BlockStats::min_us);
  const double traced = MinOf(traced_rounds, &BlockStats::min_us);
  double baseline_spread = 0.0;
  for (const BlockStats& round : baseline_rounds) {
    baseline_spread = std::max(baseline_spread, round.min_us - baseline);
  }
  const double allowance = std::max(2.0, baseline_spread);
  const double overhead_pct = 100.0 * (mixed - baseline) / baseline;
  const bool untraced_ok =
      mixed <= baseline * 1.05 || mixed - baseline <= allowance;

  bench::Table table({"phase", "requests", "min us/req", "mean us/req"},
                     {20, 12, 12, 12});
  table.PrintHeader();
  const double block_total = static_cast<double>(reps * kRounds);
  table.PrintRow("untraced_baseline", reps * kRounds, baseline,
                 MinOf(baseline_rounds, &BlockStats::mean_us));
  table.PrintRow("untraced_mixed", reps * kRounds, mixed,
                 MinOf(mixed_rounds, &BlockStats::mean_us));
  table.PrintRow("traced", reps * kRounds, traced,
                 MinOf(traced_rounds, &BlockStats::mean_us));
  json.Row({{"name", "untraced_baseline"},
            {"requests", block_total},
            {"us_per_req", baseline},
            {"mean_us_per_req", MinOf(baseline_rounds, &BlockStats::mean_us)}});
  json.Row({{"name", "untraced_mixed"},
            {"requests", block_total},
            {"us_per_req", mixed},
            {"mean_us_per_req", MinOf(mixed_rounds, &BlockStats::mean_us)}});
  json.Row({{"name", "traced"},
            {"requests", block_total},
            {"us_per_req", traced},
            {"mean_us_per_req", MinOf(traced_rounds, &BlockStats::mean_us)}});

  const bool ok = untraced_ok && malformed == 0 && value_mismatches == 0;
  std::cout << "\nself-check: untraced overhead "
            << (overhead_pct < 0 ? 0.0 : overhead_pct)
            << "% (guard 5% or " << allowance << " us noise allowance), "
            << malformed << " malformed trees, " << value_mismatches
            << " value mismatches: " << bench::PassFail(ok) << "\n";
  json.Row({{"name", "self_check"},
            {"overhead_pct", overhead_pct},
            {"malformed_trees", static_cast<double>(malformed)},
            {"value_mismatches", static_cast<double>(value_mismatches)},
            {"ok", ok ? 1.0 : 0.0}});
  return ok ? 0 : 1;
}
