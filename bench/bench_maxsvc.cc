// E9 — Section 6.3: the maximum Shapley value.
//
// (a) Lemma 6.3's property on random monotone binary games: a singleton
//     winning player always attains the maximum value.
// (b) Proposition 6.2: FGMC recovered from a *max-SVC* oracle (the oracle
//     returns only a maximizing fact and its value) — exactness and cost.

#include <iostream>
#include <random>

#include "bench_util.h"
#include "shapley/analysis/witnesses.h"
#include "shapley/engines/fgmc.h"
#include "shapley/engines/game.h"
#include "shapley/engines/svc.h"
#include "shapley/gen/generators.h"
#include "shapley/query/query_parser.h"
#include "shapley/reductions/lemmas.h"

int main() {
  using namespace shapley;
  using namespace shapley::bench;

  Banner("E9a / Lemma 6.3 — singleton supports attain the maximum value");
  {
    Table table({"players", "games", "property holds", "ms"}, {9, 7, 16, 12});
    table.PrintHeader();
    std::mt19937_64 rng(77);
    for (size_t n : {3, 5, 7}) {
      Timer timer;
      bool ok = true;
      int games = 30;
      for (int g = 0; g < games; ++g) {
        // Random monotone binary game with player 0 a singleton winner:
        // v(S) = 1 iff S hits a random upset including {0}.
        std::vector<uint64_t> generators = {uint64_t{1}};  // {player 0}.
        for (int extra = 0; extra < 3; ++extra) {
          generators.push_back(rng() % (uint64_t{1} << n));
        }
        BinaryWealth wealth = [&generators](uint64_t mask) {
          for (uint64_t gmask : generators) {
            if (gmask != 0 && (mask & gmask) == gmask) return true;
          }
          return false;
        };
        BigRational best = ShapleyValueBySubsets(n, wealth, 0);
        for (size_t p = 1; p < n; ++p) {
          if (ShapleyValueBySubsets(n, wealth, p) > best) ok = false;
        }
      }
      table.PrintRow(n, games, PassFail(ok), timer.ElapsedMs());
    }
  }

  Banner("E9b / Proposition 6.2 — FGMC from a max-SVC oracle");
  {
    auto schema = Schema::Create();
    CqPtr q = ParseCq(schema, "R(x,y), S(y,z)");
    auto witness = CertifyPseudoConnected(*q);
    if (!witness.has_value()) {
      std::cerr << "witness missing\n";
      return 1;
    }
    Table table({"|Dn|", "max-oracle calls", "verified", "ms"},
                {7, 18, 12, 12});
    table.PrintHeader();
    BruteForceFgmc direct;
    BruteForceSvc svc;
    MaxSvcOracle max_oracle = [&svc](const BooleanQuery& query,
                                     const PartitionedDatabase& db) {
      return svc.MaxValue(query, db).second;
    };
    for (size_t n = 3; n <= 7; ++n) {
      RandomDatabaseOptions options;
      options.num_facts = n + 1;
      options.domain_size = 3;
      options.exogenous_fraction = 0.2;
      options.seed = 3 * n + 1;
      PartitionedDatabase db = RandomPartitionedDatabase(schema, options);
      if (q->Evaluate(db.exogenous())) continue;
      PascalStats stats;
      Timer timer;
      Polynomial via = FgmcViaMaxSvcProp62(*q, *witness, db, max_oracle, &stats);
      bool ok = via == direct.CountBySize(*q, db);
      table.PrintRow(db.NumEndogenous(), stats.oracle_calls, PassFail(ok),
                     timer.ElapsedMs());
    }
  }

  std::cout << "\nShape check vs the paper: the maximality property of "
               "Lemma 6.3 holds on\nevery sampled game, so max-SVC is as "
               "hard as SVC under the paper's reductions\n(Proposition 6.2): "
               "the counting oracle calls match Lemma 4.1's |Dn|+1.\n";
  return 0;
}
