// Scatter/gather scaling of the shard router (cluster/router.h): the SAME
// mixed batch of independent instances pushed through a ShardRouter
// fronting 1 backend vs N backends, all over real TCP on ephemeral ports.
// Each backend is a full serving stack (ShapleyService + HttpServer); the
// router splits the batch by rendezvous shard, streams every sub-batch
// concurrently and re-merges lines in completion order — so the N-backend
// wall clock should approach 1/N of the single-backend one once per-
// request work dominates the wire.
//
// Self-checks (the bench FAILS, exit 1, if any is violated):
//   1. every routed response is BIT-IDENTICAL to the in-process
//      Compute() answer for the same request (exact rationals AND seeded
//      sampling estimates) in BOTH topologies;
//   2. zero transport errors, zero dropped ids;
//   3. the router actually scattered: with N backends, every backend
//      served at least one request of the mixed batch.
//
// Usage:
//   bench_cluster_scatter [--backends N] [--requests N] [--threads N]
//                         [--rounds N] [--json out.json]
//
// --json rows (JSONL-appended to BENCH_net.json by scripts/check.sh under
// {"bench": "cluster_scatter", ...}):
//   {"name": "3-backends", "backends": 3, "requests": 24, "rounds": 2,
//    "wall_ms": ..., "rps": ..., "speedup": ...}

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "shapley/cluster/router.h"
#include "shapley/data/parser.h"
#include "shapley/net/client.h"
#include "shapley/net/server.h"
#include "shapley/query/query_parser.h"
#include "shapley/service/shapley_service.h"

namespace {

using namespace shapley;

QueryPtr ParseQuery(const std::shared_ptr<Schema>& schema,
                    std::string_view text) {
  UcqPtr ucq = ParseUcq(schema, text);
  if (ucq->disjuncts().size() == 1) return ucq->disjuncts()[0];
  return ucq;
}

/// The workload: `count` mutually distinct instances (distinct constants →
/// distinct shard keys, so a fleet actually spreads them) alternating
/// exact lifted, exact counting, and seeded fixed-count sampling — the
/// last sized to dominate, so scatter parallelism has work to win on.
std::vector<SvcRequest> BuildBatch(const std::shared_ptr<Schema>& schema,
                                   size_t count) {
  std::vector<SvcRequest> requests;
  for (size_t j = 0; j < count; ++j) {
    const std::string a = "a" + std::to_string(j);
    SvcRequest r;
    switch (j % 3) {
      case 0:  // → lifted (tractable side).
        r.query = ParseQuery(schema, "R(x), S(x,y)");
        r.db = ParsePartitionedDatabase(
            schema, "R(" + a + ") S(" + a + ",b) | S(" + a + ",c)");
        break;
      case 1:  // → exact counting (#P side, small).
        r.query = ParseQuery(schema, "R(x), S(x,y), T(y)");
        r.db = ParsePartitionedDatabase(
            schema, "R(" + a + ") R(b" + a + ") S(" + a + ",c) S(b" + a +
                        ",d) T(c) | T(d)");
        break;
      default: {  // → seeded sampling, the expensive kind.
        r.query = ParseQuery(schema, "S(x,y), R(x), !T(y)");
        std::string db_text;
        for (int i = 0; i < 8; ++i) {
          const std::string c = a + "_" + std::to_string(i);
          db_text += "R(" + c + ") S(" + c + ",b" + std::to_string(i % 3) +
                     ") ";
        }
        db_text += "T(b0) | T(b1)";
        r.db = ParsePartitionedDatabase(schema, db_text);
        r.engine = "sampling";
        r.approx.epsilon = 0.05;
        r.approx.delta = 0.05;
        r.approx.seed = 100 + j;
        r.approx.strategy = ApproxStrategy::kHoeffding;
        break;
      }
    }
    requests.push_back(std::move(r));
  }
  return requests;
}

bool SameAnswer(const SvcResponse& a, const SvcResponse& b) {
  if (a.ok() != b.ok() || a.values != b.values || a.ranked != b.ranked ||
      a.engine != b.engine) {
    return false;
  }
  if (a.approx.has_value() != b.approx.has_value()) return false;
  if (a.approx.has_value() &&
      (a.approx->samples != b.approx->samples ||
       a.approx->fact_half_widths != b.approx->fact_half_widths)) {
    return false;
  }
  return true;
}

/// One serving stack; the fleet below owns `n` of them plus the router.
struct Stack {
  explicit Stack(size_t threads)
      : service(ServiceOptions{.threads = threads}), server(&service) {
    server.Start();
  }
  ShapleyService service;
  net::HttpServer server;
};

}  // namespace

int main(int argc, char** argv) {
  size_t backends = 3;
  size_t requests = 24;
  size_t threads = 2;
  size_t rounds = 2;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--backends" && i + 1 < argc) {
      backends = std::strtoul(argv[++i], nullptr, 10);
    } else if (arg == "--requests" && i + 1 < argc) {
      requests = std::strtoul(argv[++i], nullptr, 10);
    } else if (arg == "--threads" && i + 1 < argc) {
      threads = std::strtoul(argv[++i], nullptr, 10);
    } else if (arg == "--rounds" && i + 1 < argc) {
      rounds = std::strtoul(argv[++i], nullptr, 10);
    }
  }
  backends = std::max<size_t>(2, backends);
  requests = std::max<size_t>(backends, requests);
  rounds = std::max<size_t>(1, rounds);

  bench::JsonReporter json =
      bench::JsonReporter::FromArgs(argc, argv, "cluster_scatter");
  bench::Banner(
      "Shard-router scatter/gather: 1 backend vs a fleet (real TCP)");

  auto schema = Schema::Create();
  const std::vector<SvcRequest> batch = BuildBatch(schema, requests);

  // In-process ground truth, once per request.
  ShapleyService reference(ServiceOptions{.threads = threads});
  std::vector<SvcResponse> expected;
  for (const SvcRequest& request : batch) {
    expected.push_back(reference.Compute(request));
    if (!expected.back().ok()) {
      std::cerr << "reference request failed: "
                << expected.back().error->ToString() << "\n";
      return 1;
    }
  }

  size_t mismatches = 0;
  size_t transport_errors = 0;
  size_t idle_backends = 0;

  // One topology end to end: n stacks, a router over them, `rounds`
  // batches through the router, wall clock over the routed rounds only.
  auto run_topology = [&](size_t n) -> double {
    std::vector<std::unique_ptr<Stack>> stacks;
    std::vector<std::string> specs;
    for (size_t i = 0; i < n; ++i) {
      stacks.push_back(std::make_unique<Stack>(threads));
      specs.push_back("127.0.0.1:" +
                      std::to_string(stacks.back()->server.port()));
    }
    cluster::RouterOptions options;
    options.health_poll_ms = 0;  // Nothing flaps in a bench.
    cluster::ShardRouter router(specs, options);
    router.Start();
    double wall_ms = 0.0;
    try {
      net::ShapleyClient client("127.0.0.1", router.port());
      bench::Timer timer;
      for (size_t round = 0; round < rounds; ++round) {
        std::vector<SvcResponse> responses = client.ComputeBatch(batch);
        if (responses.size() != batch.size()) {
          std::cerr << n << "-backend: " << responses.size() << " of "
                    << batch.size() << " responses\n";
          ++transport_errors;
        }
        for (size_t i = 0; i < responses.size(); ++i) {
          if (!SameAnswer(responses[i], expected[i])) ++mismatches;
        }
      }
      wall_ms = timer.ElapsedMs();
    } catch (const std::exception& e) {
      std::cerr << n << "-backend: " << e.what() << "\n";
      ++transport_errors;
    }
    for (size_t i = 0; i < n; ++i) {
      if (router.backend(i)->routed() == 0) ++idle_backends;
    }
    router.Stop();
    return wall_ms;
  };

  bench::Table table({"topology", "backends", "requests", "wall ms", "req/s",
                      "speedup"},
                     {14, 10, 10, 12, 12, 10});
  table.PrintHeader();
  const size_t total = requests * rounds;
  double base_ms = 0.0;
  for (const size_t n : {size_t{1}, backends}) {
    const double wall_ms = run_topology(n);
    if (n == 1) base_ms = wall_ms;
    const double rps = 1000.0 * static_cast<double>(total) / wall_ms;
    const double speedup = wall_ms > 0.0 ? base_ms / wall_ms : 0.0;
    const std::string name = std::to_string(n) + "-backends";
    table.PrintRow(name, n, total, wall_ms, rps, speedup);
    json.Row({{"name", name},
              {"backends", static_cast<double>(n)},
              {"requests", static_cast<double>(total)},
              {"rounds", static_cast<double>(rounds)},
              {"wall_ms", wall_ms},
              {"rps", rps},
              {"speedup", speedup}});
  }

  json.Row({{"name", "self_check"},
            {"mismatches", static_cast<double>(mismatches)},
            {"transport_errors", static_cast<double>(transport_errors)},
            {"idle_backends", static_cast<double>(idle_backends)}});

  if (mismatches != 0 || transport_errors != 0) {
    std::cerr << "SELF-CHECK FAILED: " << mismatches << " mismatches, "
              << transport_errors << " transport errors\n";
    return 1;
  }
  // The single-backend topology trivially uses its one backend; the fleet
  // must have spread the batch (distinct keys ⇒ every backend works with
  // overwhelming probability at these sizes).
  if (idle_backends != 0) {
    std::cerr << "SELF-CHECK FAILED: " << idle_backends
              << " backends never saw a request\n";
    return 1;
  }
  std::cout << "\nself-check: all " << 2 * total
            << " routed responses bit-identical to in-process Compute()\n";
  return 0;
}
