#ifndef SHAPLEY_BENCH_BENCH_UTIL_H_
#define SHAPLEY_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <variant>
#include <vector>

namespace shapley::bench {

/// Wall-clock stopwatch (milliseconds, double).
class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  double ElapsedMs() const {
    auto now = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::milli>(now - start_).count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Fixed-width text table, paper style.
class Table {
 public:
  explicit Table(std::vector<std::string> headers,
                 std::vector<int> widths = {})
      : headers_(std::move(headers)), widths_(std::move(widths)) {
    if (widths_.empty()) {
      for (const std::string& h : headers_) {
        widths_.push_back(static_cast<int>(h.size()) + 4);
      }
    }
  }

  void PrintHeader() const {
    for (size_t i = 0; i < headers_.size(); ++i) {
      std::cout << std::left << std::setw(widths_[i]) << headers_[i];
    }
    std::cout << "\n";
    int total = 0;
    for (int w : widths_) total += w;
    std::cout << std::string(total, '-') << "\n";
  }

  template <typename... Cells>
  void PrintRow(const Cells&... cells) const {
    size_t i = 0;
    (PrintCell(cells, i++), ...);
    std::cout << "\n";
  }

 private:
  template <typename T>
  void PrintCell(const T& value, size_t i) const {
    std::ostringstream os;
    os << std::setprecision(4) << value;
    std::cout << std::left << std::setw(widths_[i < widths_.size() ? i : 0])
              << os.str();
  }

  std::vector<std::string> headers_;
  std::vector<int> widths_;
};

inline void Banner(const std::string& title) {
  std::cout << "\n" << std::string(76, '=') << "\n"
            << title << "\n" << std::string(76, '=') << "\n";
}

inline std::string PassFail(bool ok) { return ok ? "ok" : "** FAIL **"; }

/// Machine-readable benchmark output: rows of string/number metrics,
/// written as a JSON array of flat objects when the bench was invoked with
/// `--json out.json` (a no-op sink otherwise, so instrumenting costs one
/// line per row). The driver-side perf trajectory (BENCH_*.json) consumes
/// this format.
///
///   JsonReporter json = JsonReporter::FromArgs(argc, argv, "my_bench");
///   json.Row({{"name", "case1"}, {"ms", 12.5}, {"threads", 4.0}});
///   ...
///   json.Write();  // Also called by the destructor.
class JsonReporter {
 public:
  using Value = std::variant<double, std::string>;
  using Row_t = std::vector<std::pair<std::string, Value>>;

  /// Scans argv for "--json PATH" (or "--json=PATH"). Unrelated arguments
  /// are ignored, so this composes with a bench's own flag handling.
  static JsonReporter FromArgs(int argc, char** argv,
                               std::string bench_name) {
    JsonReporter reporter(std::move(bench_name));
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--json" && i + 1 < argc) {
        reporter.path_ = argv[i + 1];
      } else if (arg.rfind("--json=", 0) == 0) {
        reporter.path_ = arg.substr(7);
      }
    }
    return reporter;
  }

  explicit JsonReporter(std::string bench_name)
      : bench_name_(std::move(bench_name)) {}
  ~JsonReporter() { Write(); }

  JsonReporter(JsonReporter&&) = default;
  JsonReporter& operator=(JsonReporter&&) = default;

  bool enabled() const { return !path_.empty(); }

  void Row(Row_t row) {
    if (enabled()) rows_.push_back(std::move(row));
  }

  /// Writes the collected rows; idempotent (subsequent calls are no-ops).
  void Write() {
    if (!enabled() || written_) return;
    written_ = true;
    std::ofstream out(path_);
    if (!out) {
      std::cerr << "warning: cannot write --json file " << path_ << "\n";
      return;
    }
    out << "{\"bench\": \"" << Escaped(bench_name_) << "\", \"rows\": [";
    for (size_t r = 0; r < rows_.size(); ++r) {
      out << (r == 0 ? "\n" : ",\n") << "  {";
      for (size_t c = 0; c < rows_[r].size(); ++c) {
        if (c > 0) out << ", ";
        out << '"' << Escaped(rows_[r][c].first) << "\": ";
        if (const auto* num = std::get_if<double>(&rows_[r][c].second)) {
          std::ostringstream os;  // Full precision, no trailing padding.
          os << std::setprecision(15) << *num;
          out << os.str();
        } else {
          out << '"' << Escaped(std::get<std::string>(rows_[r][c].second))
              << '"';
        }
      }
      out << "}";
    }
    out << "\n]}\n";
    std::cout << "wrote " << rows_.size() << " rows to " << path_ << "\n";
  }

 private:
  static std::string Escaped(const std::string& s) {
    std::string out;
    for (char ch : s) {
      if (ch == '"' || ch == '\\') {
        out += '\\';
        out += ch;
      } else if (static_cast<unsigned char>(ch) < 0x20) {
        // RFC 8259: control characters must be escaped.
        char buf[8];
        std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
        out += buf;
      } else {
        out += ch;
      }
    }
    return out;
  }

  std::string bench_name_;
  std::string path_;
  std::vector<Row_t> rows_;
  bool written_ = false;
};

}  // namespace shapley::bench

#endif  // SHAPLEY_BENCH_BENCH_UTIL_H_
