#ifndef SHAPLEY_BENCH_BENCH_UTIL_H_
#define SHAPLEY_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace shapley::bench {

/// Wall-clock stopwatch (milliseconds, double).
class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  double ElapsedMs() const {
    auto now = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::milli>(now - start_).count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Fixed-width text table, paper style.
class Table {
 public:
  explicit Table(std::vector<std::string> headers,
                 std::vector<int> widths = {})
      : headers_(std::move(headers)), widths_(std::move(widths)) {
    if (widths_.empty()) {
      for (const std::string& h : headers_) {
        widths_.push_back(static_cast<int>(h.size()) + 4);
      }
    }
  }

  void PrintHeader() const {
    for (size_t i = 0; i < headers_.size(); ++i) {
      std::cout << std::left << std::setw(widths_[i]) << headers_[i];
    }
    std::cout << "\n";
    int total = 0;
    for (int w : widths_) total += w;
    std::cout << std::string(total, '-') << "\n";
  }

  template <typename... Cells>
  void PrintRow(const Cells&... cells) const {
    size_t i = 0;
    (PrintCell(cells, i++), ...);
    std::cout << "\n";
  }

 private:
  template <typename T>
  void PrintCell(const T& value, size_t i) const {
    std::ostringstream os;
    os << std::setprecision(4) << value;
    std::cout << std::left << std::setw(widths_[i < widths_.size() ? i : 0])
              << os.str();
  }

  std::vector<std::string> headers_;
  std::vector<int> widths_;
};

inline void Banner(const std::string& title) {
  std::cout << "\n" << std::string(76, '=') << "\n"
            << title << "\n" << std::string(76, '=') << "\n";
}

inline std::string PassFail(bool ok) { return ok ? "ok" : "** FAIL **"; }

}  // namespace shapley::bench

#endif  // SHAPLEY_BENCH_BENCH_UTIL_H_
