// E-exec — the batch-execution runtime vs the seed's serial loop.
//
// The seed's SvcEngine::AllValues was a loop of independent Value calls:
// per fact, two full FGMC oracle counts (SvcViaFgmc) or a rebuilt 2^|Dn|
// satisfaction table (BruteForceSvc). The exec runtime shares that work —
// one full-database compilation plus a per-fact delta (Claim A.1 identity),
// one satisfaction table plus one tallying sweep — and fans it across a
// thread pool with a shared oracle cache.
//
// Reported: wall time of the seed-style serial loop vs BatchSvcRunner at
// 1/2/4 threads, the speedup, oracle/cache counters, and a bit-identical
// check of the values. `--json out.json` emits the rows machine-readably.
//
// Expected shape: the 1-thread batch already beats the serial loop by ~2x
// on the lifted pipeline (halved oracle calls) and by ~|Dn|x on brute
// force (shared table + integer tallying); extra threads stack on top when
// the hardware has cores to give.

#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "shapley/data/fact.h"
#include "shapley/engines/fgmc.h"
#include "shapley/engines/svc.h"
#include "shapley/exec/batch_runner.h"
#include "shapley/query/query_parser.h"

namespace {

using namespace shapley;
using bench::JsonReporter;
using bench::Table;
using bench::Timer;

// A hierarchical sjf-CQ instance family for q = R(x), S(x,y):
// k R-facts and 2k S-facts, all endogenous (3k facts total).
PartitionedDatabase HierarchicalInstance(const std::shared_ptr<Schema>& schema,
                                         size_t k) {
  RelationId r = schema->AddRelation("R", 1);
  RelationId s = schema->AddRelation("S", 2);
  Database endo(schema);
  for (size_t i = 0; i < k; ++i) {
    Constant xi = Constant::Named("hx" + std::to_string(i));
    endo.Insert(Fact(r, {xi}));
    endo.Insert(Fact(s, {xi, Constant::Named("hy" + std::to_string(i % 3))}));
    endo.Insert(Fact(s, {xi, Constant::Named("hz" + std::to_string(i % 5))}));
  }
  return PartitionedDatabase::AllEndogenous(endo);
}

// The seed's AllValues: one independent Value call per endogenous fact.
std::map<Fact, BigRational> SeedSerialLoop(SvcEngine& engine,
                                           const BooleanQuery& query,
                                           const PartitionedDatabase& db) {
  std::map<Fact, BigRational> values;
  for (const Fact& f : db.endogenous().facts()) {
    values.emplace(f, engine.Value(query, db, f));
  }
  return values;
}

struct RunRow {
  std::string workload;
  std::string mode;
  size_t threads;
  double ms;
  double speedup;
  ExecStats stats;
  bool identical;
};

void Report(Table& table, JsonReporter& json, const RunRow& row,
            size_t facts) {
  table.PrintRow(row.workload, row.mode, row.threads, row.ms, row.speedup,
                 row.stats.oracle_calls, row.stats.cache_hits,
                 bench::PassFail(row.identical));
  json.Row({{"workload", row.workload},
            {"mode", row.mode},
            {"threads", static_cast<double>(row.threads)},
            {"facts", static_cast<double>(facts)},
            {"ms", row.ms},
            {"speedup", row.speedup},
            {"oracle_calls", static_cast<double>(row.stats.oracle_calls)},
            {"cache_hits", static_cast<double>(row.stats.cache_hits)},
            {"identical", row.identical ? 1.0 : 0.0}});
}

template <typename MakeEngine>
void RunWorkload(const std::string& workload, MakeEngine make_engine,
                 const QueryPtr& query, const PartitionedDatabase& db,
                 Table& table, JsonReporter& json, bool& all_identical) {
  const size_t facts = db.NumEndogenous();

  auto serial_engine = make_engine();
  Timer serial_timer;
  std::map<Fact, BigRational> expected =
      SeedSerialLoop(*serial_engine, *query, db);
  const double serial_ms = serial_timer.ElapsedMs();
  Report(table, json,
         RunRow{workload, "seed-serial-loop", 1, serial_ms, 1.0, ExecStats{},
                true},
         facts);

  std::vector<BatchInstance> batch{{query, db}};
  for (size_t threads : {size_t{1}, size_t{2}, size_t{4}}) {
    BatchOptions options;
    options.threads = threads;
    BatchSvcRunner runner(make_engine(), options);
    Timer timer;
    auto results = runner.AllValues(batch);
    const double ms = timer.ElapsedMs();
    const bool identical = results.size() == 1 && results[0] == expected;
    all_identical = all_identical && identical;
    Report(table, json,
           RunRow{workload, "batch", threads, ms,
                  ms > 0 ? serial_ms / ms : 0.0, runner.last_stats(),
                  identical},
           facts);
  }
}

}  // namespace

int main(int argc, char** argv) {
  JsonReporter json = JsonReporter::FromArgs(argc, argv, "parallel_scaling");
  size_t k = 70;        // 3k endogenous facts on the lifted workload.
  size_t brute_k = 6;   // 3k endogenous facts on the brute-force workload.
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--facts-k" && i + 1 < argc) k = std::atoi(argv[++i]);
    if (arg == "--brute-k" && i + 1 < argc) brute_k = std::atoi(argv[++i]);
  }

  bench::Banner(
      "E-exec / batch runtime vs seed serial loop — hierarchical q = "
      "R(x), S(x,y)");
  Table table({"workload", "mode", "threads", "ms", "speedup", "oracle",
               "hits", "values"},
              {16, 18, 9, 12, 10, 8, 7, 12});
  table.PrintHeader();

  bool all_identical = true;
  {
    auto schema = Schema::Create();
    CqPtr q = ParseCq(schema, "R(x), S(x,y)");
    PartitionedDatabase db = HierarchicalInstance(schema, k);
    RunWorkload(
        "lifted-fgmc",
        [] {
          return std::make_shared<SvcViaFgmc>(std::make_shared<LiftedFgmc>());
        },
        q, db, table, json, all_identical);
  }
  {
    auto schema = Schema::Create();
    CqPtr q = ParseCq(schema, "R(x), S(x,y)");
    PartitionedDatabase db = HierarchicalInstance(schema, brute_k);
    RunWorkload(
        "brute-force", [] { return std::make_shared<BruteForceSvc>(); }, q,
        db, table, json, all_identical);
  }

  std::cout << "\nvalues bit-identical across all modes: "
            << bench::PassFail(all_identical) << "\n";
  json.Write();
  return all_identical ? 0 : 1;
}
