// E3 — Figure 2: the A_i construction, measured.
//
// Runs the Lemma 4.1 reduction pipeline on growing databases and reports,
// per input size: the number of SVC oracle calls (the paper's construction
// uses exactly |Dn|+1), the size of the largest constructed instance A_i,
// exactness of the recovered counts against brute force, and wall time
// split between oracle work and the Pascal system solve.

#include <iostream>

#include "bench_util.h"
#include "shapley/analysis/witnesses.h"
#include "shapley/engines/fgmc.h"
#include "shapley/engines/svc.h"
#include "shapley/gen/generators.h"
#include "shapley/query/query_parser.h"
#include "shapley/reductions/lemmas.h"

int main() {
  using namespace shapley;
  using namespace shapley::bench;

  Banner(
      "E3 / Figure 2 — the A_i construction: oracle calls, instance sizes, "
      "exactness");

  auto schema = Schema::Create();
  CqPtr q = ParseCq(schema, "R(x,y), S(y,z)");
  auto witness = CertifyPseudoConnected(*q);
  if (!witness.has_value()) {
    std::cerr << "witness missing\n";
    return 1;
  }
  std::cout << "query: " << q->ToString()
            << "   island support: " << witness->island_support.ToString()
            << "\n\n";

  Table table({"|Dn|", "|Dx|", "oracle calls", "max |A_i|", "verified", "ms"},
              {7, 7, 14, 11, 12, 12});
  table.PrintHeader();

  BruteForceSvc oracle;
  BruteForceFgmc direct;
  for (size_t n = 2; n <= 9; ++n) {
    // Retry seeds until the instance is non-trivial (Dx alone must not
    // satisfy the query, otherwise the reduction short-circuits).
    PartitionedDatabase db;
    for (uint64_t seed = 42 + n;; ++seed) {
      RandomDatabaseOptions options;
      options.num_facts = n + 2;
      options.domain_size = 3;
      options.exogenous_fraction = 0.15;
      options.seed = seed;
      db = RandomPartitionedDatabase(schema, options);
      if (!q->Evaluate(db.exogenous()) && db.NumEndogenous() >= n) break;
    }

    PascalStats stats;
    Timer timer;
    Polynomial via_svc = FgmcViaSvcLemma41(*q, *witness, db, oracle, &stats);
    double elapsed = timer.ElapsedMs();
    bool ok = via_svc == direct.CountBySize(*q, db);
    table.PrintRow(db.NumEndogenous(), db.exogenous().size(),
                   stats.oracle_calls, stats.largest_instance_total,
                   PassFail(ok), elapsed);
  }

  std::cout
      << "\nShape check vs the paper: oracle calls = |Dn|+1 exactly; the\n"
         "constructed instances grow by one support copy per call (linear\n"
         "overhead); recovered counts are exact. The exponential wall time\n"
         "comes from the *brute-force oracle* (SVC itself is the hard\n"
         "problem), not from the reduction, which is polynomial.\n";
  return 0;
}
