// E7 — Corollary 4.6: cc-disjoint CRPQs, routed through Lemma 4.1 or 4.4.
//
// Connected CRPQs go through the pseudo-connectedness witness (Lemma 4.1);
// disconnected ones with component-disjoint vocabularies go through the
// decomposition (Lemma 4.4). Both paths recover exact FGMC counts from an
// SVC oracle; the table shows the routing, verification, and cost.

#include <iostream>

#include "bench_util.h"
#include "shapley/analysis/classifier.h"
#include "shapley/analysis/witnesses.h"
#include "shapley/engines/fgmc.h"
#include "shapley/engines/svc.h"
#include "shapley/gen/generators.h"
#include "shapley/query/path_query.h"
#include "shapley/reductions/lemmas.h"

int main() {
  using namespace shapley;
  using namespace shapley::bench;

  Banner("E7 / Corollary 4.6 — cc-disjoint CRPQs: Lemma 4.1 vs Lemma 4.4 routing");
  Table table({"query", "route", "verdict", "verified", "ms"},
              {34, 22, 12, 12, 12});
  table.PrintHeader();

  BruteForceFgmc direct;
  BruteForceSvc oracle;

  // Connected CRPQ: single atom [A B](x,y).
  {
    auto schema = Schema::Create();
    std::vector<PathAtom> atoms;
    atoms.push_back({Regex::Parse("A B"), Term(Variable::Named("x")),
                     Term(Variable::Named("y"))});
    auto q = ConjunctiveRegularPathQuery::Create(schema, std::move(atoms));
    auto witness = CertifyPseudoConnected(*q);
    Database graph = RandomGraph(schema, {"A", "B"}, 3, 0.35, 11);
    PartitionedDatabase db = PartitionedDatabase::AllEndogenous(graph);
    Timer timer;
    bool ok = witness.has_value() &&
              FgmcViaSvcLemma41(*q, *witness, db, oracle) ==
                  direct.CountBySize(*q, db);
    table.PrintRow("[A B](x,y)", "Lemma 4.1 (connected)",
                   ToString(ClassifySvcComplexity(*q).tractability),
                   PassFail(ok), timer.ElapsedMs());
  }

  // Decomposable CRPQ: [A B](x,y) ∧ [C](u,w).
  {
    auto schema = Schema::Create();
    std::vector<PathAtom> atoms;
    atoms.push_back({Regex::Parse("A B"), Term(Variable::Named("x")),
                     Term(Variable::Named("y"))});
    atoms.push_back({Regex::Parse("C"), Term(Variable::Named("u")),
                     Term(Variable::Named("w"))});
    auto q = ConjunctiveRegularPathQuery::Create(schema, std::move(atoms));
    auto decomposition = FindDecomposition(*q);
    Database graph = RandomGraph(schema, {"A", "B", "C"}, 3, 0.22, 13);
    PartitionedDatabase db = PartitionedDatabase::AllEndogenous(graph);
    Timer timer;
    bool ok = decomposition.has_value() &&
              FgmcViaSvcLemma44(*q, *decomposition, db, oracle) ==
                  direct.CountBySize(*q, db);
    table.PrintRow("[A B](x,y) ^ [C](u,w)", "Lemma 4.4 (decomp.)",
                   ToString(ClassifySvcComplexity(*q).tractability),
                   PassFail(ok), timer.ElapsedMs());
  }

  // sjf-CRPQ with three pairwise-disjoint components.
  {
    auto schema = Schema::Create();
    std::vector<PathAtom> atoms;
    atoms.push_back({Regex::Parse("A"), Term(Variable::Named("x")),
                     Term(Variable::Named("y"))});
    atoms.push_back({Regex::Parse("B"), Term(Variable::Named("u")),
                     Term(Variable::Named("u"))});
    auto q = ConjunctiveRegularPathQuery::Create(schema, std::move(atoms));
    auto decomposition = FindDecomposition(*q);
    Database graph = RandomGraph(schema, {"A", "B"}, 3, 0.3, 17);
    PartitionedDatabase db = PartitionedDatabase::AllEndogenous(graph);
    Timer timer;
    bool ok = decomposition.has_value() &&
              FgmcViaSvcLemma44(*q, *decomposition, db, oracle) ==
                  direct.CountBySize(*q, db);
    table.PrintRow("[A](x,y) ^ [B](u,u)  [sjf]", "Lemma 4.4 (decomp.)",
                   ToString(ClassifySvcComplexity(*q).tractability),
                   PassFail(ok), timer.ElapsedMs());
  }

  std::cout << "\nShape check vs the paper: connected components route "
               "through Lemma 4.1,\ndisconnected cc-disjoint ones through "
               "Lemma 4.4; both are exact, giving\nthe effective dichotomy "
               "of Corollary 4.6.\n";
  return 0;
}
