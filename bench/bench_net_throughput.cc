// Load generator for the network front (net/server.h): an in-process
// HttpServer over a ShapleyService on an ephemeral port, hammered by N
// client connections each firing a mixed request stream — tractable
// lifted instances, guarded brute-force instances, and (ε, δ) sampling
// with a fixed seed — over real TCP sockets.
//
// Self-checks (the bench FAILS, exit 1, if any is violated):
//   1. every response arrives and is ok;
//   2. every payload is bit-identical to the in-process Compute() answer
//      for the same request (exact rationals AND sampling estimates);
//   3. the server drains cleanly: Stop() after the storm leaves
//      requests_served == requests sent, nothing dropped.
//
// Usage:
//   bench_net_throughput [--connections N] [--requests N] [--threads N]
//                        [--json out.json]
//
// --json rows (JSONL-appended to BENCH_net.json by scripts/check.sh):
//   {"name": "4-conn", "connections": 4, "requests": 256,
//    "wall_ms": ..., "rps": ..., "batch": 0|1}

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "shapley/data/parser.h"
#include "shapley/net/client.h"
#include "shapley/net/server.h"
#include "shapley/query/query_parser.h"
#include "shapley/service/shapley_service.h"

namespace {

using namespace shapley;

QueryPtr ParseQuery(const std::shared_ptr<Schema>& schema, const char* text) {
  UcqPtr ucq = ParseUcq(schema, text);
  if (ucq->disjuncts().size() == 1) return ucq->disjuncts()[0];
  return ucq;
}

bool SameAnswer(const SvcResponse& a, const SvcResponse& b) {
  return a.ok() == b.ok() && a.values == b.values && a.ranked == b.ranked &&
         a.engine == b.engine;
}

}  // namespace

int main(int argc, char** argv) {
  size_t connections = 4;
  size_t requests_per_connection = 64;
  size_t threads = 4;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--connections" && i + 1 < argc) {
      connections = std::strtoul(argv[++i], nullptr, 10);
    } else if (arg == "--requests" && i + 1 < argc) {
      requests_per_connection = std::strtoul(argv[++i], nullptr, 10);
    } else if (arg == "--threads" && i + 1 < argc) {
      threads = std::strtoul(argv[++i], nullptr, 10);
    }
  }
  connections = std::max<size_t>(1, connections);
  requests_per_connection = std::max<size_t>(1, requests_per_connection);

  bench::JsonReporter json =
      bench::JsonReporter::FromArgs(argc, argv, "bench_net_throughput");
  bench::Banner("Network front throughput (real TCP, mixed request stream)");

  // The request mix: the dichotomy's both sides plus a seeded estimate.
  auto schema = Schema::Create();
  QueryPtr easy = ParseQuery(schema, "R(x), S(x,y)");
  QueryPtr hard = ParseQuery(schema, "R(x), S(x,y), T(y)");
  PartitionedDatabase db = ParsePartitionedDatabase(
      schema, "R(a) R(b) S(a,c) S(b,d) T(c) | T(d) S(a,e)");

  std::vector<SvcRequest> mix;
  {
    SvcRequest r;
    r.query = easy;
    r.db = db;
    mix.push_back(r);  // → lifted
    r.query = hard;
    mix.push_back(r);  // → brute
    r.mode = SvcMode::kTopK;
    r.top_k = 2;
    mix.push_back(r);  // → ranked through the wire
    SvcRequest s;
    s.query = hard;
    s.db = db;
    s.engine = "sampling";
    s.approx.epsilon = 0.1;
    s.approx.seed = 42;
    mix.push_back(s);  // → estimate, fixed seed
  }

  ServiceOptions service_options;
  service_options.threads = threads;
  ShapleyService service(service_options);
  net::ServerOptions server_options;
  server_options.max_connections = connections + 8;
  net::HttpServer server(&service, server_options);
  server.Start();

  // In-process ground truth, computed once per mix entry on an identical
  // but separate service (its counters must not pollute the serving one).
  ShapleyService reference(service_options);
  std::vector<SvcResponse> expected;
  for (const SvcRequest& request : mix) {
    expected.push_back(reference.Compute(request));
    if (!expected.back().ok()) {
      std::cerr << "reference request failed: "
                << expected.back().error->ToString() << "\n";
      return 1;
    }
  }

  std::atomic<size_t> mismatches{0};
  std::atomic<size_t> transport_errors{0};

  auto storm = [&](size_t conns, bool as_batch) {
    std::vector<std::thread> clients;
    bench::Timer timer;
    for (size_t c = 0; c < conns; ++c) {
      clients.emplace_back([&, c] {
        try {
          net::ShapleyClient client("127.0.0.1", server.port());
          if (as_batch) {
            // One big pipelined batch per connection: completion-order
            // streaming under load.
            std::vector<SvcRequest> batch;
            for (size_t i = 0; i < requests_per_connection; ++i) {
              batch.push_back(mix[(c + i) % mix.size()]);
            }
            std::vector<SvcResponse> responses = client.ComputeBatch(batch);
            for (size_t i = 0; i < responses.size(); ++i) {
              if (!SameAnswer(responses[i], expected[(c + i) % mix.size()])) {
                mismatches.fetch_add(1);
              }
            }
          } else {
            for (size_t i = 0; i < requests_per_connection; ++i) {
              SvcResponse response =
                  client.Compute(mix[(c + i) % mix.size()]);
              if (!SameAnswer(response, expected[(c + i) % mix.size()])) {
                mismatches.fetch_add(1);
              }
            }
          }
        } catch (const std::exception& e) {
          std::cerr << "client " << c << ": " << e.what() << "\n";
          transport_errors.fetch_add(1);
        }
      });
    }
    for (std::thread& t : clients) t.join();
    return timer.ElapsedMs();
  };

  bench::Table table({"scenario", "conns", "requests", "wall ms", "req/s"},
                     {14, 8, 10, 12, 12});
  table.PrintHeader();
  struct Scenario {
    std::string name;
    size_t conns;
    bool batch;
  };
  const std::vector<Scenario> scenarios = {
      {"1-conn", 1, false},
      {std::to_string(connections) + "-conn", connections, false},
      {std::to_string(connections) + "-conn-batch", connections, true},
  };
  for (const Scenario& scenario : scenarios) {
    const size_t total = scenario.conns * requests_per_connection;
    const double wall_ms = storm(scenario.conns, scenario.batch);
    const double rps = 1000.0 * static_cast<double>(total) / wall_ms;
    table.PrintRow(scenario.name, scenario.conns, total, wall_ms, rps);
    json.Row({{"name", scenario.name},
              {"connections", static_cast<double>(scenario.conns)},
              {"requests", static_cast<double>(total)},
              {"wall_ms", wall_ms},
              {"rps", rps},
              {"batch", scenario.batch ? 1.0 : 0.0}});
  }

  // Drain and audit: nothing dropped, nothing mismatched. A batch POST is
  // ONE HTTP request carrying many service requests, so the two layers
  // audit separately.
  server.Stop();
  size_t total_sent = 0;   // Service-level requests.
  size_t total_http = 0;   // HTTP exchanges.
  for (const Scenario& scenario : scenarios) {
    total_sent += scenario.conns * requests_per_connection;
    total_http +=
        scenario.batch ? scenario.conns
                       : scenario.conns * requests_per_connection;
  }
  const bool served_all =
      server.requests_served() == total_http &&
      service.requests_submitted() == total_sent;
  std::cout << "\nself-check: " << server.requests_served() << "/"
            << total_sent << " served over " << server.connections_accepted()
            << " connections, " << mismatches.load()
            << " payload mismatches, " << transport_errors.load()
            << " transport errors: "
            << bench::PassFail(served_all && mismatches.load() == 0 &&
                               transport_errors.load() == 0)
            << "\n";
  json.Row({{"name", "self_check"},
            {"served", static_cast<double>(server.requests_served())},
            {"sent", static_cast<double>(total_sent)},
            {"mismatches", static_cast<double>(mismatches.load())},
            {"transport_errors", static_cast<double>(transport_errors.load())}});
  if (!served_all || mismatches.load() != 0 || transport_errors.load() != 0) {
    return 1;
  }
  return 0;
}
