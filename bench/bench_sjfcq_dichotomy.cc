// E5 — the sjf-CQ dichotomy (Corollaries 4.2 / 4.5) as a scaling experiment.
//
// FP side:   hierarchical R(x), S(x,y) — the lifted pipeline (SVC via
//            lifted FGMC, Claim A.1) scales polynomially.
// Hard side: non-hierarchical R(x), S(x,y), T(y) — brute force doubles per
//            fact; the lifted engine refuses (correctly).
//
// Uses google-benchmark; each benchmark reports time vs database size. The
// expected *shape*: polynomial growth for lifted-hierarchical, exponential
// 2^n growth for brute-force, with the crossover at a handful of facts.

#include <benchmark/benchmark.h>

#include "shapley/engines/fgmc.h"
#include "shapley/engines/svc.h"
#include "shapley/gen/generators.h"
#include "shapley/query/query_parser.h"

namespace {

using namespace shapley;

// A hierarchical instance family: k R-facts, 2k S-facts.
PartitionedDatabase HierarchicalInstance(const std::shared_ptr<Schema>& schema,
                                         size_t k) {
  RelationId r = schema->AddRelation("R", 1);
  RelationId s = schema->AddRelation("S", 2);
  Database endo(schema);
  for (size_t i = 0; i < k; ++i) {
    Constant xi = Constant::Named("hx" + std::to_string(i));
    endo.Insert(Fact(r, {xi}));
    endo.Insert(Fact(s, {xi, Constant::Named("hy" + std::to_string(i % 3))}));
    endo.Insert(Fact(s, {xi, Constant::Named("hz" + std::to_string(i % 5))}));
  }
  return PartitionedDatabase::AllEndogenous(endo);
}

void BM_LiftedSvc_Hierarchical(benchmark::State& state) {
  auto schema = Schema::Create();
  CqPtr q = ParseCq(schema, "R(x), S(x,y)");
  PartitionedDatabase db =
      HierarchicalInstance(schema, static_cast<size_t>(state.range(0)));
  Fact probe = db.endogenous().facts().front();
  SvcViaFgmc svc(std::make_shared<LiftedFgmc>());
  for (auto _ : state) {
    benchmark::DoNotOptimize(svc.Value(*q, db, probe));
  }
  state.counters["facts"] = static_cast<double>(db.NumEndogenous());
}
BENCHMARK(BM_LiftedSvc_Hierarchical)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_BruteSvc_Hierarchical(benchmark::State& state) {
  auto schema = Schema::Create();
  CqPtr q = ParseCq(schema, "R(x), S(x,y)");
  PartitionedDatabase db =
      HierarchicalInstance(schema, static_cast<size_t>(state.range(0)));
  Fact probe = db.endogenous().facts().front();
  BruteForceSvc svc;
  for (auto _ : state) {
    benchmark::DoNotOptimize(svc.Value(*q, db, probe));
  }
  state.counters["facts"] = static_cast<double>(db.NumEndogenous());
}
BENCHMARK(BM_BruteSvc_Hierarchical)->Arg(2)->Arg(3)->Arg(4)->Arg(5)->Arg(6);

void BM_BruteSvc_NonHierarchicalRST(benchmark::State& state) {
  auto schema = Schema::Create();
  CqPtr q = ParseCq(schema, "R(x), S(x,y), T(y)");
  PartitionedDatabase db = RstGadget(schema, static_cast<size_t>(state.range(0)),
                                     static_cast<size_t>(state.range(0)), 0.7, 5);
  Fact probe = db.endogenous().facts().front();
  BruteForceSvc svc;
  for (auto _ : state) {
    benchmark::DoNotOptimize(svc.Value(*q, db, probe));
  }
  state.counters["facts"] = static_cast<double>(db.NumEndogenous());
}
BENCHMARK(BM_BruteSvc_NonHierarchicalRST)->Arg(2)->Arg(3)->Arg(4);

// Knowledge compilation on the hard query: still exponential in the worst
// case, but the d-DNNF cache beats raw enumeration on structured instances.
void BM_KcSvc_NonHierarchicalRST(benchmark::State& state) {
  auto schema = Schema::Create();
  CqPtr q = ParseCq(schema, "R(x), S(x,y), T(y)");
  PartitionedDatabase db = RstGadget(schema, static_cast<size_t>(state.range(0)),
                                     static_cast<size_t>(state.range(0)), 0.7, 5);
  Fact probe = db.endogenous().facts().front();
  SvcViaFgmc svc(std::make_shared<LineageFgmc>());
  for (auto _ : state) {
    benchmark::DoNotOptimize(svc.Value(*q, db, probe));
  }
  state.counters["facts"] = static_cast<double>(db.NumEndogenous());
}
BENCHMARK(BM_KcSvc_NonHierarchicalRST)->Arg(2)->Arg(3)->Arg(4)->Arg(5);

}  // namespace

int main(int argc, char** argv) {
  printf(
      "E5 / sjf-CQ dichotomy — FP side (lifted, hierarchical) vs #P-hard "
      "side (brute/KC, q_RST)\nExpected shape: lifted grows polynomially to "
      "hundreds of facts; brute force\ndoubles per endogenous fact and dies "
      "around 20.\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
