// E10 — Section 6.4: Shapley values of constants.
//
// (a) The q* author-expertise scenario on DBLP-style synthetic data:
//     constant-level values rank authors; fact-level values split credit
//     across papers (shown side by side, matching the paper's motivation).
// (b) Proposition 6.3: SVCconst ≡ FGMCconst — both directions verified and
//     timed as the number of endogenous constants grows.

#include <algorithm>
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "shapley/engines/constants.h"
#include "shapley/engines/svc.h"
#include "shapley/gen/generators.h"
#include "shapley/query/query_parser.h"
#include "shapley/reductions/lemmas.h"

int main() {
  using namespace shapley;
  using namespace shapley::bench;

  Banner("E10a / q* — author expertise: constants vs facts as players");
  {
    auto schema = Schema::Create();
    Database db = DblpDatabase(schema, 5, 8, 0.4, 99);
    CqPtr q = ParseCq(schema, "Publication(x,y), Keyword(y,$Shapley)");

    ConstantPartition partition;
    for (Constant c : db.Constants()) {
      if (c.name().rfind("author", 0) == 0) {
        partition.endogenous.insert(c);
      } else {
        partition.exogenous.insert(c);
      }
    }
    auto const_values = AllSvcConstBruteForce(*q, db, partition);

    // Fact-level values for comparison: the same game over facts.
    PartitionedDatabase fact_db = PartitionedDatabase::AllEndogenous(db);
    BruteForceSvc svc;
    auto fact_values = svc.AllValues(*q, fact_db);

    Table table({"author", "Sh(constant)", "sum Sh(author's facts)"},
                {12, 18, 24});
    table.PrintHeader();
    for (const auto& [author, value] : const_values) {
      BigRational fact_sum(0);
      for (const auto& [fact, fvalue] : fact_values) {
        if (fact.Mentions(author)) fact_sum += fvalue;
      }
      table.PrintRow(author.name(), value.ToString() + " (~" +
                                        std::to_string(value.ToDouble()) + ")",
                     fact_sum.ToString());
    }
    std::cout << "\nNote the paper's point: an author's expertise is split "
                 "across facts; the\nconstant-level value aggregates it "
                 "coherently.\n";
  }

  Banner("E10b / Proposition 6.3 — SVCconst ≡ FGMCconst, both directions");
  {
    auto schema = Schema::Create();
    CqPtr q = ParseCq(schema, "Publication(x,y), Keyword(y,$Shapley)");
    Table table({"|Cn|", "direction", "oracle calls", "verified", "ms"},
                {7, 30, 14, 12, 12});
    table.PrintHeader();

    for (size_t authors : {3, 4, 5, 6}) {
      Database db = DblpDatabase(schema, authors, authors + 3, 0.5,
                                 100 + authors);
      ConstantPartition partition;
      for (Constant c : db.Constants()) {
        if (c.name().rfind("author", 0) == 0) {
          partition.endogenous.insert(c);
        } else {
          partition.exogenous.insert(c);
        }
      }

      // Forward: SVCconst from the counting problem.
      {
        FgmcConstOracle oracle = [&q](const Database& d,
                                      const ConstantPartition& p) {
          return FgmcConstBySize(*q, d, p);
        };
        Timer timer;
        bool ok = true;
        size_t calls = 0;
        for (Constant c : partition.endogenous) {
          BigRational via =
              SvcConstViaFgmcConst(*q, db, partition, c, oracle);
          calls += 2;
          ok = ok && via == SvcConstBruteForce(*q, db, partition, c);
        }
        table.PrintRow(partition.endogenous.size(),
                       "SVCconst <= FGMCconst (fwd)", calls, PassFail(ok),
                       timer.ElapsedMs());
      }
      // Backward (Proposition 6.3): FGMCconst from the SVCconst oracle.
      {
        SvcConstOracle oracle = [&q](const Database& d,
                                     const ConstantPartition& p, Constant c) {
          return SvcConstBruteForce(*q, d, p, c);
        };
        PascalStats stats;
        Timer timer;
        Polynomial via =
            FgmcConstViaSvcConstProp63(*q, db, partition, oracle, &stats);
        bool ok = via == FgmcConstBySize(*q, db, partition);
        table.PrintRow(partition.endogenous.size(),
                       "FGMCconst <= SVCconst (Prop 6.3)", stats.oracle_calls,
                       PassFail(ok), timer.ElapsedMs());
      }
    }
  }

  std::cout << "\nShape check vs the paper: the equivalence of Proposition "
               "6.3 is exact in both\ndirections; the backward direction "
               "uses |Cn|+1 oracle calls via the collapsed\nsingle-constant "
               "support (no exogenous constants added).\n";
  return 0;
}
