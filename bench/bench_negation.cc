// E11 — Section 6.2: queries with negation.
//
// (a) Proposition 6.1 on sjf-CQ¬: FGMC of the variable-connected core
//     (with its covered negated atoms) recovered from an SVC oracle for the
//     full query — including ground negated atoms as blockers.
// (b) Beyond sjf-CQ¬ (Examples D.1/D.2): the two 1RA⁻ queries of the paper,
//     expressed as unions of CQ¬; the Lemma D.2 construction is run through
//     the generic Pascal machinery on the hand-built support split.

#include <iostream>

#include "bench_util.h"
#include "shapley/engines/fgmc.h"
#include "shapley/engines/svc.h"
#include "shapley/gen/generators.h"
#include "shapley/query/query_parser.h"
#include "shapley/query/union_query.h"
#include "shapley/reductions/lemmas.h"
#include "shapley/reductions/pascal.h"

int main() {
  using namespace shapley;
  using namespace shapley::bench;

  Banner("E11a / Proposition 6.1 — sjf-CQ¬: FGMC of the vc-core via SVC_q");
  {
    Table table({"query", "counted q~", "verified", "ms"}, {36, 34, 12, 12});
    table.PrintHeader();
    BruteForceFgmc direct;
    BruteForceSvc oracle;

    struct Case {
      const char* text;
    };
    for (const Case& c :
         {Case{"A(x), S(x,y), B(y), !N(x,y)"},
          Case{"A(x), S(x,y), B(y), !N(x,y), !G(c0)"},
          Case{"A(x), S(x,y), B(y), !N(x,y), P(u,w)"}}) {
      auto schema = Schema::Create();
      CqPtr q = ParseCq(schema, c.text);
      RandomDatabaseOptions options;
      options.num_facts = 6;
      options.domain_size = 2;
      options.exogenous_fraction = 0.2;
      options.seed = 31;
      PartitionedDatabase db = RandomPartitionedDatabase(schema, options);
      CqPtr counted;
      Timer timer;
      Polynomial via =
          FgmcViaSvcNegationD2(*q, 0, db, oracle, nullptr, &counted);
      bool ok = via == direct.CountBySize(*counted, db);
      table.PrintRow(c.text, counted->ToString(), PassFail(ok),
                     timer.ElapsedMs());
    }
  }

  Banner("E11b / Examples D.1, D.2 — 1RA⁻ queries beyond sjf-CQ¬");
  {
    Table table({"query", "as union of CQ¬", "verified", "ms"},
                {26, 44, 12, 12});
    table.PrintHeader();
    BruteForceFgmc direct;
    BruteForceSvc oracle;

    // Example D.1: q1 ≡ ∃x,y D(x) ∧ S(x,y) ∧ A(y) ∧ ¬(B(y) ∧ ¬C(y))
    //            ≡ (D,S,A,¬B) ∨ (D,S,A,C).
    {
      auto schema = Schema::Create();
      UcqPtr q1 = ParseUcq(
          schema, "D(x), S(x,y), A(y), !B(y) | D(x), S(x,y), A(y), C(y)");
      // The counted query q̃ equals q1 itself (the positive core D,S,A is
      // the whole variable-connected part; the DNF negation stays).
      RandomDatabaseOptions options;
      options.num_facts = 6;
      options.domain_size = 2;
      options.exogenous_fraction = 0.0;
      options.seed = 37;
      PartitionedDatabase db = RandomPartitionedDatabase(schema, options);

      // Hand-built Lemma D.2 construction: S freezes the positive core.
      CqPtr positive_core = ParseCq(schema, "D(x), S(x,y), A(y)");
      Database support = positive_core->Freeze();
      Constant a;
      for (Constant c : support.Constants()) {
        a = c;
        break;
      }
      Database s0(schema), s_minus(schema);
      for (const Fact& f : support.facts()) {
        (f.Mentions(a) ? s0 : s_minus).Insert(f);
      }
      PascalSpec spec;
      spec.oracle_query = q1.get();
      spec.base = db;
      spec.exogenous_extra = Database(schema);
      spec.s0 = s0;
      spec.s_minus = s_minus;
      spec.mu = s0.facts().front();
      spec.duplicated = a;
      spec.blockers = Database(schema);
      spec.count_supports_directly = false;

      Timer timer;
      Polynomial via = RunPascalReduction(spec, oracle);
      bool ok = via == direct.CountBySize(*q1, db);
      table.PrintRow("Ex. D.1 (P6.1 pattern)",
                     "D,S,A,!B | D,S,A,C", PassFail(ok), timer.ElapsedMs());
    }

    // Example D.2: q2 ≡ ∃x,y S(x,y) ∧ ¬(A(x) ∧ B(y))
    //            ≡ (S,¬A) ∨ (S,¬B).
    {
      auto schema = Schema::Create();
      UcqPtr q2 = ParseUcq(schema, "S(x,y), !A(x) | S(x,y), !B(y)");
      RandomDatabaseOptions options;
      options.num_facts = 6;
      options.domain_size = 2;
      options.exogenous_fraction = 0.0;
      options.seed = 41;
      PartitionedDatabase db = RandomPartitionedDatabase(schema, options);

      CqPtr positive_core = ParseCq(schema, "S(x,y)");
      Database support = positive_core->Freeze();
      Constant a;
      for (Constant c : support.Constants()) {
        a = c;
        break;
      }
      PascalSpec spec;
      spec.oracle_query = q2.get();
      spec.base = db;
      spec.exogenous_extra = Database(schema);
      spec.s0 = support;  // Single fact S(f1,f2): S0 = S, S− = ∅.
      spec.s_minus = Database(schema);
      spec.mu = support.facts().front();
      spec.duplicated = a;
      spec.blockers = Database(schema);
      spec.count_supports_directly = false;

      Timer timer;
      Polynomial via = RunPascalReduction(spec, oracle);
      bool ok = via == direct.CountBySize(*q2, db);
      table.PrintRow("Ex. D.2 (P4.3 pattern)", "S,!A | S,!B", PassFail(ok),
                     timer.ElapsedMs());
    }
  }

  std::cout << "\nShape check vs the paper: the negation-aware construction "
               "recovers exact\ncounts for sjf-CQ¬ cores with covered and "
               "ground negations (Prop 6.1), and\nthe same machinery handles "
               "the richer 1RA⁻ negations of Examples D.1/D.2.\n";
  return 0;
}
