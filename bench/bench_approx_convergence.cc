// Error-vs-samples convergence of the Monte Carlo sampling engine on an
// instance BEYOND the brute-force guard (|Dn| > 25, where the exhaustive
// engines refuse to run): the query is kept hierarchical so the lifted
// polynomial engine provides the exact reference, and the sampler's
// empirical max/mean absolute error is tracked against the Hoeffding
// half-width its (ε, δ) contract certifies at each sample count. The
// self-check asserts the certificate holds at every point of the curve —
// deterministic under the fixed seed, so it can never flake, only regress.
//
// Flags: --facts N        target fact count           (default 48)
//        --threads N      sampling pool width         (default 4)
//        --samples-max M  largest sample count tried  (default 4096)
//        --json PATH      machine-readable rows (BENCH_approx.json format)

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "shapley/approx/sampling.h"
#include "shapley/engines/fgmc.h"
#include "shapley/engines/svc.h"
#include "shapley/exec/oracle_cache.h"
#include "shapley/exec/thread_pool.h"
#include "shapley/gen/generators.h"
#include "shapley/query/query_parser.h"

using namespace shapley;
using shapley::bench::Banner;
using shapley::bench::JsonReporter;
using shapley::bench::PassFail;
using shapley::bench::Table;
using shapley::bench::Timer;

int main(int argc, char** argv) {
  size_t facts = 48;
  size_t threads = 4;
  size_t samples_max = 4096;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--facts" && i + 1 < argc) {
      facts = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--threads" && i + 1 < argc) {
      threads = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--samples-max" && i + 1 < argc) {
      samples_max = std::strtoull(argv[++i], nullptr, 10);
    }
  }
  JsonReporter json =
      JsonReporter::FromArgs(argc, argv, "bench_approx_convergence");

  Banner("Sampling-engine convergence beyond the brute-force guard");

  auto schema = Schema::Create();
  UcqPtr parsed = ParseUcq(schema, "R(x), S(x,y)");
  QueryPtr query = parsed->disjuncts()[0];

  // Grow the random instance until it is genuinely out of the exhaustive
  // engines' reach (duplicate draws merge, so ask for more than needed).
  // Fully endogenous: an exogenous part that already satisfies the
  // monotone query would pin every value to exactly 0 and the curve would
  // measure nothing.
  RandomDatabaseOptions options;
  options.num_facts = std::max<size_t>(facts, 32);
  options.domain_size = 8;
  options.exogenous_fraction = 0.0;
  options.seed = 29;
  PartitionedDatabase db = RandomPartitionedDatabase(schema, options);
  while (db.NumEndogenous() <= kBruteForceMaxEndogenous) {
    options.num_facts += 8;
    db = RandomPartitionedDatabase(schema, options);
  }
  const size_t n = db.NumEndogenous();
  std::cout << "instance: hierarchical sjf-CQ over |Dn| = " << n
            << " endogenous facts (brute-force guard: "
            << kBruteForceMaxEndogenous
            << ") — exact reference from the lifted polynomial engine\n";

  SvcViaFgmc lifted(std::make_shared<LiftedFgmc>());
  Timer exact_timer;
  std::map<Fact, BigRational> exact = lifted.AllValues(*query, db);
  const double exact_ms = exact_timer.ElapsedMs();

  ThreadPool pool(threads);
  OracleCache cache;  // Shared across the sweep: the SatMemo stays warm.

  Table table({"samples", "half_width", "max_err", "mean_err", "memo_hits",
               "wall_ms", "bounded"},
              {10, 13, 12, 12, 12, 10, 10});
  table.PrintHeader();

  bool all_bounded = true;
  for (size_t samples = 64; samples <= samples_max; samples *= 4) {
    // Epsilon far below what the budget can certify, so max_samples is
    // the binding constraint and the sweep hits each count exactly.
    SamplingSvc sampler(ApproxParams{.epsilon = 1e-4,
                                     .delta = 0.05,
                                     .seed = 17,
                                     .max_samples = samples});
    sampler.set_exec_context(
        ExecContext{threads > 1 ? &pool : nullptr, &cache});

    Timer timer;
    std::map<Fact, BigRational> estimate = sampler.AllValues(*query, db);
    const double wall_ms = timer.ElapsedMs();

    double max_err = 0.0, sum_err = 0.0;
    for (const auto& [fact, value] : estimate) {
      const double err =
          std::abs(value.ToDouble() - exact.at(fact).ToDouble());
      max_err = std::max(max_err, err);
      sum_err += err;
    }
    const double mean_err = sum_err / static_cast<double>(n);
    const ApproxInfo& info = sampler.last_info();
    const bool bounded = max_err <= info.half_width;
    all_bounded = all_bounded && bounded;

    table.PrintRow(samples, info.half_width, max_err, mean_err,
                   info.memo_hits, wall_ms, PassFail(bounded));
    json.Row({{"name", "convergence"},
              {"facts", static_cast<double>(n)},
              {"threads", static_cast<double>(threads)},
              {"samples", static_cast<double>(samples)},
              {"half_width", info.half_width},
              {"max_abs_error", max_err},
              {"mean_abs_error", mean_err},
              {"memo_hits", static_cast<double>(info.memo_hits)},
              {"wall_ms", wall_ms},
              {"exact_ms", exact_ms},
              {"bounded", bounded ? "yes" : "no"}});
  }

  std::cout << "exact (lifted) reference: " << exact_ms << " ms\n"
            << "self-check (max error within the certified half-width at "
               "every sample count): "
            << PassFail(all_bounded) << "\n";
  json.Write();
  return all_bounded ? 0 : 1;
}
