// E13 — ablation of the knowledge compiler's design choices.
//
// The d-DNNF compiler (the counting substrate behind LineageFgmc/LineagePqe)
// has two load-bearing optimizations: connected-component decomposition
// (independent-OR nodes) and cofactor caching. This bench disables each on
// the series-parallel family (k independent fact pairs) and on the RST
// gadget, reporting circuit sizes and compile times. Counting results stay
// identical in all configurations (asserted) — only cost changes.

#include <iostream>

#include "bench_util.h"
#include "shapley/engines/fgmc.h"
#include "shapley/gen/generators.h"
#include "shapley/lineage/ddnnf.h"
#include "shapley/lineage/lineage.h"
#include "shapley/query/query_parser.h"

int main() {
  using namespace shapley;
  using namespace shapley::bench;

  Banner("E13 — knowledge-compilation ablation: components & caching");
  Table table({"instance", "config", "circuit nodes", "verified", "ms"},
              {26, 24, 15, 12, 12});
  table.PrintHeader();

  struct Config {
    const char* label;
    bool components;
    bool cache;
  };
  const Config configs[] = {{"full", true, true},
                            {"no components", false, true},
                            {"no cache", true, false},
                            {"neither", false, false}};

  // Family 1: k independent pairs (series-parallel lineage).
  for (size_t k : {6, 10}) {
    auto schema = Schema::Create();
    RelationId r = schema->AddRelation("P", 2);
    Database endo(schema);
    CqPtr q = ParseCq(schema, "P(x,y), P(y,x)");
    for (size_t i = 0; i < k; ++i) {
      Constant u = Constant::Named("pu" + std::to_string(i));
      Constant w = Constant::Named("pw" + std::to_string(i));
      endo.Insert(Fact(r, {u, w}));
      endo.Insert(Fact(r, {w, u}));
    }
    PartitionedDatabase db = PartitionedDatabase::AllEndogenous(endo);
    Lineage lineage = BuildLineage(*q, db);

    Polynomial reference;
    for (const Config& config : configs) {
      DnfCompileOptions options;
      options.use_component_decomposition = config.components;
      options.use_cache = config.cache;
      options.node_cap = 5000000;
      Timer timer;
      bool ok = true;
      size_t nodes = 0;
      try {
        DdnnfCircuit circuit = CompileDnf(lineage, options);
        nodes = circuit.size();
        Polynomial counts = circuit.CountBySize();
        if (config.components && config.cache) {
          reference = counts;
        } else {
          ok = counts == reference;
        }
      } catch (const std::invalid_argument&) {
        ok = false;
        nodes = options.node_cap;
      }
      table.PrintRow("pairs k=" + std::to_string(k), config.label, nodes,
                     PassFail(ok), timer.ElapsedMs());
    }
  }

  // Family 2: the RST gadget (dense shared structure).
  {
    auto schema = Schema::Create();
    CqPtr q = ParseCq(schema, "R(x), S(x,y), T(y)");
    PartitionedDatabase db = RstGadget(schema, 4, 4, 0.8, 3);
    Lineage lineage = BuildLineage(*q, db);
    Polynomial reference;
    for (const Config& config : configs) {
      DnfCompileOptions options;
      options.use_component_decomposition = config.components;
      options.use_cache = config.cache;
      options.node_cap = 5000000;
      Timer timer;
      bool ok = true;
      size_t nodes = 0;
      try {
        DdnnfCircuit circuit = CompileDnf(lineage, options);
        nodes = circuit.size();
        Polynomial counts = circuit.CountBySize();
        if (config.components && config.cache) {
          reference = counts;
        } else {
          ok = counts == reference;
        }
      } catch (const std::invalid_argument&) {
        ok = false;
        nodes = options.node_cap;
      }
      table.PrintRow("RST gadget 4x4", config.label, nodes, PassFail(ok),
                     timer.ElapsedMs());
    }
  }

  std::cout << "\nShape check: with both optimizations off, the series-"
               "parallel circuit is the\nfull Shannon tree (2^(k+1) nodes); "
               "either optimization alone tames it, since\ncaching recovers "
               "what decomposition exploits on this family. On the denser\n"
               "RST gadget the two optimizations are complementary (each "
               "roughly halves the\ncircuit). Counting results are identical "
               "across configs.\n";
  return 0;
}
