// E12 — Shapley axioms and game-theoretic invariants, swept.
//
// The Shapley value is the unique function satisfying efficiency, symmetry
// and the null-player axiom; the library's engines must therefore satisfy
// them on every query game. This bench sweeps random instances per query
// class and reports violations (expected: none), plus the subset-vs-
// permutation formula agreement (Equations 1 and 2).

#include <iostream>

#include "bench_util.h"
#include "shapley/engines/svc.h"
#include "shapley/gen/generators.h"
#include "shapley/query/query_parser.h"

int main() {
  using namespace shapley;
  using namespace shapley::bench;

  Banner("E12 — Shapley axioms on query games (sweep)");
  Table table({"query", "instances", "efficiency", "null-player",
               "eq1=eq2", "ms"},
              {30, 11, 12, 13, 10, 12});
  table.PrintHeader();

  BruteForceSvc svc;
  PermutationSvc permutations;

  struct Case {
    const char* query;
    bool union_query;
  };
  for (const Case& c : {Case{"R(x), S(x,y)", false},
                        Case{"R(x), S(x,y), T(y)", false},
                        Case{"R(x,y), R(y,z)", false},
                        Case{"R(x), S(x,y) | T(y)", true},
                        Case{"A(x), !B(x)", false}}) {
    auto schema = Schema::Create();
    QueryPtr q;
    if (c.union_query) {
      q = ParseUcq(schema, c.query);
    } else {
      q = ParseCq(schema, c.query);
    }

    Timer timer;
    int instances = 12;
    bool efficiency = true, null_player = true, formulas_agree = true;
    for (int i = 0; i < instances; ++i) {
      RandomDatabaseOptions options;
      options.num_facts = 6;
      options.domain_size = 3;
      options.exogenous_fraction = 0.25;
      options.seed = 1000 + i;
      PartitionedDatabase db = RandomPartitionedDatabase(schema, options);
      auto values = svc.AllValues(*q, db);

      // Efficiency: sum = v(Dn) − v(∅).
      BigRational sum(0);
      for (const auto& [fact, value] : values) sum += value;
      int v_full = q->Evaluate(db.AllFacts()) ? 1 : 0;
      int v_empty = q->Evaluate(db.exogenous()) ? 1 : 0;
      if (!(sum == BigRational(v_full - v_empty))) efficiency = false;

      // Null player: a fact over relations the query never touches.
      PartitionedDatabase with_null = db;
      RelationId bystander = schema->AddRelation("Bystander9", 1);
      Fact null_fact(bystander, {Constant::Named("nobody")});
      with_null.AddEndogenous(null_fact);
      if (!(svc.Value(*q, with_null, null_fact) == BigRational(0))) {
        null_player = false;
      }

      // Equation (1) vs Equation (2) on small instances.
      if (db.NumEndogenous() >= 1 && db.NumEndogenous() <= 7) {
        const Fact& probe = db.endogenous().facts().front();
        if (!(svc.Value(*q, db, probe) == permutations.Value(*q, db, probe))) {
          formulas_agree = false;
        }
      }
    }
    table.PrintRow(c.query, instances, PassFail(efficiency),
                   PassFail(null_player), PassFail(formulas_agree),
                   timer.ElapsedMs());
  }

  std::cout << "\nShape check: all three axioms hold on every instance for "
               "every class,\nincluding the non-monotone CQ¬ game (whose "
               "values may be negative).\n";
  return 0;
}
