#!/usr/bin/env bash
# Single CI entry point: configure, build, run the test suite, and run one
# fast benchmark (with its bit-identical self-check) as a smoke test of the
# exec runtime. Usage: scripts/check.sh [build-dir]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
jobs="$(nproc 2>/dev/null || echo 2)"

echo "== configure =="
cmake -B "$build_dir" -S "$repo_root"

echo "== build =="
cmake --build "$build_dir" -j "$jobs"

echo "== test =="
ctest --test-dir "$build_dir" --output-on-failure -j "$jobs"

echo "== service tests (guard: the glob must have picked them up) =="
# Direct invocation: fails loudly if the test glob ever stops matching
# tests/service/ (and avoids ctest flags newer than the CMake floor).
"$build_dir/service_shapley_service_test" --gtest_brief=1
"$build_dir/service_service_concurrency_test" --gtest_brief=1

echo "== approx tests (guard: cross-validation vs the exact engines) =="
"$build_dir/approx_sampling_test" --gtest_brief=1

echo "== net tests (guard: codec round-trips + e2e socket) =="
"$build_dir/net_codec_test" --gtest_brief=1
"$build_dir/net_server_test" --gtest_brief=1
"$build_dir/net_client_backoff_test" --gtest_brief=1
"$build_dir/net_http_parse_test" --gtest_brief=1

echo "== cluster tests (guard: shard map units + router e2e over real TCP) =="
# The router e2e spins a ShardRouter plus three in-process backends on
# ephemeral ports and asserts every scattered batch — including one with a
# backend killed mid-flight — is bit-identical to in-process Compute().
"$build_dir/cluster_shard_map_test" --gtest_brief=1
"$build_dir/cluster_router_test" --gtest_brief=1

echo "== obs tests (guard: registry units, /metrics scrapes, record/replay, tracing) =="
"$build_dir/obs_metrics_test" --gtest_brief=1
"$build_dir/obs_scrape_test" --gtest_brief=1
"$build_dir/obs_reqlog_replay_test" --gtest_brief=1
"$build_dir/obs_trace_test" --gtest_brief=1
"$build_dir/obs_cluster_trace_test" --gtest_brief=1

echo "== net smoke (serve on an ephemeral port, call over a real socket) =="
# End-to-end through the CLI: start the server, send one exact and one
# approximate request through the client library, check the values are
# bit-identical to the in-process run of the same requests, then drain
# with SIGTERM and require a clean exit 0.
serve_log="$build_dir/serve_smoke.log"
"$build_dir/example_cli" serve --port 0 --threads 2 > "$serve_log" 2>/dev/null &
serve_pid=$!
# A failing assertion below must not orphan the background server.
trap 'kill "$serve_pid" 2>/dev/null || true' EXIT
for _ in $(seq 1 100); do
  grep -q "^listening on " "$serve_log" && break
  sleep 0.1
done
port="$(sed -n 's/^listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' "$serve_log")"
[ -n "$port" ] || { echo "serve smoke: no port line in $serve_log"; exit 1; }
smoke_q='R(x), S(x,y), T(y)'
smoke_db='R(a) R(b) S(a,c) S(b,d) T(c) | T(d)'
for extra in "" "--engine sampling --seed 3"; do
  # shellcheck disable=SC2086
  "$build_dir/example_cli" call "127.0.0.1:$port" values "$smoke_q" "$smoke_db" --json $extra 2>/dev/null \
      > "$build_dir/smoke_wire.json"
  # shellcheck disable=SC2086
  "$build_dir/example_cli" values "$smoke_q" "$smoke_db" --json $extra 2>/dev/null \
      > "$build_dir/smoke_local.json"
  python3 - "$build_dir/smoke_wire.json" "$build_dir/smoke_local.json" <<'PYEOF'
import json, sys
wire, local = (json.load(open(p)) for p in sys.argv[1:3])
assert wire["values"] == local["values"], \
    f"wire != local:\n{wire['values']}\n{local['values']}"
assert wire["status"] == 200, wire
PYEOF
done
echo "== trace smoke (same live server: one-shot traced probe, span tree) =="
# `trace` sends one traced request and renders the span tree; it exits
# non-zero on transport failure, a failed request or a missing trace, so a
# broken trace path fails here loudly. The rendered tree must show the
# backend root and the engine decomposition.
trace_out="$build_dir/trace_smoke.txt"
"$build_dir/example_cli" trace "127.0.0.1:$port" > "$trace_out"
for span in 'backend' 'engine' 'compile'; do
  grep -q "^ *$span " "$trace_out" \
      || { echo "trace smoke: missing span $span"; exit 1; }
done

echo "== metrics scrape smoke (same live server: scrape /metrics, grep series) =="
# The server above has now served real traffic (the traced probe included);
# a scrape must be parseable Prometheus text carrying the build-info,
# latency-histogram, conservation-self-check, per-phase duration and
# per-table cache series. `scrape` exits non-zero on transport failure or a
# non-200, so a wedged /metrics fails here loudly.
scrape_out="$build_dir/scrape_smoke.txt"
"$build_dir/example_cli" scrape "127.0.0.1:$port" > "$scrape_out"
for series in \
    'shapley_build_info{version=' \
    'shapley_request_latency_ms_bucket{engine=' \
    'shapley_service_requests_submitted_total' \
    'shapley_service_stats_conservation_error 0' \
    'shapley_server_requests_served_total{role="backend"}' \
    'shapley_phase_duration_ms_bucket{phase="engine"' \
    'shapley_server_eventloop_wakeups_total{role="backend"}' \
    'shapley_server_eventloop_dispatches_total{role="backend"}' \
    'shapley_server_eventloop_using_epoll{role="backend"}' \
    'shapley_cache_hits_total{table="counts"}' \
    'shapley_flight_recorded_total{role="backend"}' \
    'shapley_heavy_recorded_total{role="backend",sketch="shard_key"}' \
    'shapley_heavy_recorded_total{role="backend",sketch="query_class"}' \
    'shapley_slowlog_captured_total{role="backend"}'; do
  grep -qF "$series" "$scrape_out" \
      || { echo "metrics smoke: missing series $series"; exit 1; }
done
"$build_dir/example_cli" stats "127.0.0.1:$port" > /dev/null

echo "== debug-endpoint smoke (same live server: flight / hot / slow decks) =="
# The always-on deck must have observed the traffic above with no opt-in:
# the flight ring holds digests for every request served, the hot tables
# counted every shard key and query class, and the slow-log answers (empty
# — nothing above the default threshold). `top` renders the same decks
# through the client library and exits non-zero on any transport failure.
python3 - "$port" <<'PYEOF'
import json, sys, urllib.request
port = int(sys.argv[1])
def fetch(path):
    with urllib.request.urlopen(f"http://127.0.0.1:{port}{path}",
                                timeout=10) as r:
        assert r.status == 200, f"{path}: status {r.status}"
        return json.load(r)
flight = fetch("/v1/debug/flight")
assert flight["recorded"] > 0 and flight["entries"], flight
assert all(e["target"] for e in flight["entries"])
hot = fetch("/v1/debug/hot")
for sketch in ("shard_key", "query_class"):
    assert hot["sketches"][sketch]["total"] > 0, hot
    assert hot["sketches"][sketch]["hitters"], hot
slow = fetch("/v1/debug/slow")
assert slow["captured"] == 0 and slow["entries"] == [], slow
print("debug smoke: %d digests recorded, %d hot keys, slow-log empty" % (
    flight["recorded"], len(hot["sketches"]["shard_key"]["hitters"])))
PYEOF
"$build_dir/example_cli" top "127.0.0.1:$port" > "$build_dir/top_smoke.txt"
grep -q "^shapley top — " "$build_dir/top_smoke.txt" \
    || { echo "top smoke: missing header"; exit 1; }

echo "== high-concurrency smoke (512 simultaneous keep-alive connections) =="
# One single-threaded client holds 512 keep-alive connections open AT ONCE
# against the same live serve process (event loop: one fd each, not one OS
# thread each) and runs two request rounds over every one of them — round
# two proves the connections were reused, not re-accepted.
python3 - "$port" <<'PYEOF'
import socket, sys
port = int(sys.argv[1])
N = 512
probe = b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n"
conns = [socket.create_connection(("127.0.0.1", port), timeout=10)
         for _ in range(N)]
def read_response(s):
    data = b""
    while b"\r\n\r\n" not in data:
        chunk = s.recv(4096)
        assert chunk, "connection closed mid-head"
        data += chunk
    head, rest = data.split(b"\r\n\r\n", 1)
    lines = head.split(b"\r\n")
    status = int(lines[0].split()[1])
    length = 0
    for line in lines[1:]:
        name, _, value = line.partition(b":")
        if name.strip().lower() == b"content-length":
            length = int(value.strip())
    while len(rest) < length:
        chunk = s.recv(4096)
        assert chunk, "connection closed mid-body"
        rest += chunk
    assert len(rest) == length, "unexpected trailing bytes"
    return status
for rnd in range(2):
    for s in conns:
        s.sendall(probe)
    for i, s in enumerate(conns):
        st = read_response(s)
        assert st == 200, f"conn {i} round {rnd}: status {st}"
for s in conns:
    s.close()
print(f"high-concurrency smoke: {N} keep-alive connections x 2 rounds, all 200")
PYEOF

kill -TERM "$serve_pid"
wait "$serve_pid" || { echo "serve smoke: server did not drain cleanly"; exit 1; }
trap - EXIT
echo "serve/call smoke: values bit-identical over the socket, metrics scraped, clean drain"

echo "== bench (net throughput, appending to BENCH_net.json) =="
# Multi-connection load generator with its own bit-identical self-check
# (the bench exits 1 on any mismatch, drop or transport error).
"$build_dir/bench_net_throughput" --connections 4 --requests 64 \
    --json "$build_dir/bench_net_throughput.json"
python3 -c 'import json,sys; print(json.dumps(json.load(open(sys.argv[1]))))' \
    "$build_dir/bench_net_throughput.json" \
    >> "$repo_root/BENCH_net.json"

echo "== bench (cluster scatter/gather, appending to BENCH_net.json) =="
# Same mixed batch through a ShardRouter fronting 1 backend vs 3 backends,
# all on ephemeral ports; the bench exits 1 unless every routed response is
# bit-identical to in-process Compute(), no id is dropped, and every
# backend of the fleet served at least one request.
"$build_dir/bench_cluster_scatter" --backends 3 --requests 24 --rounds 2 \
    --json "$build_dir/bench_cluster_scatter.json"
python3 -c 'import json,sys; print(json.dumps(json.load(open(sys.argv[1]))))' \
    "$build_dir/bench_cluster_scatter.json" \
    >> "$repo_root/BENCH_net.json"

echo "== bench (record/replay, appending to BENCH_obs.json) =="
# Captures a 3-strategy mixed run (exact, hoeffding/bernstein/stratified
# sampling, a batch, a malformed body) and replays it twice against fresh
# servers; the bench exits 1 unless every replayed response is
# bit-identical in canonical form with zero transport errors.
"$build_dir/bench_replay" --requests 28 \
    --json "$build_dir/bench_replay.json"
python3 -c 'import json,sys; print(json.dumps(json.load(open(sys.argv[1]))))' \
    "$build_dir/bench_replay.json" \
    >> "$repo_root/BENCH_obs.json"
# The replay now runs against the event-loop server, so its bit-identical
# zero-drop verdict doubles as a network-front regression line: mirror it
# into BENCH_net.json alongside the throughput bench.
python3 -c 'import json,sys; print(json.dumps(json.load(open(sys.argv[1]))))' \
    "$build_dir/bench_replay.json" \
    >> "$repo_root/BENCH_net.json"

echo "== bench (trace overhead guard, appending to BENCH_obs.json) =="
# Untraced hot-path requests interleaved with traced ones: the bench exits
# 1 if the untraced path regresses more than 5% against its pre-tracing
# baseline, if any traced tree is malformed, or if tracing perturbs a
# single computed value.
"$build_dir/bench_trace_overhead" --reps 120 \
    --json "$build_dir/bench_trace_overhead.json"
python3 -c 'import json,sys; print(json.dumps(json.load(open(sys.argv[1]))))' \
    "$build_dir/bench_trace_overhead.json" \
    >> "$repo_root/BENCH_obs.json"

echo "== bench (flight-recorder overhead guard, appending to BENCH_obs.json) =="
# Same guard methodology over the ALWAYS-ON path: every request pays digest
# keying + flight/heavy recording. The bench exits 1 if that costs more
# than 5% (beyond scheduler noise) against the unrecorded baseline, if the
# deck's conservation invariants break, or if any fast request lands in the
# slow-log.
"$build_dir/bench_flight_overhead" --reps 120 \
    --json "$build_dir/bench_flight_overhead.json"
python3 -c 'import json,sys; print(json.dumps(json.load(open(sys.argv[1]))))' \
    "$build_dir/bench_flight_overhead.json" \
    >> "$repo_root/BENCH_obs.json"

echo "== bench (fast: small instances, JSON to $build_dir/bench_parallel_scaling.json) =="
"$build_dir/bench_parallel_scaling" --facts-k 20 --brute-k 5 \
    --json "$build_dir/bench_parallel_scaling.json"

echo "== bench (service throughput, appending to BENCH_service.json) =="
"$build_dir/bench_service_throughput" --requests 64 --facts 7 \
    --json "$build_dir/bench_service_throughput.json"
# Append this run as ONE compact line (JSONL) so the accumulated perf
# trajectory stays machine-readable: one json.loads() per line.
python3 -c 'import json,sys; print(json.dumps(json.load(open(sys.argv[1]))))' \
    "$build_dir/bench_service_throughput.json" \
    >> "$repo_root/BENCH_service.json"

echo "== bench (approx convergence, appending to BENCH_approx.json) =="
# Error-vs-samples curve beyond the brute-force guard; the bench itself
# fails if any point's empirical error escapes its certified half-width.
"$build_dir/bench_approx_convergence" --samples-max 4096 \
    --json "$build_dir/bench_approx_convergence.json"
python3 -c 'import json,sys; print(json.dumps(json.load(open(sys.argv[1]))))' \
    "$build_dir/bench_approx_convergence.json" \
    >> "$repo_root/BENCH_approx.json"

echo "== bench (adaptive stopping, appending to BENCH_approx.json) =="
# Sample-count reduction of the sequential stopping strategies vs the
# fixed Hoeffding count. The bench itself fails unless (1) bernstein draws
# >= 5x fewer samples on the zero-variance instance, (2) every estimate at
# every curve point stays within its certified per-fact half-width, and
# (3) serial and 4-thread runs are bit-identical.
"$build_dir/bench_adaptive_stopping" --facts 48 --threads 4 \
    --json "$build_dir/bench_adaptive_stopping.json"
python3 -c 'import json,sys; print(json.dumps(json.load(open(sys.argv[1]))))' \
    "$build_dir/bench_adaptive_stopping.json" \
    >> "$repo_root/BENCH_approx.json"

echo "== check.sh: all green =="
