#!/usr/bin/env bash
# Single CI entry point: configure, build, run the test suite, and run one
# fast benchmark (with its bit-identical self-check) as a smoke test of the
# exec runtime. Usage: scripts/check.sh [build-dir]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
jobs="$(nproc 2>/dev/null || echo 2)"

echo "== configure =="
cmake -B "$build_dir" -S "$repo_root"

echo "== build =="
cmake --build "$build_dir" -j "$jobs"

echo "== test =="
ctest --test-dir "$build_dir" --output-on-failure -j "$jobs"

echo "== bench (fast: small instances, JSON to $build_dir/bench_parallel_scaling.json) =="
"$build_dir/bench_parallel_scaling" --facts-k 20 --brute-k 5 \
    --json "$build_dir/bench_parallel_scaling.json"

echo "== check.sh: all green =="
