#!/usr/bin/env bash
# Single CI entry point: configure, build, run the test suite, and run one
# fast benchmark (with its bit-identical self-check) as a smoke test of the
# exec runtime. Usage: scripts/check.sh [build-dir]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
jobs="$(nproc 2>/dev/null || echo 2)"

echo "== configure =="
cmake -B "$build_dir" -S "$repo_root"

echo "== build =="
cmake --build "$build_dir" -j "$jobs"

echo "== test =="
ctest --test-dir "$build_dir" --output-on-failure -j "$jobs"

echo "== service tests (guard: the glob must have picked them up) =="
# Direct invocation: fails loudly if the test glob ever stops matching
# tests/service/ (and avoids ctest flags newer than the CMake floor).
"$build_dir/service_shapley_service_test" --gtest_brief=1
"$build_dir/service_service_concurrency_test" --gtest_brief=1

echo "== approx tests (guard: cross-validation vs the exact engines) =="
"$build_dir/approx_sampling_test" --gtest_brief=1

echo "== bench (fast: small instances, JSON to $build_dir/bench_parallel_scaling.json) =="
"$build_dir/bench_parallel_scaling" --facts-k 20 --brute-k 5 \
    --json "$build_dir/bench_parallel_scaling.json"

echo "== bench (service throughput, appending to BENCH_service.json) =="
"$build_dir/bench_service_throughput" --requests 64 --facts 7 \
    --json "$build_dir/bench_service_throughput.json"
# Append this run as ONE compact line (JSONL) so the accumulated perf
# trajectory stays machine-readable: one json.loads() per line.
python3 -c 'import json,sys; print(json.dumps(json.load(open(sys.argv[1]))))' \
    "$build_dir/bench_service_throughput.json" \
    >> "$repo_root/BENCH_service.json"

echo "== bench (approx convergence, appending to BENCH_approx.json) =="
# Error-vs-samples curve beyond the brute-force guard; the bench itself
# fails if any point's empirical error escapes its certified half-width.
"$build_dir/bench_approx_convergence" --samples-max 4096 \
    --json "$build_dir/bench_approx_convergence.json"
python3 -c 'import json,sys; print(json.dumps(json.load(open(sys.argv[1]))))' \
    "$build_dir/bench_approx_convergence.json" \
    >> "$repo_root/BENCH_approx.json"

echo "== bench (adaptive stopping, appending to BENCH_approx.json) =="
# Sample-count reduction of the sequential stopping strategies vs the
# fixed Hoeffding count. The bench itself fails unless (1) bernstein draws
# >= 5x fewer samples on the zero-variance instance, (2) every estimate at
# every curve point stays within its certified per-fact half-width, and
# (3) serial and 4-thread runs are bit-identical.
"$build_dir/bench_adaptive_stopping" --facts 48 --threads 4 \
    --json "$build_dir/bench_adaptive_stopping.json"
python3 -c 'import json,sys; print(json.dumps(json.load(open(sys.argv[1]))))' \
    "$build_dir/bench_adaptive_stopping.json" \
    >> "$repo_root/BENCH_approx.json"

echo "== check.sh: all green =="
