#include "shapley/gen/generators.h"

#include <gtest/gtest.h>

#include "shapley/query/query_parser.h"

namespace shapley {
namespace {

TEST(GeneratorsTest, RandomDatabaseIsDeterministic) {
  auto schema1 = Schema::Create();
  schema1->AddRelation("R", 2);
  auto schema2 = Schema::Create();
  schema2->AddRelation("R", 2);
  RandomDatabaseOptions options;
  options.num_facts = 10;
  options.seed = 77;
  PartitionedDatabase a = RandomPartitionedDatabase(schema1, options);
  PartitionedDatabase b = RandomPartitionedDatabase(schema2, options);
  EXPECT_EQ(a.endogenous().ToString(), b.endogenous().ToString());
  EXPECT_EQ(a.exogenous().ToString(), b.exogenous().ToString());
}

TEST(GeneratorsTest, RandomDatabaseRespectsBounds) {
  auto schema = Schema::Create();
  schema->AddRelation("R", 2);
  schema->AddRelation("S", 3);
  RandomDatabaseOptions options;
  options.num_facts = 25;
  options.domain_size = 2;
  options.seed = 3;
  PartitionedDatabase db = RandomPartitionedDatabase(schema, options);
  EXPECT_LE(db.AllFacts().size(), 25u);
  EXPECT_LE(db.AllFacts().Constants().size(), 2u);
}

TEST(GeneratorsTest, RstGadgetShape) {
  auto schema = Schema::Create();
  PartitionedDatabase db = RstGadget(schema, 3, 4, 1.0, 1);
  // 3 R-facts, 4 T-facts, 12 S-edges.
  EXPECT_EQ(db.NumEndogenous(), 3u + 4u + 12u);
  EXPECT_TRUE(db.IsPurelyEndogenous());
  CqPtr q = ParseCq(schema, "R(x), S(x,y), T(y)");
  EXPECT_TRUE(q->Evaluate(db.AllFacts()));
}

TEST(GeneratorsTest, PathGraphHasSourceToTargetPath) {
  auto schema = Schema::Create();
  Database graph = PathGraph(schema, "A", 4, 0.0, 9);
  EXPECT_EQ(graph.size(), 4u);  // Pure path, no chords.
  EXPECT_TRUE(graph.Constants().count(Constant::Named("s")));
  EXPECT_TRUE(graph.Constants().count(Constant::Named("t")));
}

TEST(GeneratorsTest, RandomGraphUsesAllRelations) {
  auto schema = Schema::Create();
  Database graph = RandomGraph(schema, {"A", "B"}, 5, 0.9, 13);
  EXPECT_TRUE(schema->FindRelation("A").has_value());
  EXPECT_TRUE(schema->FindRelation("B").has_value());
  EXPECT_GT(graph.FactsOf(*schema->FindRelation("A")).size(), 0u);
  EXPECT_GT(graph.FactsOf(*schema->FindRelation("B")).size(), 0u);
}

TEST(GeneratorsTest, DblpDatabaseWellFormed) {
  auto schema = Schema::Create();
  Database db = DblpDatabase(schema, 3, 5, 0.5, 21);
  RelationId keyword = *schema->FindRelation("Keyword");
  EXPECT_EQ(db.FactsOf(keyword).size(), 5u);  // One keyword per paper.
  RelationId publication = *schema->FindRelation("Publication");
  EXPECT_GE(db.FactsOf(publication).size(), 5u);  // >= one author per paper.
}

}  // namespace
}  // namespace shapley
