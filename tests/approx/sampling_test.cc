#include "shapley/approx/sampling.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <vector>

#include "shapley/approx/rng.h"
#include "shapley/approx/stopping.h"
#include "shapley/data/parser.h"
#include "shapley/engines/svc.h"
#include "shapley/exec/oracle_cache.h"
#include "shapley/exec/thread_pool.h"
#include "shapley/gen/generators.h"
#include "shapley/query/query_parser.h"

namespace shapley {
namespace {

QueryPtr ParseQuery(const std::shared_ptr<Schema>& schema, const char* text) {
  UcqPtr ucq = ParseUcq(schema, text);
  if (ucq->disjuncts().size() == 1) return ucq->disjuncts()[0];
  return ucq;
}

PartitionedDatabase RandomDb(const std::shared_ptr<Schema>& schema,
                             uint64_t seed, size_t num_facts = 9) {
  RandomDatabaseOptions options;
  options.num_facts = num_facts;
  options.domain_size = 3;
  options.exogenous_fraction = 0.25;
  options.seed = seed;
  return RandomPartitionedDatabase(schema, options);
}

double MaxAbsError(const std::map<Fact, BigRational>& estimate,
                   const std::map<Fact, BigRational>& exact) {
  EXPECT_EQ(estimate.size(), exact.size());
  double worst = 0.0;
  for (const auto& [fact, value] : estimate) {
    worst = std::max(worst,
                     std::abs(value.ToDouble() - exact.at(fact).ToDouble()));
  }
  return worst;
}

TEST(SamplingTest, HoeffdingSampleCountMatchesTheBound) {
  // m = ceil(r² ln(2/δ) / (2ε²)).
  EXPECT_EQ(HoeffdingSamples(0.1, 0.05, 1.0),
            static_cast<size_t>(std::ceil(std::log(40.0) / 0.02)));
  EXPECT_EQ(HoeffdingSamples(0.1, 0.05, 2.0),
            static_cast<size_t>(std::ceil(4.0 * std::log(40.0) / 0.02)));
  // The half-width at exactly the derived count certifies ≤ ε.
  const size_t m = HoeffdingSamples(0.05, 0.01, 1.0);
  EXPECT_LE(HoeffdingHalfWidth(m, 0.01, 1.0), 0.05);
  EXPECT_GT(HoeffdingHalfWidth(m - 1, 0.01, 1.0), 0.05);
  // Counts beyond size_t saturate instead of wrapping through the
  // double→integer cast (the sample guard then refuses them).
  EXPECT_EQ(HoeffdingSamples(1e-10, 0.05, 1.0),
            std::numeric_limits<size_t>::max());
}

TEST(SamplingTest, SplitMixBoundedDrawsAreInRangeAndDeterministic) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 1000; ++i) {
    const uint64_t bound = 1 + (static_cast<uint64_t>(i) % 17);
    const uint64_t draw = a.NextBelow(bound);
    EXPECT_LT(draw, bound);
    EXPECT_EQ(draw, b.NextBelow(bound));
  }
  EXPECT_NE(MixSeed(1, 0), MixSeed(1, 1));
  EXPECT_NE(MixSeed(1, 0), MixSeed(2, 0));
}

// The cross-validation contract: on instances small enough for the exact
// engines, the sampler's estimate lands within its own reported half-width
// of the exact value, for every fact and across ≥ 3 seeds. Fixed seeds
// make this fully deterministic — it can never flake, only regress.
TEST(SamplingTest, EstimatesWithinReportedHalfWidthOfExactAcrossSeeds) {
  auto schema = Schema::Create();
  QueryPtr monotone = ParseQuery(schema, "R(x), S(x,y), T(y)");
  QueryPtr negated = ParseQuery(schema, "R(x), S(x,y), !T(y)");
  BruteForceSvc exact;

  for (const QueryPtr& query : {monotone, negated}) {
    for (uint64_t seed : {1ull, 2ull, 3ull}) {
      PartitionedDatabase db = RandomDb(schema, 17 + seed);
      std::map<Fact, BigRational> reference = exact.AllValues(*query, db);

      SamplingSvc sampler(
          ApproxParams{.epsilon = 0.1, .delta = 0.05, .seed = seed});
      std::map<Fact, BigRational> estimate = sampler.AllValues(*query, db);

      const ApproxInfo& info = sampler.last_info();
      EXPECT_EQ(info.seed, seed);
      // Ranges are per fact, not per request: !T(y) makes T-facts
      // anti-monotone (marginal {−1, 0}) and leaves R/S-facts monotone
      // (marginal {0, 1}) — every spread is 1, and the request budget
      // covers the widest fact, not a query-level "has negation" tax.
      const std::vector<double> ranges = PerFactMarginalRanges(*query, db);
      EXPECT_EQ(info.range,
                *std::max_element(ranges.begin(), ranges.end()));
      EXPECT_EQ(info.fact_ranges, ranges);
      EXPECT_LE(info.half_width, 0.1 + 1e-12);
      EXPECT_GE(info.samples,
                HoeffdingSamples(0.1, 0.05, info.range));
      EXPECT_EQ(info.strategy, "hoeffding");
      EXPECT_LE(MaxAbsError(estimate, reference), info.half_width)
          << "query " << query->ToString() << " seed " << seed;
    }
  }
}

// Identical seeds must reproduce identical estimates bit for bit — and the
// guarantee extends across thread counts: batches own their RNG streams
// and merge with commutative integer addition, so parallel scheduling
// cannot leak into the values.
TEST(SamplingTest, IdenticalSeedsReproduceIdenticalEstimates) {
  auto schema = Schema::Create();
  QueryPtr query = ParseQuery(schema, "R(x), S(x,y), T(y)");
  PartitionedDatabase db = RandomDb(schema, 5, 12);
  const ApproxParams params{.epsilon = 0.05, .delta = 0.05, .seed = 99};

  SamplingSvc first(params);
  SamplingSvc second(params);
  std::map<Fact, BigRational> serial = first.AllValues(*query, db);
  EXPECT_EQ(serial, second.AllValues(*query, db));

  ThreadPool pool(4);
  SamplingSvc parallel(params);
  parallel.set_exec_context(ExecContext{&pool, nullptr});
  EXPECT_EQ(serial, parallel.AllValues(*query, db));

  // A different seed is a different (equally valid) estimate; the info
  // block still reports the same contract.
  SamplingSvc other(ApproxParams{.epsilon = 0.05, .delta = 0.05, .seed = 7});
  other.AllValues(*query, db);
  EXPECT_EQ(other.last_info().samples, first.last_info().samples);
}

TEST(SamplingTest, SampleBudgetCapWidensTheReportedHalfWidth) {
  auto schema = Schema::Create();
  QueryPtr query = ParseQuery(schema, "R(x), S(x,y)");
  PartitionedDatabase db = RandomDb(schema, 3);

  SamplingSvc capped(ApproxParams{
      .epsilon = 0.01, .delta = 0.05, .seed = 1, .max_samples = 64});
  capped.AllValues(*query, db);
  EXPECT_EQ(capped.last_info().samples, 64u);
  // 64 samples cannot certify ε = 0.01; the response says so.
  EXPECT_GT(capped.last_info().half_width, 0.01);
  EXPECT_NEAR(capped.last_info().half_width,
              HoeffdingHalfWidth(64, 0.05, 1.0), 1e-12);
}

TEST(SamplingTest, SharedSatMemoAmortizesAcrossRequestsViaOracleCache) {
  auto schema = Schema::Create();
  QueryPtr query = ParseQuery(schema, "R(x), S(x,y), T(y)");
  PartitionedDatabase db = RandomDb(schema, 11);
  OracleCache cache;

  SamplingSvc sampler(ApproxParams{.epsilon = 0.1, .delta = 0.1, .seed = 4});
  sampler.set_exec_context(ExecContext{nullptr, &cache});
  std::map<Fact, BigRational> first = sampler.AllValues(*query, db);
  // Small prefixes repeat within one run already.
  EXPECT_GT(sampler.last_info().memo_hits, 0u);
  const size_t hits_after_first = sampler.last_info().memo_hits;

  // A fresh engine instance (the service creates one per request) hits the
  // same fingerprint-keyed memo: the second run starts warm.
  SamplingSvc rerun(ApproxParams{.epsilon = 0.1, .delta = 0.1, .seed = 4});
  rerun.set_exec_context(ExecContext{nullptr, &cache});
  EXPECT_EQ(first, rerun.AllValues(*query, db));
  EXPECT_GE(rerun.last_info().memo_hits, hits_after_first);

  // And the memo is a real OracleCache resident: same (query, db) maps to
  // the same table.
  EXPECT_EQ(cache.SatTable(*query, db), cache.SatTable(*query, db));
}

TEST(SamplingTest, ValidatesParamsAndFactEndogeneity) {
  auto schema = Schema::Create();
  QueryPtr query = ParseQuery(schema, "R(x)");
  PartitionedDatabase db = ParsePartitionedDatabase(schema, "R(a) | R(b)");

  SamplingSvc bad_eps(ApproxParams{.epsilon = 0.0});
  EXPECT_THROW(bad_eps.AllValues(*query, db), SvcException);
  SamplingSvc bad_delta(ApproxParams{.epsilon = 0.1, .delta = 1.0});
  EXPECT_THROW(bad_delta.AllValues(*query, db), SvcException);

  // An (ε, δ) whose derived count exceeds the sample guard is refused
  // (structured capacity error) unless a budget caps it.
  SamplingSvc absurd(ApproxParams{.epsilon = 1e-9, .delta = 0.05});
  try {
    absurd.AllValues(*query, db);
    FAIL() << "expected SvcException";
  } catch (const SvcException& e) {
    EXPECT_EQ(e.error().code, SvcErrorCode::kCapacityExceeded);
  }
  SamplingSvc budgeted(ApproxParams{
      .epsilon = 1e-9, .delta = 0.05, .seed = 1, .max_samples = 128});
  EXPECT_EQ(budgeted.AllValues(*query, db).size(), db.NumEndogenous());

  SamplingSvc sampler(ApproxParams{.epsilon = 0.2, .delta = 0.2, .seed = 1});
  const Fact exogenous = db.exogenous().facts()[0];
  EXPECT_THROW(sampler.Value(*query, db, exogenous), SvcException);

  // Empty Dn: a well-formed, trivially empty answer.
  PartitionedDatabase empty = ParsePartitionedDatabase(schema, "| R(a)");
  EXPECT_TRUE(sampler.AllValues(*query, empty).empty());
}

// Between batches the sampler honors cancellation and deadlines — the
// sweep's total work is caller-tunable, so a worker must stay reclaimable
// mid-run, not just at dequeue time.
TEST(SamplingTest, HonorsCancellationAndDeadlineMidRun) {
  auto schema = Schema::Create();
  QueryPtr query = ParseQuery(schema, "R(x), S(x,y), T(y)");
  PartitionedDatabase db = RandomDb(schema, 8);

  SamplingSvc cancelled(ApproxParams{.epsilon = 0.05, .delta = 0.05});
  auto token = std::make_shared<std::atomic<bool>>(true);
  cancelled.set_cancel(token);
  try {
    cancelled.AllValues(*query, db);
    FAIL() << "expected SvcException";
  } catch (const SvcException& e) {
    EXPECT_EQ(e.error().code, SvcErrorCode::kCancelled);
  }
  token->store(false);
  EXPECT_EQ(cancelled.AllValues(*query, db).size(), db.NumEndogenous());

  SamplingSvc late(ApproxParams{.epsilon = 0.05, .delta = 0.05});
  late.set_deadline(std::chrono::steady_clock::now() -
                    std::chrono::milliseconds(1));
  try {
    late.AllValues(*query, db);
    FAIL() << "expected SvcException";
  } catch (const SvcException& e) {
    EXPECT_EQ(e.error().code, SvcErrorCode::kDeadlineExceeded);
  }
}

// Degenerate but exact cases the sampler must get right regardless of ε:
// when Dx already satisfies a monotone query every value is exactly 0, and
// a single endogenous fact that flips the query has value exactly 1.
TEST(SamplingTest, DegenerateInstancesAreExact) {
  auto schema = Schema::Create();
  QueryPtr query = ParseQuery(schema, "R(x)");

  PartitionedDatabase saturated =
      ParsePartitionedDatabase(schema, "R(a) R(b) | R(c)");
  SamplingSvc sampler(ApproxParams{.epsilon = 0.3, .delta = 0.3, .seed = 2});
  for (const auto& [fact, value] : sampler.AllValues(*query, saturated)) {
    EXPECT_EQ(value, BigRational(0)) << fact.ToString(*schema);
  }

  PartitionedDatabase pivotal = ParsePartitionedDatabase(schema, "R(a)");
  std::map<Fact, BigRational> values = sampler.AllValues(*query, pivotal);
  ASSERT_EQ(values.size(), 1u);
  EXPECT_EQ(values.begin()->second, BigRational(1));
}

// The per-fact range fix: sample budgets and certified half-widths used to
// be derived once per request from "does the query have negation anywhere",
// charging every fact the range-2 spread. The marginal's spread is a
// property of the FACT's relation polarity: only a relation occurring both
// positively and negated can swing a marginal across two units.
TEST(SamplingTest, PerFactRangesGiveMixedInstancesTheTighterBound) {
  auto schema = Schema::Create();

  // T occurs only negated → T-facts are anti-monotone (spread 1); R/S only
  // positive → monotone (spread 1). Nothing in this query justifies the
  // old per-request range of 2.
  QueryPtr safe_neg = ParseQuery(schema, "R(x), S(x,y), !T(y)");
  PartitionedDatabase pos_endo =
      ParsePartitionedDatabase(schema, "R(a) S(a,b) T(b) R(c)");
  const std::vector<double> all_one = PerFactMarginalRanges(*safe_neg, pos_endo);
  EXPECT_EQ(all_one, std::vector<double>(pos_endo.NumEndogenous(), 1.0));

  // The derived budget follows the per-fact analysis: 4x fewer samples
  // than the per-request range-2 derivation charged for the same query.
  SamplingSvc sampler(ApproxParams{.epsilon = 0.1, .delta = 0.1, .seed = 2});
  sampler.AllValues(*safe_neg, pos_endo);
  EXPECT_EQ(sampler.last_info().samples, HoeffdingSamples(0.1, 0.1, 1.0));
  EXPECT_EQ(sampler.last_info().range, 1.0);

  // A genuinely mixed instance: R occurs under both polarities (range 2),
  // S only positively (range 1). The budget must cover the widest fact,
  // but the S-fact's reported half-width stays twice as tight.
  QueryPtr mixed = ParseQuery(schema, "S(x,y), R(x), !R(y)");
  PartitionedDatabase both =
      ParsePartitionedDatabase(schema, "R(a) S(a,b) R(b) | S(b,c)");
  const auto& endo = both.endogenous().facts();
  const std::vector<double> ranges = PerFactMarginalRanges(*mixed, both);
  ASSERT_EQ(ranges.size(), endo.size());
  bool saw_wide = false, saw_tight = false;
  for (size_t i = 0; i < endo.size(); ++i) {
    SCOPED_TRACE(endo[i].ToString(*schema));
    if (endo[i].ToString(*schema)[0] == 'R') {
      EXPECT_EQ(ranges[i], 2.0);
      saw_wide = true;
    } else {
      EXPECT_EQ(ranges[i], 1.0);
      saw_tight = true;
    }
  }
  ASSERT_TRUE(saw_wide && saw_tight) << "instance must be genuinely mixed";

  SamplingSvc on_mixed(ApproxParams{.epsilon = 0.2, .delta = 0.1, .seed = 3});
  on_mixed.AllValues(*mixed, both);
  const ApproxInfo info = on_mixed.last_info();
  EXPECT_EQ(info.range, 2.0);
  EXPECT_EQ(info.samples, HoeffdingSamples(0.2, 0.1, 2.0));
  for (size_t i = 0; i < endo.size(); ++i) {
    EXPECT_NEAR(info.fact_half_widths[i],
                HoeffdingHalfWidth(info.samples, 0.1, ranges[i]), 1e-12);
  }
}

// Contract regression for the budget-cap path of the ADAPTIVE strategies:
// when max_samples truncates a run before any fact's bound meets ε, every
// fact must report the (wider) half-width its own tallies actually
// certify — honestly per fact, never the requested ε.
TEST(SamplingTest, AdaptiveBudgetCapWidensEveryReportedHalfWidthHonestly) {
  auto schema = Schema::Create();
  QueryPtr query = ParseQuery(schema, "R(x), S(x,y), T(y)");
  PartitionedDatabase db = RandomDb(schema, 21);
  BruteForceSvc exact;
  std::map<Fact, BigRational> reference = exact.AllValues(*query, db);

  for (ApproxStrategy strategy :
       {ApproxStrategy::kBernstein, ApproxStrategy::kStratified}) {
    SCOPED_TRACE(ToString(strategy));
    SamplingSvc capped(ApproxParams{.epsilon = 0.005,
                                    .delta = 0.05,
                                    .seed = 9,
                                    .max_samples = 128,
                                    .strategy = strategy});
    std::map<Fact, BigRational> estimate = capped.AllValues(*query, db);
    const ApproxInfo info = capped.last_info();
    EXPECT_EQ(info.strategy, std::string(ToString(strategy)));
    EXPECT_LE(info.samples, 128u);
    EXPECT_EQ(info.facts_retired, 0u);  // 128 samples cannot certify 0.005.
    ASSERT_EQ(info.fact_half_widths.size(), db.NumEndogenous());
    for (double hw : info.fact_half_widths) {
      EXPECT_GT(hw, 0.005);  // Honestly widened, per fact.
    }
    EXPECT_GT(info.half_width, 0.005);
    // The widened widths are still certificates, not apologies.
    EXPECT_LE(MaxAbsError(estimate, reference), info.half_width);
  }
}

}  // namespace
}  // namespace shapley
