// Property-test harness for the adaptive sampling strategies
// (approx/stopping.h, approx/strata.h, SamplingSvc with
// ApproxStrategy::kBernstein / kStratified): randomized instances across
// seeds, three properties pinned down per instance —
//
//  (a) HONESTY: every estimate lands within its *reported* per-fact
//      half-width of the exact value (computed by the brute-force engine),
//  (b) FRUGALITY: an adaptive run never draws more samples than the fixed
//      Hoeffding baseline for the same (ε, δ) contract,
//  (c) DETERMINISM: reruns are bit-identical serial vs. on a 4-thread
//      pool — retirement decisions happen only at batch boundaries from
//      merged integer tallies, so parallel scheduling cannot leak into
//      estimates, sample counts, or reported half-widths.
//
// Every instance uses a fixed seed, so the whole suite is deterministic:
// it can never flake, only regress.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <vector>

#include "shapley/approx/approx.h"
#include "shapley/approx/sampling.h"
#include "shapley/approx/stopping.h"
#include "shapley/approx/strata.h"
#include "shapley/data/parser.h"
#include "shapley/engines/svc.h"
#include "shapley/exec/thread_pool.h"
#include "shapley/gen/generators.h"
#include "shapley/query/query_parser.h"

namespace shapley {
namespace {

QueryPtr ParseQuery(const std::shared_ptr<Schema>& schema, const char* text) {
  UcqPtr ucq = ParseUcq(schema, text);
  if (ucq->disjuncts().size() == 1) return ucq->disjuncts()[0];
  return ucq;
}

PartitionedDatabase RandomDb(const std::shared_ptr<Schema>& schema,
                             uint64_t seed, size_t num_facts = 10) {
  RandomDatabaseOptions options;
  options.num_facts = num_facts;
  options.domain_size = 3;
  options.exogenous_fraction = 0.2;
  options.seed = seed;
  return RandomPartitionedDatabase(schema, options);
}

struct SampleRun {
  std::map<Fact, BigRational> values;
  ApproxInfo info;
};

SampleRun RunSampler(const BooleanQuery& query, const PartitionedDatabase& db,
               const ApproxParams& params, ThreadPool* pool,
               bool truncate_retired_walks = true) {
  SamplingSvc sampler(params);
  sampler.set_truncate_retired_walks(truncate_retired_walks);
  if (pool != nullptr) {
    sampler.set_exec_context(ExecContext{pool, nullptr});
  }
  SampleRun run;
  run.values = sampler.AllValues(query, db);
  run.info = sampler.last_info();
  return run;
}

// (a)+(b)+(c) over randomized instances: monotone and negated queries,
// five database seeds each, both adaptive strategies.
TEST(StoppingPropertyTest, AdaptiveEstimatesAreHonestFrugalAndDeterministic) {
  auto schema = Schema::Create();
  QueryPtr monotone = ParseQuery(schema, "R(x), S(x,y), T(y)");
  QueryPtr negated = ParseQuery(schema, "S(x,y), R(x), !R(y)");
  BruteForceSvc exact;
  ThreadPool pool(4);

  size_t adaptive_runs = 0;
  size_t runs_that_retired_early = 0;
  for (const QueryPtr& query : {monotone, negated}) {
    for (uint64_t seed : {1ull, 2ull, 3ull, 4ull, 5ull}) {
      PartitionedDatabase db = RandomDb(schema, 40 + seed);
      const auto& endo = db.endogenous().facts();
      std::map<Fact, BigRational> reference = exact.AllValues(*query, db);

      for (ApproxStrategy strategy :
           {ApproxStrategy::kBernstein, ApproxStrategy::kStratified}) {
        SCOPED_TRACE(std::string(ToString(strategy)) + " query " +
                     query->ToString() + " seed " + std::to_string(seed));
        const ApproxParams params{.epsilon = 0.08,
                                  .delta = 0.05,
                                  .seed = seed * 7 + 1,
                                  .strategy = strategy};
        SampleRun serial = RunSampler(*query, db, params, nullptr);
        ++adaptive_runs;

        // (a) Honesty: each fact within ITS OWN reported half-width.
        ASSERT_EQ(serial.info.fact_half_widths.size(), endo.size());
        ASSERT_EQ(serial.info.fact_samples.size(), endo.size());
        for (size_t i = 0; i < endo.size(); ++i) {
          const double err =
              std::abs(serial.values.at(endo[i]).ToDouble() -
                       reference.at(endo[i]).ToDouble());
          EXPECT_LE(err, serial.info.fact_half_widths[i] + 1e-12)
              << endo[i].ToString(*schema);
          // A retired fact's bound met the contract, and the report says
          // so; an unretired fact's width widened honestly past ε.
          EXPECT_GT(serial.info.fact_half_widths[i], 0.0);
          EXPECT_GE(serial.info.fact_samples[i], 1u);
          EXPECT_LE(serial.info.fact_samples[i], serial.info.samples);
        }

        // (b) Frugality: never more than the fixed Hoeffding count.
        EXPECT_LE(serial.info.samples, serial.info.hoeffding_baseline);
        EXPECT_GT(serial.info.checkpoints, 0u);
        if (serial.info.samples < serial.info.hoeffding_baseline) {
          ++runs_that_retired_early;
        }

        // (c) Determinism: bit-identical across thread counts, in the
        // values AND in the stopping decisions they derive from.
        SampleRun parallel = RunSampler(*query, db, params, &pool);
        EXPECT_EQ(serial.values, parallel.values);
        EXPECT_EQ(serial.info.samples, parallel.info.samples);
        EXPECT_EQ(serial.info.fact_samples, parallel.info.fact_samples);
        EXPECT_EQ(serial.info.fact_half_widths,
                  parallel.info.fact_half_widths);
        EXPECT_EQ(serial.info.checkpoints, parallel.info.checkpoints);
        EXPECT_EQ(serial.info.facts_retired, parallel.info.facts_retired);
      }
    }
  }
  // The suite must actually exercise early stopping somewhere — otherwise
  // the frugality property is vacuously true.
  EXPECT_GT(runs_that_retired_early, 0u)
      << "no instance retired early across " << adaptive_runs
      << " adaptive runs — the stopping rule never fired";
}

// Retired-fact walk truncation is a pure evaluation-skipping optimization:
// a retired fact's tallies are FROZEN in the stopper, so the query
// evaluations that exist only to measure its marginals are dead work —
// skipping them may not move a single reported number. The comparison
// deliberately EXCLUDES memo_hits: the two runs evaluate different
// prefix sets, so cache traffic differs even though estimates cannot.
TEST(StoppingPropertyTest, RetiredWalkTruncationIsBitIdentical) {
  auto schema = Schema::Create();
  QueryPtr monotone = ParseQuery(schema, "R(x), S(x,y), T(y)");
  QueryPtr negated = ParseQuery(schema, "S(x,y), R(x), !R(y)");
  ThreadPool pool(4);

  size_t runs_with_partial_retirement = 0;
  for (const QueryPtr& query : {monotone, negated}) {
    for (uint64_t seed : {1ull, 2ull, 3ull, 4ull, 5ull}) {
      PartitionedDatabase db = RandomDb(schema, 40 + seed);
      for (ApproxStrategy strategy :
           {ApproxStrategy::kBernstein, ApproxStrategy::kStratified}) {
        SCOPED_TRACE(std::string(ToString(strategy)) + " query " +
                     query->ToString() + " seed " + std::to_string(seed));
        const ApproxParams params{.epsilon = 0.08,
                                  .delta = 0.05,
                                  .seed = seed * 7 + 1,
                                  .strategy = strategy};
        SampleRun truncated =
            RunSampler(*query, db, params, nullptr, /*truncate=*/true);
        SampleRun full =
            RunSampler(*query, db, params, nullptr, /*truncate=*/false);

        EXPECT_EQ(truncated.values, full.values);
        EXPECT_EQ(truncated.info.samples, full.info.samples);
        EXPECT_EQ(truncated.info.fact_samples, full.info.fact_samples);
        EXPECT_EQ(truncated.info.fact_half_widths,
                  full.info.fact_half_widths);
        EXPECT_EQ(truncated.info.checkpoints, full.info.checkpoints);
        EXPECT_EQ(truncated.info.facts_retired, full.info.facts_retired);

        // Truncation on a thread pool stays bit-identical too — the
        // retirement snapshot only ever changes between rounds, never
        // under a worker's feet.
        SampleRun parallel =
            RunSampler(*query, db, params, &pool, /*truncate=*/true);
        EXPECT_EQ(parallel.values, full.values);
        EXPECT_EQ(parallel.info.samples, full.info.samples);
        EXPECT_EQ(parallel.info.fact_half_widths,
                  full.info.fact_half_widths);

        // Truncation only ever fires when retirement happens at a
        // NON-final checkpoint (later rounds then run with a non-empty
        // snapshot); count those so the property is not vacuous.
        if (full.info.facts_retired > 0 && full.info.checkpoints > 1) {
          ++runs_with_partial_retirement;
        }
      }
    }
  }
  EXPECT_GT(runs_with_partial_retirement, 0u)
      << "no run retired facts before its final checkpoint — the "
         "truncation path was never exercised";
}

// The fixed-count strategy satisfies honesty too (its per-fact Hoeffding
// widths are certificates), and the adaptive strategies agree with it on
// degenerate instances that admit exact answers regardless of ε.
TEST(StoppingPropertyTest, DegenerateInstancesStayExactUnderEveryStrategy) {
  auto schema = Schema::Create();
  QueryPtr query = ParseQuery(schema, "R(x)");
  PartitionedDatabase pivotal = ParsePartitionedDatabase(schema, "R(a)");
  PartitionedDatabase saturated =
      ParsePartitionedDatabase(schema, "R(a) R(b) | R(c)");

  for (ApproxStrategy strategy :
       {ApproxStrategy::kHoeffding, ApproxStrategy::kBernstein,
        ApproxStrategy::kStratified}) {
    SCOPED_TRACE(ToString(strategy));
    SamplingSvc sampler(ApproxParams{
        .epsilon = 0.25, .delta = 0.25, .seed = 6, .strategy = strategy});
    std::map<Fact, BigRational> one = sampler.AllValues(*query, pivotal);
    ASSERT_EQ(one.size(), 1u);
    EXPECT_EQ(one.begin()->second, BigRational(1));

    for (const auto& [fact, value] : sampler.AllValues(*query, saturated)) {
      EXPECT_EQ(value, BigRational(0)) << fact.ToString(*schema);
    }
  }
}

// The stopping rule in isolation: zero-variance tallies retire at the
// first checkpoint the bias term allows, the δ-spending schedule sums to
// δ, and Finish() freezes stragglers at the δ-split terminal bound.
TEST(StoppingPropertyTest, SequentialStopperRetiresByVarianceAndSpendsDelta) {
  // Σ_k δ/(k(k+1)) telescopes to δ: any finite run spends δ·K/(K+1),
  // strictly within the budget, whatever the checkpoint count.
  double spent = 0.0;
  for (size_t k = 1; k <= 10000; ++k) spent += CheckpointDelta(0.05, k);
  EXPECT_LT(spent, 0.05);
  EXPECT_NEAR(spent, 0.05, 1e-5);

  // Two facts, unit scale 1: fact 0 with zero variance (every unit sum
  // 1), fact 1 with maximal swing. After enough units, fact 0's
  // empirical-Bernstein width beats ε while fact 1's Hoeffding-like term
  // keeps it alive.
  const double epsilon = 0.1;
  const double delta = 0.05;
  SequentialStopper stopper(epsilon, delta, {1.0, 2.0}, 1);
  const size_t units = 1024;
  std::vector<int64_t> net = {static_cast<int64_t>(units), 0};
  std::vector<int64_t> sq = {static_cast<int64_t>(units),
                             static_cast<int64_t>(units)};
  EXPECT_FALSE(stopper.Checkpoint(net, sq, units));
  EXPECT_EQ(stopper.retired_count(), 1u);
  EXPECT_EQ(stopper.retired_within_epsilon(), 1u);
  EXPECT_EQ(stopper.frozen_samples()[0], units);
  EXPECT_LE(stopper.half_widths()[0], epsilon);

  // Terminal freeze under the δ-split: the straggler reports the BETTER
  // of one more Bernstein look (δ/2 schedule) and the reserved terminal
  // Hoeffding bound at δ/2 — here the high-variance tallies make the
  // Hoeffding side win outright.
  stopper.Finish(net, sq, units);
  EXPECT_TRUE(stopper.all_retired());
  EXPECT_EQ(stopper.retired_within_epsilon(), 1u);
  const double terminal_hoeffding =
      HoeffdingHalfWidth(units, delta / 2.0, 2.0);
  EXPECT_DOUBLE_EQ(stopper.half_widths()[1], terminal_hoeffding);
  // The satellite's whole point: a non-retiring fact pays at most a √2
  // width premium over the plain fixed-count Hoeffding bound at the same
  // sample count (ln(4/δ) ≤ 2·ln(2/δ) for δ ≤ 1).
  EXPECT_LE(stopper.half_widths()[1],
            std::sqrt(2.0) * HoeffdingHalfWidth(units, delta, 2.0) + 1e-12);
  EXPECT_EQ(stopper.frozen_net()[1], 0);
  EXPECT_EQ(stopper.checkpoints(), 2u);
}

// The δ-split premium cap holds across contracts and counts: whatever
// (ε, δ, m), a straggler's terminal width never exceeds √2× the plain
// Hoeffding width at the same count — and never exceeds the Bernstein
// width the old all-schedule spending would have charged.
TEST(StoppingPropertyTest, TerminalBoundCapsNonRetiringPremiumAtSqrt2) {
  for (const double delta : {0.25, 0.05, 0.01}) {
    for (const size_t units : {64u, 512u, 4096u}) {
      SCOPED_TRACE("delta " + std::to_string(delta) + " units " +
                   std::to_string(units));
      // One maximally-swinging fact that can never retire early: tiny ε.
      SequentialStopper stopper(1e-9, delta, {2.0}, 1);
      std::vector<int64_t> net = {0};
      std::vector<int64_t> sq = {static_cast<int64_t>(units)};
      // A long checkpoint history makes the old-style terminal Bernstein
      // installment expensive — exactly the case the reserve rescues.
      for (int k = 0; k < 16; ++k) {
        EXPECT_FALSE(stopper.Checkpoint(net, sq, units));
      }
      stopper.Finish(net, sq, units);
      EXPECT_LE(stopper.half_widths()[0],
                std::sqrt(2.0) * HoeffdingHalfWidth(units, delta, 2.0) +
                    1e-12);
    }
  }
}

// Per-fact ranges: the polarity analysis behind the tighter bounds.
TEST(StoppingPropertyTest, PerFactRangesFollowRelationPolarity) {
  auto schema = Schema::Create();
  PartitionedDatabase db =
      ParsePartitionedDatabase(schema, "R(a) S(a,b) T(b)");

  // Monotone query: everything spread 1.
  EXPECT_EQ(PerFactMarginalRanges(*ParseQuery(schema, "R(x), S(x,y), T(y)"),
                                  db),
            (std::vector<double>{1.0, 1.0, 1.0}));
  // T only negated: anti-monotone in T, monotone in R/S — still spread 1.
  EXPECT_EQ(PerFactMarginalRanges(*ParseQuery(schema, "R(x), S(x,y), !T(y)"),
                                  db),
            (std::vector<double>{1.0, 1.0, 1.0}));
  // R under both polarities across disjuncts: only R pays spread 2.
  const std::vector<double> union_ranges = PerFactMarginalRanges(
      *ParseQuery(schema, "R(x), S(x,y) | S(x,y), !R(y)"), db);
  const auto& endo = db.endogenous().facts();
  ASSERT_EQ(union_ranges.size(), endo.size());
  for (size_t i = 0; i < endo.size(); ++i) {
    const bool is_r = endo[i].ToString(*schema)[0] == 'R';
    EXPECT_EQ(union_ranges[i], is_r ? 2.0 : 1.0)
        << endo[i].ToString(*schema);
  }
}

// The strata geometry: the antithetic partner is a permutation (no fact
// sampled twice in one walk) that places every fact at the complementary
// position stratum — the mechanism the pair's variance cut rests on.
TEST(StoppingPropertyTest, StrataReversalsAreAntitheticPermutations) {
  const size_t n = 11;
  std::vector<size_t> base(n);
  for (size_t i = 0; i < n; ++i) base[i] = (i * 7 + 3) % n;  // Any perm.

  std::vector<size_t> reversed;
  ReverseInto(base, &reversed);
  std::vector<size_t> sorted = reversed;
  std::sort(sorted.begin(), sorted.end());
  for (size_t i = 0; i < n; ++i) EXPECT_EQ(sorted[i], i);
  // Exactly antithetic: a fact at position k lands at position n−1−k.
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(reversed[i], base[n - 1 - i]);
  }
}

// Budget-overdraw regression: a budget too small to fund one antithetic
// pair must degenerate to a single plain unit, never draw past the cap —
// and an ε so loose the Hoeffding baseline is a single permutation must
// keep the "never more than the baseline" contract for every strategy.
TEST(StoppingPropertyTest, StratifiedNeverOverdrawsASubPairBudget) {
  auto schema = Schema::Create();
  QueryPtr query = ParseQuery(schema, "R(x), S(x,y), T(y)");
  PartitionedDatabase db = RandomDb(schema, 3);

  SamplingSvc capped(ApproxParams{.epsilon = 0.1,
                                  .delta = 0.05,
                                  .seed = 1,
                                  .max_samples = 1,
                                  .strategy = ApproxStrategy::kStratified});
  EXPECT_EQ(capped.AllValues(*query, db).size(), db.NumEndogenous());
  EXPECT_EQ(capped.last_info().samples, 1u);

  for (ApproxStrategy strategy :
       {ApproxStrategy::kHoeffding, ApproxStrategy::kBernstein,
        ApproxStrategy::kStratified}) {
    SCOPED_TRACE(ToString(strategy));
    SamplingSvc loose(ApproxParams{
        .epsilon = 2.0, .delta = 0.5, .seed = 1, .strategy = strategy});
    loose.AllValues(*query, db);
    EXPECT_EQ(loose.last_info().hoeffding_baseline, 1u);
    EXPECT_LE(loose.last_info().samples,
              loose.last_info().hoeffding_baseline);
  }
}

}  // namespace
}  // namespace shapley
