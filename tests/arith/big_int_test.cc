#include "shapley/arith/big_int.h"

#include <cstdint>
#include <random>
#include <string>

#include <gtest/gtest.h>

namespace shapley {
namespace {

TEST(BigIntTest, DefaultIsZero) {
  BigInt z;
  EXPECT_TRUE(z.IsZero());
  EXPECT_EQ(z.sign(), 0);
  EXPECT_EQ(z.ToString(), "0");
  EXPECT_EQ(z.ToInt64(), 0);
}

TEST(BigIntTest, Int64RoundTrip) {
  for (int64_t v : {int64_t{0}, int64_t{1}, int64_t{-1}, int64_t{42},
                    int64_t{-123456789}, INT64_MAX, INT64_MIN}) {
    BigInt b(v);
    ASSERT_TRUE(b.ToInt64().has_value()) << v;
    EXPECT_EQ(*b.ToInt64(), v);
    EXPECT_EQ(b.ToString(), std::to_string(v));
  }
}

TEST(BigIntTest, FromStringRoundTrip) {
  for (const char* s :
       {"0", "1", "-1", "999999999999999999999999999999",
        "-31415926535897932384626433832795028841971693993751"}) {
    EXPECT_EQ(BigInt::FromString(s).ToString(), s);
  }
}

TEST(BigIntTest, FromStringRejectsGarbage) {
  EXPECT_THROW(BigInt::FromString(""), std::invalid_argument);
  EXPECT_THROW(BigInt::FromString("-"), std::invalid_argument);
  EXPECT_THROW(BigInt::FromString("12a3"), std::invalid_argument);
  EXPECT_THROW(BigInt::FromString("1.5"), std::invalid_argument);
}

TEST(BigIntTest, AdditionMatchesInt64) {
  std::mt19937_64 rng(7);
  std::uniform_int_distribution<int64_t> dist(-1000000000, 1000000000);
  for (int i = 0; i < 2000; ++i) {
    int64_t a = dist(rng), b = dist(rng);
    EXPECT_EQ((BigInt(a) + BigInt(b)).ToInt64(), a + b);
    EXPECT_EQ((BigInt(a) - BigInt(b)).ToInt64(), a - b);
    EXPECT_EQ((BigInt(a) * BigInt(b)).ToInt64(), a * b);
  }
}

TEST(BigIntTest, DivisionMatchesInt64TruncatedSemantics) {
  std::mt19937_64 rng(11);
  std::uniform_int_distribution<int64_t> dist(-1000000000000, 1000000000000);
  for (int i = 0; i < 2000; ++i) {
    int64_t a = dist(rng), b = dist(rng);
    if (b == 0) continue;
    EXPECT_EQ((BigInt(a) / BigInt(b)).ToInt64(), a / b) << a << "/" << b;
    EXPECT_EQ((BigInt(a) % BigInt(b)).ToInt64(), a % b) << a << "%" << b;
  }
}

TEST(BigIntTest, DivModIdentityOnHugeNumbers) {
  std::mt19937_64 rng(13);
  auto random_big = [&rng](int limbs) {
    BigInt v = 0;
    for (int i = 0; i < limbs; ++i) {
      v = v * BigInt(int64_t{1} << 32) + BigInt(static_cast<int64_t>(rng() & 0xffffffffu));
    }
    return rng() % 2 == 0 ? v : -v;
  };
  for (int i = 0; i < 300; ++i) {
    BigInt a = random_big(1 + static_cast<int>(rng() % 8));
    BigInt b = random_big(1 + static_cast<int>(rng() % 5));
    if (b.IsZero()) continue;
    BigInt q, r;
    BigInt::DivMod(a, b, &q, &r);
    EXPECT_EQ(q * b + r, a);
    EXPECT_TRUE(r.Abs() < b.Abs());
    // Remainder carries the dividend's sign (or is zero).
    if (!r.IsZero()) {
      EXPECT_EQ(r.sign(), a.sign());
    }
  }
}

TEST(BigIntTest, DivisionByZeroThrows) {
  EXPECT_THROW(BigInt(5) / BigInt(0), std::invalid_argument);
  EXPECT_THROW(BigInt(5) % BigInt(0), std::invalid_argument);
}

TEST(BigIntTest, KnuthDAddBackCase) {
  // Crafted to exercise the rare "add back" correction of Algorithm D:
  // dividend = base^4 / 2, divisor slightly above base^2 / 2.
  BigInt base = BigInt(int64_t{1} << 32);
  BigInt dividend = BigInt::Pow(base, 4) - BigInt::Pow(base, 2);
  BigInt divisor = BigInt::Pow(base, 2) / BigInt(2) + BigInt(1);
  BigInt q, r;
  BigInt::DivMod(dividend, divisor, &q, &r);
  EXPECT_EQ(q * divisor + r, dividend);
  EXPECT_TRUE(r < divisor);
  EXPECT_TRUE(!r.IsNegative());
}

TEST(BigIntTest, PowAndBitLength) {
  EXPECT_EQ(BigInt::Pow(2, 100).ToString(), "1267650600228229401496703205376");
  EXPECT_EQ(BigInt::Pow(2, 100).BitLength(), 101u);
  EXPECT_EQ(BigInt::Pow(10, 0), BigInt(1));
  EXPECT_EQ(BigInt(0).BitLength(), 0u);
  EXPECT_EQ(BigInt(1).BitLength(), 1u);
}

TEST(BigIntTest, GcdBasics) {
  EXPECT_EQ(BigInt::Gcd(12, 18), BigInt(6));
  EXPECT_EQ(BigInt::Gcd(-12, 18), BigInt(6));
  EXPECT_EQ(BigInt::Gcd(0, 5), BigInt(5));
  EXPECT_EQ(BigInt::Gcd(0, 0), BigInt(0));
  EXPECT_EQ(BigInt::Gcd(BigInt::Pow(2, 200) * 3, BigInt::Pow(2, 100) * 5),
            BigInt::Pow(2, 100));
}

TEST(BigIntTest, ComparisonTotalOrder) {
  std::vector<BigInt> ordered = {
      BigInt::FromString("-99999999999999999999"), BigInt(-2), BigInt(0),
      BigInt(1), BigInt(2), BigInt::FromString("99999999999999999999")};
  for (size_t i = 0; i < ordered.size(); ++i) {
    for (size_t j = 0; j < ordered.size(); ++j) {
      EXPECT_EQ(ordered[i] < ordered[j], i < j);
      EXPECT_EQ(ordered[i] == ordered[j], i == j);
    }
  }
}

TEST(BigIntTest, HashEqualValuesAgree) {
  EXPECT_EQ(BigInt(42).Hash(), (BigInt(40) + BigInt(2)).Hash());
  EXPECT_NE(BigInt(42).Hash(), BigInt(-42).Hash());
}

TEST(BigIntTest, FactorialStyleGrowth) {
  BigInt f = 1;
  for (int64_t i = 1; i <= 100; ++i) f *= i;
  // 100! has 158 digits and ends in 24 zeros.
  std::string s = f.ToString();
  EXPECT_EQ(s.size(), 158u);
  EXPECT_EQ(s.substr(s.size() - 24), std::string(24, '0'));
  EXPECT_EQ(s.substr(0, 10), "9332621544");
}

}  // namespace
}  // namespace shapley
