// Randomized cross-validation of BigInt against native __int128 arithmetic
// (the widest machine integer available): every operation on values that
// fit in 64 bits must agree with the 128-bit native result.

#include <random>
#include <string>

#include <gtest/gtest.h>

#include "shapley/arith/big_int.h"
#include "shapley/arith/big_rational.h"

namespace shapley {
namespace {

std::string Int128ToString(__int128 v) {
  if (v == 0) return "0";
  bool negative = v < 0;
  unsigned __int128 mag =
      negative ? -static_cast<unsigned __int128>(v) : static_cast<unsigned __int128>(v);
  std::string digits;
  while (mag != 0) {
    digits.insert(digits.begin(), static_cast<char>('0' + mag % 10));
    mag /= 10;
  }
  return (negative ? "-" : "") + digits;
}

TEST(BigIntFuzzTest, MulDivModAgreeWithInt128) {
  std::mt19937_64 rng(2024);
  std::uniform_int_distribution<int64_t> dist(INT64_MIN / 2, INT64_MAX / 2);
  for (int trial = 0; trial < 3000; ++trial) {
    int64_t a = dist(rng);
    int64_t b = dist(rng);
    __int128 product = static_cast<__int128>(a) * b;
    EXPECT_EQ((BigInt(a) * BigInt(b)).ToString(), Int128ToString(product))
        << a << " * " << b;
    if (b != 0) {
      __int128 quotient = static_cast<__int128>(a) / b;
      __int128 remainder = static_cast<__int128>(a) % b;
      EXPECT_EQ((BigInt(a) / BigInt(b)).ToString(), Int128ToString(quotient));
      EXPECT_EQ((BigInt(a) % BigInt(b)).ToString(), Int128ToString(remainder));
    }
  }
}

TEST(BigIntFuzzTest, MixedExpressionChainsAgreeWithInt128) {
  std::mt19937_64 rng(99);
  std::uniform_int_distribution<int64_t> dist(-1000000, 1000000);
  for (int trial = 0; trial < 1000; ++trial) {
    int64_t a = dist(rng), b = dist(rng), c = dist(rng), d = dist(rng);
    __int128 expected =
        (static_cast<__int128>(a) * b - static_cast<__int128>(c) * d) *
        (static_cast<__int128>(a) + c);
    BigInt actual = (BigInt(a) * BigInt(b) - BigInt(c) * BigInt(d)) *
                    (BigInt(a) + BigInt(c));
    EXPECT_EQ(actual.ToString(), Int128ToString(expected)) << "trial " << trial;
  }
}

TEST(BigIntFuzzTest, StringRoundTripOnWideValues) {
  std::mt19937_64 rng(123);
  for (int trial = 0; trial < 300; ++trial) {
    // Compose a random decimal string of up to 60 digits.
    size_t digits = 1 + rng() % 60;
    std::string s = rng() % 2 ? "-" : "";
    s += static_cast<char>('1' + rng() % 9);
    for (size_t i = 1; i < digits; ++i) {
      s += static_cast<char>('0' + rng() % 10);
    }
    EXPECT_EQ(BigInt::FromString(s).ToString(), s);
  }
}

TEST(BigIntFuzzTest, GcdAgreesWithEuclidOnInt64) {
  std::mt19937_64 rng(7);
  auto reference_gcd = [](int64_t a, int64_t b) {
    a = a < 0 ? -a : a;
    b = b < 0 ? -b : b;
    while (b != 0) {
      int64_t r = a % b;
      a = b;
      b = r;
    }
    return a;
  };
  std::uniform_int_distribution<int64_t> dist(-1000000000, 1000000000);
  for (int trial = 0; trial < 2000; ++trial) {
    int64_t a = dist(rng), b = dist(rng);
    EXPECT_EQ(BigInt::Gcd(a, b), BigInt(reference_gcd(a, b)));
  }
}

TEST(BigRationalFuzzTest, OrderingAgreesWithDouble) {
  // Exact comparison must agree with floating point whenever the latter is
  // unambiguous (values far apart).
  std::mt19937_64 rng(17);
  std::uniform_int_distribution<int64_t> dist(-10000, 10000);
  for (int trial = 0; trial < 2000; ++trial) {
    int64_t an = dist(rng), bn = dist(rng);
    int64_t ad = 1 + (rng() % 1000), bd = 1 + (rng() % 1000);
    BigRational a{BigInt(an), BigInt(ad)};
    BigRational b{BigInt(bn), BigInt(bd)};
    double da = static_cast<double>(an) / static_cast<double>(ad);
    double db = static_cast<double>(bn) / static_cast<double>(bd);
    if (std::abs(da - db) > 1e-6) {
      EXPECT_EQ(a < b, da < db) << an << "/" << ad << " vs " << bn << "/" << bd;
    }
  }
}

}  // namespace
}  // namespace shapley
