#include "shapley/arith/polynomial.h"

#include <random>

#include <gtest/gtest.h>

#include "shapley/arith/factorial.h"

namespace shapley {
namespace {

Polynomial P(std::initializer_list<int64_t> coeffs) {
  std::vector<BigInt> v;
  for (int64_t c : coeffs) v.emplace_back(c);
  return Polynomial(std::move(v));
}

TEST(PolynomialTest, TrimsTrailingZeros) {
  EXPECT_EQ(P({1, 2, 0, 0}).Degree(), 1);
  EXPECT_TRUE(P({0, 0}).IsZero());
  EXPECT_EQ(Polynomial().Degree(), -1);
}

TEST(PolynomialTest, OnePlusZPowerIsBinomialRow) {
  Polynomial p = Polynomial::OnePlusZPower(5);
  EXPECT_EQ(p, P({1, 5, 10, 10, 5, 1}));
  EXPECT_EQ(p.SumOfCoefficients(), BigInt(32));
}

TEST(PolynomialTest, MultiplicationIsConvolution) {
  // (1 + z)(1 + 2z + z^2) = 1 + 3z + 3z^2 + z^3.
  EXPECT_EQ(P({1, 1}) * P({1, 2, 1}), P({1, 3, 3, 1}));
  EXPECT_EQ(Polynomial::OnePlusZPower(3) ,P({1, 1}) * P({1, 1}) * P({1, 1}));
}

TEST(PolynomialTest, RingAxiomsOnRandomPolynomials) {
  std::mt19937_64 rng(5);
  auto random_poly = [&rng]() {
    std::vector<BigInt> coeffs;
    size_t deg = rng() % 6;
    for (size_t i = 0; i <= deg; ++i) {
      coeffs.emplace_back(static_cast<int64_t>(rng() % 21) - 10);
    }
    return Polynomial(std::move(coeffs));
  };
  for (int i = 0; i < 200; ++i) {
    Polynomial a = random_poly(), b = random_poly(), c = random_poly();
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ(a - a, Polynomial());
    // Evaluation is a ring homomorphism.
    BigRational z(BigInt(3), BigInt(2));
    EXPECT_EQ((a * b).Evaluate(z), a.Evaluate(z) * b.Evaluate(z));
    EXPECT_EQ((a + b).Evaluate(z), a.Evaluate(z) + b.Evaluate(z));
  }
}

TEST(PolynomialTest, ShiftUpMultipliesByMonomial) {
  EXPECT_EQ(P({1, 2}).ShiftUp(2), P({0, 0, 1, 2}));
  EXPECT_EQ(P({1, 2}).ShiftUp(0), P({1, 2}));
  EXPECT_TRUE(Polynomial().ShiftUp(3).IsZero());
}

TEST(PolynomialTest, CoefficientBeyondDegreeIsZero) {
  Polynomial p = P({4, 5});
  EXPECT_EQ(p.Coefficient(0), BigInt(4));
  EXPECT_EQ(p.Coefficient(1), BigInt(5));
  EXPECT_EQ(p.Coefficient(99), BigInt(0));
}

TEST(PolynomialTest, EvaluateIntHorner) {
  EXPECT_EQ(P({1, 0, 2}).EvaluateInt(10), BigInt(201));
  EXPECT_EQ(P({}).EvaluateInt(7), BigInt(0));
}

TEST(PolynomialTest, ToStringReadable) {
  EXPECT_EQ(P({1, 3, 2}).ToString(), "1 + 3z + 2z^2");
  EXPECT_EQ(P({0, 1}).ToString(), "z");
  EXPECT_EQ(Polynomial().ToString(), "0");
}

}  // namespace
}  // namespace shapley
