#include "shapley/arith/linear_system.h"

#include <random>

#include <gtest/gtest.h>

#include "shapley/arith/factorial.h"

namespace shapley {
namespace {

TEST(LinearSystemTest, SolvesIdentity) {
  RationalMatrix a = {{1, 0}, {0, 1}};
  std::vector<BigRational> b = {BigRational(3), BigRational(BigInt(1), BigInt(2))};
  auto x = SolveLinearSystem(a, b);
  EXPECT_EQ(x, b);
}

TEST(LinearSystemTest, SolvesWithPivoting) {
  // First pivot position is zero; requires a row swap.
  RationalMatrix a = {{0, 1}, {2, 0}};
  std::vector<BigRational> b = {BigRational(5), BigRational(8)};
  auto x = SolveLinearSystem(a, b);
  EXPECT_EQ(x[0], BigRational(4));
  EXPECT_EQ(x[1], BigRational(5));
}

TEST(LinearSystemTest, SingularMatrixThrows) {
  RationalMatrix a = {{1, 2}, {2, 4}};
  std::vector<BigRational> b = {BigRational(1), BigRational(2)};
  EXPECT_THROW(SolveLinearSystem(a, b), std::invalid_argument);
}

TEST(LinearSystemTest, DimensionMismatchThrows) {
  RationalMatrix a = {{1, 2}, {3, 4}};
  std::vector<BigRational> b = {BigRational(1)};
  EXPECT_THROW(SolveLinearSystem(a, b), std::invalid_argument);
}

TEST(LinearSystemTest, RandomSystemsRoundTrip) {
  std::mt19937_64 rng(17);
  std::uniform_int_distribution<int64_t> dist(-9, 9);
  for (int trial = 0; trial < 100; ++trial) {
    size_t n = 1 + rng() % 6;
    RationalMatrix a(n, std::vector<BigRational>(n));
    std::vector<BigRational> x_true(n);
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) a[i][j] = BigRational(dist(rng));
      x_true[i] = BigRational(BigInt(dist(rng)), BigInt(1 + (rng() % 5)));
    }
    std::vector<BigRational> b(n, BigRational(0));
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) b[i] += a[i][j] * x_true[j];
    }
    try {
      auto x = SolveLinearSystem(a, b);
      EXPECT_EQ(x, x_true);
    } catch (const std::invalid_argument&) {
      // Random matrix happened to be singular; acceptable.
    }
  }
}

TEST(LinearSystemTest, PascalFactorialMatrixIsInvertible) {
  // The Section 5 reduction matrix M[i][j] = (j+s)!(n+i-j)!/(n+i+s+1)!,
  // invertible per Bacher 2002. Check by solving against a known vector.
  for (size_t n : {1u, 3u, 6u}) {
    for (size_t s : {0u, 2u}) {
      RationalMatrix m(n + 1, std::vector<BigRational>(n + 1));
      for (size_t i = 0; i <= n; ++i) {
        for (size_t j = 0; j <= n; ++j) {
          m[i][j] = BigRational(Factorial(j + s) * Factorial(n + i - j),
                                Factorial(n + i + s + 1));
        }
      }
      std::vector<BigRational> x_true(n + 1);
      for (size_t j = 0; j <= n; ++j) x_true[j] = BigRational(BigInt(j * j + 1));
      std::vector<BigRational> b(n + 1, BigRational(0));
      for (size_t i = 0; i <= n; ++i) {
        for (size_t j = 0; j <= n; ++j) b[i] += m[i][j] * x_true[j];
      }
      EXPECT_EQ(SolveLinearSystem(m, b), x_true) << "n=" << n << " s=" << s;
    }
  }
}

TEST(VandermondeTest, RecoversPolynomialCoefficients) {
  // p(z) = 2 + 3z - z^2, sampled at 0, 1, 2.
  std::vector<BigRational> points = {0, 1, 2};
  std::vector<BigRational> values = {2, 4, 4};
  auto c = SolveVandermonde(points, values);
  ASSERT_EQ(c.size(), 3u);
  EXPECT_EQ(c[0], BigRational(2));
  EXPECT_EQ(c[1], BigRational(3));
  EXPECT_EQ(c[2], BigRational(-1));
}

TEST(VandermondeTest, RationalSamplePoints) {
  std::mt19937_64 rng(23);
  // Random degree-5 polynomial sampled at six rational points.
  std::vector<BigRational> coeffs;
  for (int i = 0; i < 6; ++i) {
    coeffs.push_back(BigRational(BigInt(static_cast<int64_t>(rng() % 19) - 9),
                                 BigInt(1 + rng() % 4)));
  }
  std::vector<BigRational> points, values;
  for (int i = 0; i < 6; ++i) {
    BigRational z(BigInt(i + 1), BigInt(2));
    points.push_back(z);
    BigRational v = 0;
    for (size_t k = coeffs.size(); k-- > 0;) v = v * z + coeffs[k];
    values.push_back(v);
  }
  EXPECT_EQ(SolveVandermonde(points, values), coeffs);
}

TEST(VandermondeTest, RepeatedPointThrows) {
  std::vector<BigRational> points = {1, 1};
  std::vector<BigRational> values = {2, 3};
  EXPECT_THROW(SolveVandermonde(points, values), std::invalid_argument);
}

}  // namespace
}  // namespace shapley
