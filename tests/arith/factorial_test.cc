#include "shapley/arith/factorial.h"

#include <gtest/gtest.h>

#include "shapley/common/macros.h"

namespace shapley {
namespace {

TEST(FactorialTest, SmallValues) {
  EXPECT_EQ(Factorial(0), BigInt(1));
  EXPECT_EQ(Factorial(1), BigInt(1));
  EXPECT_EQ(Factorial(5), BigInt(120));
  EXPECT_EQ(Factorial(20), BigInt::FromString("2432902008176640000"));
}

TEST(FactorialTest, BinomialPascalIdentity) {
  for (size_t n = 1; n <= 25; ++n) {
    for (size_t k = 1; k < n; ++k) {
      EXPECT_EQ(Binomial(n, k), Binomial(n - 1, k - 1) + Binomial(n - 1, k));
    }
    EXPECT_EQ(Binomial(n, 0), BigInt(1));
    EXPECT_EQ(Binomial(n, n), BigInt(1));
    EXPECT_EQ(Binomial(n, n + 1), BigInt(0));
  }
}

TEST(FactorialTest, ShapleyWeightsSumToOneOverChoices) {
  // Summing the weight over all coalitions B (grouped by size) must give 1:
  // sum_b C(n-1, b) * b!(n-b-1)!/n! = sum_b 1/n = 1.
  for (size_t n = 1; n <= 12; ++n) {
    BigRational total = 0;
    for (size_t b = 0; b < n; ++b) {
      total += BigRational(Binomial(n - 1, b)) * ShapleyWeight(n, b);
    }
    EXPECT_EQ(total, BigRational(1)) << "n=" << n;
  }
}

TEST(FactorialTest, ShapleyWeightRequiresBBelowN) {
  EXPECT_THROW(ShapleyWeight(3, 3), InternalError);
}

TEST(FactorialTest, TableIsIncremental) {
  FactorialTable table;
  EXPECT_EQ(table.Factorial(10), BigInt(3628800));
  EXPECT_EQ(table.Factorial(3), BigInt(6));  // Backwards access works.
  EXPECT_EQ(table.Binomial(52, 5), BigInt(2598960));
}

}  // namespace
}  // namespace shapley
