#include "shapley/arith/big_rational.h"

#include <random>

#include <gtest/gtest.h>

namespace shapley {
namespace {

TEST(BigRationalTest, NormalizationLowestTerms) {
  BigRational r(BigInt(6), BigInt(8));
  EXPECT_EQ(r.numerator(), BigInt(3));
  EXPECT_EQ(r.denominator(), BigInt(4));
  EXPECT_EQ(r.ToString(), "3/4");
}

TEST(BigRationalTest, NegativeDenominatorNormalized) {
  BigRational r(BigInt(3), BigInt(-6));
  EXPECT_EQ(r.ToString(), "-1/2");
  EXPECT_EQ(r.denominator(), BigInt(2));
}

TEST(BigRationalTest, ZeroHasCanonicalForm) {
  BigRational r(BigInt(0), BigInt(-17));
  EXPECT_TRUE(r.IsZero());
  EXPECT_EQ(r.denominator(), BigInt(1));
  EXPECT_EQ(r, BigRational(0));
}

TEST(BigRationalTest, ZeroDenominatorThrows) {
  EXPECT_THROW(BigRational(BigInt(1), BigInt(0)), std::invalid_argument);
}

TEST(BigRationalTest, FieldAxiomsOnRandomValues) {
  std::mt19937_64 rng(3);
  std::uniform_int_distribution<int64_t> dist(-50, 50);
  auto random_rational = [&]() {
    int64_t den = 0;
    while (den == 0) den = dist(rng);
    return BigRational(BigInt(dist(rng)), BigInt(den));
  };
  for (int i = 0; i < 500; ++i) {
    BigRational a = random_rational(), b = random_rational(), c = random_rational();
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ((a + b) + c, a + (b + c));
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ(a - a, BigRational(0));
    if (!a.IsZero()) {
      EXPECT_EQ(a * a.Inverse(), BigRational(1));
      EXPECT_EQ(b / a * a, b);
    }
  }
}

TEST(BigRationalTest, ComparisonCrossMultiplies) {
  EXPECT_LT(BigRational(BigInt(1), BigInt(3)), BigRational(BigInt(1), BigInt(2)));
  EXPECT_LT(BigRational(BigInt(-1), BigInt(2)), BigRational(BigInt(1), BigInt(3)));
  EXPECT_EQ(BigRational(BigInt(2), BigInt(4)), BigRational(BigInt(1), BigInt(2)));
}

TEST(BigRationalTest, ToDoubleApproximates) {
  EXPECT_NEAR(BigRational(BigInt(1), BigInt(3)).ToDouble(), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(BigRational(BigInt(-7), BigInt(2)).ToDouble(), -3.5, 1e-12);
  EXPECT_EQ(BigRational(0).ToDouble(), 0.0);
}

TEST(BigRationalTest, InverseOfZeroThrows) {
  EXPECT_THROW(BigRational(0).Inverse(), std::invalid_argument);
  EXPECT_THROW(BigRational(1) / BigRational(0), std::invalid_argument);
}

TEST(BigRationalTest, IntegerDetection) {
  EXPECT_TRUE(BigRational(BigInt(8), BigInt(4)).IsInteger());
  EXPECT_FALSE(BigRational(BigInt(8), BigInt(3)).IsInteger());
  EXPECT_EQ(BigRational(BigInt(8), BigInt(4)).ToString(), "2");
}

}  // namespace
}  // namespace shapley
