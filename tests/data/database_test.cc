#include "shapley/data/database.h"

#include <gtest/gtest.h>

#include "shapley/data/parser.h"
#include "shapley/data/probabilistic_database.h"
#include "shapley/data/renaming.h"

namespace shapley {
namespace {

class DatabaseTest : public ::testing::Test {
 protected:
  DatabaseTest() : schema_(Schema::Create()) {}
  std::shared_ptr<Schema> schema_;
};

TEST_F(DatabaseTest, InsertDeduplicatesAndSorts) {
  Database db = ParseDatabase(schema_, "R(b,c) R(a,b) R(b,c)");
  EXPECT_EQ(db.size(), 2u);
  EXPECT_TRUE(db.Contains(ParseFact(schema_, "R(a,b)")));
  EXPECT_FALSE(db.Insert(ParseFact(schema_, "R(a,b)")));
}

TEST_F(DatabaseTest, SetOperations) {
  Database a = ParseDatabase(schema_, "R(x,y) R(y,z)");
  Database b = ParseDatabase(schema_, "R(y,z) R(z,w)");
  EXPECT_EQ(a.Union(b).size(), 3u);
  EXPECT_EQ(a.Intersection(b).size(), 1u);
  EXPECT_EQ(a.Difference(b).size(), 1u);
  EXPECT_TRUE(a.Intersection(b).IsSubsetOf(a));
  EXPECT_TRUE(a.IntersectsWith(b));
  EXPECT_FALSE(a.Difference(b).IntersectsWith(b));
}

TEST_F(DatabaseTest, ConstantsCollected) {
  Database db = ParseDatabase(schema_, "R(a,b) S(b,c,d)");
  auto consts = db.Constants();
  EXPECT_EQ(consts.size(), 4u);
  EXPECT_TRUE(consts.count(Constant::Named("a")));
  EXPECT_TRUE(consts.count(Constant::Named("d")));
}

TEST_F(DatabaseTest, InducedByConstants) {
  Database db = ParseDatabase(schema_, "R(a,b) R(b,c) R(a,a)");
  std::set<Constant> allowed = {Constant::Named("a"), Constant::Named("b")};
  Database induced = db.InducedByConstants(allowed);
  EXPECT_EQ(induced.size(), 2u);
  EXPECT_TRUE(induced.Contains(ParseFact(schema_, "R(a,b)")));
  EXPECT_TRUE(induced.Contains(ParseFact(schema_, "R(a,a)")));
}

TEST_F(DatabaseTest, ConnectivityThroughSharedConstants) {
  EXPECT_TRUE(ParseDatabase(schema_, "R(a,b) R(b,c)").IsConnected());
  EXPECT_FALSE(ParseDatabase(schema_, "R(a,b) R(c,d)").IsConnected());
  EXPECT_TRUE(ParseDatabase(schema_, "").IsConnected());
  EXPECT_TRUE(ParseDatabase(schema_, "R(a,b)").IsConnected());
  // Connection via a ternary relation bridging two binary islands.
  EXPECT_TRUE(ParseDatabase(schema_, "R(a,b) R(c,d) T(b,x,c)").IsConnected());
}

TEST_F(DatabaseTest, ConnectedComponentsPartition) {
  Database db = ParseDatabase(schema_, "R(a,b) R(b,c) R(d,e) R(f,f)");
  auto components = db.ConnectedComponents();
  EXPECT_EQ(components.size(), 3u);
  size_t total = 0;
  for (const auto& comp : components) total += comp.size();
  EXPECT_EQ(total, db.size());
}

TEST_F(DatabaseTest, FactsOfFiltersByRelation) {
  Database db = ParseDatabase(schema_, "R(a,b) S(a) R(c,d)");
  EXPECT_EQ(db.FactsOf(*schema_->FindRelation("R")).size(), 2u);
  EXPECT_EQ(db.FactsOf(*schema_->FindRelation("S")).size(), 1u);
}

TEST_F(DatabaseTest, SchemaRejectsArityMismatch) {
  ParseDatabase(schema_, "R(a,b)");
  EXPECT_THROW(ParseDatabase(schema_, "R(a,b,c)"), std::invalid_argument);
}

TEST_F(DatabaseTest, ParserRejectsMalformedInput) {
  EXPECT_THROW(ParseDatabase(schema_, "R(a,"), std::invalid_argument);
  EXPECT_THROW(ParseDatabase(schema_, "(a,b)"), std::invalid_argument);
  EXPECT_THROW(ParseFact(schema_, "R(a) S(b)"), std::invalid_argument);
}

TEST_F(DatabaseTest, PartitionedParserSplitsAtBar) {
  PartitionedDatabase db =
      ParsePartitionedDatabase(schema_, "R(a,b) R(b,c) | S(c)");
  EXPECT_EQ(db.NumEndogenous(), 2u);
  EXPECT_EQ(db.exogenous().size(), 1u);
  EXPECT_FALSE(db.IsPurelyEndogenous());

  PartitionedDatabase endo_only = ParsePartitionedDatabase(schema_, "R(a,b)");
  EXPECT_TRUE(endo_only.IsPurelyEndogenous());
}

TEST_F(DatabaseTest, PartitionedDatabaseRejectsOverlap) {
  Database endo = ParseDatabase(schema_, "R(a,b)");
  Database exo = ParseDatabase(schema_, "R(a,b) S(c)");
  EXPECT_THROW(PartitionedDatabase(endo, exo), std::invalid_argument);
}

TEST_F(DatabaseTest, MakeExogenousMovesFact) {
  PartitionedDatabase db = ParsePartitionedDatabase(schema_, "R(a,b) R(b,c)");
  Fact f = ParseFact(schema_, "R(a,b)");
  PartitionedDatabase moved = db.WithFactMadeExogenous(f);
  EXPECT_EQ(moved.NumEndogenous(), 1u);
  EXPECT_TRUE(moved.exogenous().Contains(f));
  EXPECT_EQ(db.NumEndogenous(), 2u);  // Original untouched.
}

TEST_F(DatabaseTest, RenamingFreshExceptKeepsC) {
  Database db = ParseDatabase(schema_, "R(a,b) R(b,c)");
  std::set<Constant> keep = {Constant::Named("a")};
  ConstantRenaming renaming = ConstantRenaming::FreshExcept(db, keep);
  Database renamed = renaming.Apply(db);
  EXPECT_EQ(renamed.size(), 2u);
  auto consts = renamed.Constants();
  EXPECT_TRUE(consts.count(Constant::Named("a")));
  EXPECT_FALSE(consts.count(Constant::Named("b")));
  EXPECT_FALSE(consts.count(Constant::Named("c")));
  // Injective on this database: still two distinct non-'a' constants.
  EXPECT_EQ(consts.size(), 3u);
}

TEST_F(DatabaseTest, RenamingPreservesStructure) {
  Database db = ParseDatabase(schema_, "R(a,b) R(b,b)");
  ConstantRenaming renaming = ConstantRenaming::SingleFresh(Constant::Named("b"));
  Database renamed = renaming.Apply(db);
  // R(a,b') and R(b',b'): the shared-constant structure is preserved.
  EXPECT_EQ(renamed.size(), 2u);
  EXPECT_TRUE(renamed.IsConnected());
  EXPECT_TRUE(renamed.Constants().count(Constant::Named("a")));
}

TEST_F(DatabaseTest, ProbabilisticDatabasePartition) {
  PartitionedDatabase db =
      ParsePartitionedDatabase(schema_, "R(a,b) | S(c)");
  ProbabilisticDatabase pdb = ProbabilisticDatabase::FromPartitioned(
      db, BigRational(BigInt(1), BigInt(2)));
  EXPECT_EQ(pdb.size(), 2u);
  EXPECT_TRUE(pdb.IsSingleProperProbability());
  PartitionedDatabase back = pdb.AssociatedPartitioned();
  EXPECT_EQ(back.NumEndogenous(), 1u);
  EXPECT_EQ(back.exogenous().size(), 1u);
}

TEST_F(DatabaseTest, ProbabilisticDatabaseValidation) {
  ProbabilisticDatabase pdb(schema_);
  EXPECT_THROW(pdb.AddFact(ParseFact(schema_, "R(a,b)"), BigRational(0)),
               std::invalid_argument);
  EXPECT_THROW(pdb.AddFact(ParseFact(schema_, "R(a,b)"), BigRational(2)),
               std::invalid_argument);
  pdb.AddFact(ParseFact(schema_, "R(a,b)"), BigRational(1));
  EXPECT_THROW(pdb.AddFact(ParseFact(schema_, "R(a,b)"), BigRational(1)),
               std::invalid_argument);
  EXPECT_FALSE(pdb.IsSingleProbability());  // p == 1 is not proper.
}

}  // namespace
}  // namespace shapley
