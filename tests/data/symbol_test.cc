#include "shapley/data/symbol.h"

#include <set>

#include <gtest/gtest.h>

namespace shapley {
namespace {

TEST(SymbolTest, InternIsIdempotent) {
  Constant a1 = Constant::Named("alpha");
  Constant a2 = Constant::Named("alpha");
  EXPECT_EQ(a1, a2);
  EXPECT_EQ(a1.name(), "alpha");
}

TEST(SymbolTest, DistinctNamesDistinctIds) {
  EXPECT_NE(Constant::Named("a"), Constant::Named("b"));
}

TEST(SymbolTest, FreshConstantsAreAlwaysNew) {
  std::set<Constant> seen;
  seen.insert(Constant::Named("a"));
  for (int i = 0; i < 100; ++i) {
    Constant f = Constant::Fresh("a");
    EXPECT_TRUE(seen.insert(f).second) << f.name();
  }
}

TEST(SymbolTest, FreshNameDoesNotCollideWithInterned) {
  // Pre-intern a name of the shape Fresh would produce; Fresh must skip it.
  Constant taken = Constant::Named("collide#1");
  Constant f1 = Constant::Fresh("collide");
  EXPECT_NE(f1, taken);
  EXPECT_EQ(Constant::Named(f1.name()), f1);  // Fresh names are interned.
}

TEST(SymbolTest, VariablesAndConstantsLiveInSeparateNamespaces) {
  Constant c = Constant::Named("x");
  Variable v = Variable::Named("x");
  EXPECT_EQ(c.name(), v.name());
  // Different types; ids may or may not coincide but identity is per-type.
  EXPECT_EQ(Variable::Named("x"), v);
  EXPECT_EQ(Constant::Named("x"), c);
}

TEST(SymbolTest, DefaultIsInvalid) {
  EXPECT_FALSE(Constant().IsValid());
  EXPECT_FALSE(Variable().IsValid());
  EXPECT_TRUE(Constant::Named("q").IsValid());
}

TEST(SymbolTest, OrderingIsStable) {
  Constant a = Constant::Named("ord_a");
  Constant b = Constant::Named("ord_b");
  EXPECT_TRUE(a < b || b < a);
  EXPECT_FALSE(a < a);
}

}  // namespace
}  // namespace shapley
