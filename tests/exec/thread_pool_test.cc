#include "shapley/exec/thread_pool.h"

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace shapley {
namespace {

TEST(ThreadPoolTest, SubmitRunsTasksAndReturnsResults) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.num_threads(), 3u);

  std::vector<std::future<int>> futures;
  for (int i = 0; i < 20; ++i) {
    futures.push_back(pool.Submit([i] { return i * i; }));
  }
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(futures[static_cast<size_t>(i)].get(), i * i);
  }
  EXPECT_GE(pool.tasks_executed(), 20u);
}

TEST(ThreadPoolTest, SubmitPropagatesExceptionsThroughFuture) {
  ThreadPool pool(2);
  auto future = pool.Submit(
      []() -> int { throw std::runtime_error("task failed"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr size_t kCount = 10000;
  std::vector<std::atomic<int>> touched(kCount);
  pool.ParallelFor(0, kCount,
                   [&](size_t i) { touched[i].fetch_add(1); },
                   /*grain=*/7);
  for (size_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(touched[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForHonorsBeginOffsetAndEmptyRange) {
  ThreadPool pool(2);
  std::atomic<size_t> sum{0};
  pool.ParallelFor(100, 200, [&](size_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), (100u + 199u) * 100u / 2u);

  pool.ParallelFor(5, 5, [&](size_t) { FAIL() << "empty range ran"; });
  pool.ParallelFor(7, 3, [&](size_t) { FAIL() << "inverted range ran"; });
}

TEST(ThreadPoolTest, ParallelForRethrowsFirstBodyException) {
  ThreadPool pool(3);
  std::atomic<size_t> executed{0};
  EXPECT_THROW(
      pool.ParallelFor(0, 1000,
                       [&](size_t i) {
                         executed.fetch_add(1);
                         if (i == 17) throw std::invalid_argument("boom");
                       }),
      std::invalid_argument);
  // The loop terminated (did not hang) and did not run everything after
  // abandoning; no stronger guarantee than termination is made.
  EXPECT_GE(executed.load(), 1u);
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<size_t> total{0};
  pool.ParallelFor(0, 8, [&](size_t) {
    pool.ParallelFor(0, 50, [&](size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 8u * 50u);
}

TEST(ThreadPoolTest, StressManySmallLoops) {
  ThreadPool pool(4);
  for (int round = 0; round < 200; ++round) {
    std::atomic<size_t> sum{0};
    pool.ParallelFor(0, 64, [&](size_t i) { sum.fetch_add(i + 1); });
    ASSERT_EQ(sum.load(), 64u * 65u / 2u) << "round " << round;
  }
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  std::atomic<int> ran{0};
  std::vector<std::future<void>> futures;
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      futures.push_back(pool.Submit([&ran] { ran.fetch_add(1); }));
    }
  }  // Destructor joins after draining.
  EXPECT_EQ(ran.load(), 50);
  for (auto& f : futures) f.get();
}

}  // namespace
}  // namespace shapley
