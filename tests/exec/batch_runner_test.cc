#include "shapley/exec/batch_runner.h"

#include <gtest/gtest.h>

#include "shapley/data/parser.h"
#include "shapley/engines/fgmc.h"
#include "shapley/engines/svc.h"
#include "shapley/gen/generators.h"
#include "shapley/query/query_parser.h"

namespace shapley {
namespace {

QueryPtr ParseQuery(const std::shared_ptr<Schema>& schema, const char* text) {
  UcqPtr ucq = ParseUcq(schema, text);
  if (ucq->disjuncts().size() == 1) return ucq->disjuncts()[0];
  return ucq;
}

std::vector<BatchInstance> RandomBatch(const std::shared_ptr<Schema>& schema,
                                       const char* query_text,
                                       size_t instances, uint64_t seed0) {
  QueryPtr q = ParseQuery(schema, query_text);
  std::vector<BatchInstance> batch;
  for (size_t k = 0; k < instances; ++k) {
    RandomDatabaseOptions options;
    options.num_facts = 7;
    options.domain_size = 3;
    options.exogenous_fraction = 0.25;
    options.seed = seed0 + 29 * k;
    batch.push_back({q, RandomPartitionedDatabase(schema, options)});
  }
  return batch;
}

// The core property of the whole subsystem: the parallel, cached batch path
// is bit-identical to the serial per-fact engines.
TEST(BatchRunnerTest, ParallelBatchEqualsSequentialBruteForce) {
  for (const char* query_text :
       {"R(x), S(x,y)", "R(x), S(x,y), T(y)", "R(x,y) | R(x,x)"}) {
    auto schema = Schema::Create();
    std::vector<BatchInstance> batch = RandomBatch(schema, query_text, 5, 11);

    BatchOptions options;
    options.threads = 4;
    BatchSvcRunner runner(std::make_shared<BruteForceSvc>(), options);
    std::vector<std::map<Fact, BigRational>> results = runner.AllValues(batch);

    ASSERT_EQ(results.size(), batch.size());
    BruteForceSvc serial;
    for (size_t k = 0; k < batch.size(); ++k) {
      const auto& db = batch[k].db;
      ASSERT_EQ(results[k].size(), db.NumEndogenous()) << query_text;
      for (const Fact& f : db.endogenous().facts()) {
        EXPECT_EQ(results[k].at(f), serial.Value(*batch[k].query, db, f))
            << query_text << " instance " << k;
      }
    }
    const ExecStats& stats = runner.last_stats();
    EXPECT_EQ(stats.instances, batch.size());
    EXPECT_EQ(stats.threads, 4u);
    EXPECT_GT(stats.wall_ms, 0.0);
  }
}

TEST(BatchRunnerTest, ParallelBatchEqualsPermutationOracle) {
  auto schema = Schema::Create();
  std::vector<BatchInstance> batch = RandomBatch(schema, "R(x), S(x,y)", 3, 5);

  BatchOptions options;
  options.threads = 3;
  BatchSvcRunner runner(std::make_shared<BruteForceSvc>(), options);
  auto results = runner.AllValues(batch);

  PermutationSvc permutations;
  for (size_t k = 0; k < batch.size(); ++k) {
    ASSERT_LE(batch[k].db.NumEndogenous(), 9u);
    for (const Fact& f : batch[k].db.endogenous().facts()) {
      EXPECT_EQ(results[k].at(f),
                permutations.Value(*batch[k].query, batch[k].db, f))
          << "instance " << k;
    }
  }
}

TEST(BatchRunnerTest, ViaFgmcBatchSharesOracleWorkAndMatchesSerial) {
  auto schema = Schema::Create();
  std::vector<BatchInstance> batch = RandomBatch(schema, "R(x), S(x,y)", 4, 3);
  // Two copies of the same instance: the cache must collapse the repeats.
  batch.push_back(batch[0]);

  BatchOptions options;
  // Serial: cache-hit counts are deterministic only without concurrent
  // misses on one key (those compute independently, first insert wins).
  options.threads = 1;
  BatchSvcRunner runner(std::make_shared<SvcViaFgmc>(
                            std::make_shared<BruteForceFgmc>()),
                        options);
  auto results = runner.AllValues(batch);

  SvcViaFgmc serial(std::make_shared<BruteForceFgmc>());
  size_t total_facts = 0;
  for (size_t k = 0; k < batch.size(); ++k) {
    total_facts += batch[k].db.NumEndogenous();
    for (const Fact& f : batch[k].db.endogenous().facts()) {
      EXPECT_EQ(results[k].at(f), serial.Value(*batch[k].query, batch[k].db, f))
          << "instance " << k;
    }
  }

  const ExecStats& stats = runner.last_stats();
  EXPECT_EQ(stats.facts, total_facts);
  // Shared full-database compilation: 1 + |Dn| logical requests per
  // instance instead of 2|Dn|.
  EXPECT_EQ(stats.oracle_calls, total_facts + batch.size());
  // The duplicated instance answers entirely from cache.
  EXPECT_GE(stats.cache_hits, 1 + batch.back().db.NumEndogenous());
  EXPECT_EQ(stats.cache_hits + stats.cache_misses, stats.oracle_calls);
}

TEST(BatchRunnerTest, LiftedOracleBatchMatchesBruteForce) {
  auto schema = Schema::Create();
  std::vector<BatchInstance> batch =
      RandomBatch(schema, "R(x), S(x,y)", 4, 23);

  BatchOptions options;
  options.threads = 2;
  BatchSvcRunner runner(
      std::make_shared<SvcViaFgmc>(std::make_shared<LiftedFgmc>()), options);
  auto results = runner.AllValues(batch);

  BruteForceSvc brute;
  for (size_t k = 0; k < batch.size(); ++k) {
    EXPECT_EQ(results[k], brute.AllValues(*batch[k].query, batch[k].db))
        << "instance " << k;
  }
}

TEST(BatchRunnerTest, SerialModeAndCachelessModeStillAgree) {
  auto schema = Schema::Create();
  std::vector<BatchInstance> batch = RandomBatch(schema, "R(x), S(x,y)", 3, 41);

  BruteForceSvc reference;
  std::vector<std::map<Fact, BigRational>> expected;
  for (const auto& instance : batch) {
    expected.push_back(reference.AllValues(*instance.query, instance.db));
  }

  for (bool use_cache : {true, false}) {
    for (size_t threads : {size_t{1}, size_t{2}}) {
      BatchOptions options;
      options.threads = threads;
      options.use_cache = use_cache;
      BatchSvcRunner runner(std::make_shared<SvcViaFgmc>(
                                std::make_shared<BruteForceFgmc>()),
                            options);
      EXPECT_EQ(runner.AllValues(batch), expected)
          << "threads=" << threads << " cache=" << use_cache;
      EXPECT_EQ(runner.pool() != nullptr, threads > 1);
      EXPECT_EQ(runner.cache() != nullptr, use_cache);
    }
  }
}

TEST(BatchRunnerTest, MaxValuesMatchesSerialMaxValue) {
  auto schema = Schema::Create();
  std::vector<BatchInstance> batch = RandomBatch(schema, "R(x), S(x,y)", 4, 19);

  BatchOptions options;
  options.threads = 3;
  BatchSvcRunner runner(std::make_shared<BruteForceSvc>(), options);
  auto maxima = runner.MaxValues(batch);

  BruteForceSvc serial;
  ASSERT_EQ(maxima.size(), batch.size());
  for (size_t k = 0; k < batch.size(); ++k) {
    auto [fact, value] = serial.MaxValue(*batch[k].query, batch[k].db);
    EXPECT_EQ(maxima[k].first, fact) << "instance " << k;
    EXPECT_EQ(maxima[k].second, value) << "instance " << k;
  }
}

TEST(BatchRunnerTest, EngineErrorsPropagateAndContextIsRestored) {
  auto schema = Schema::Create();
  QueryPtr q = ParseQuery(schema, "R(x)");
  // MaxValue on an endogenous-free instance throws.
  std::vector<BatchInstance> batch{
      {q, ParsePartitionedDatabase(schema, "| R(a)")}};

  auto engine = std::make_shared<BruteForceSvc>();
  BatchOptions options;
  options.threads = 2;
  BatchSvcRunner runner(engine, options);
  EXPECT_THROW(runner.MaxValues(batch), std::invalid_argument);
  EXPECT_EQ(engine->exec_context().pool, nullptr);
  EXPECT_EQ(engine->exec_context().cache, nullptr);
}

TEST(BatchRunnerTest, EmptyBatchAndEmptyInstances) {
  auto schema = Schema::Create();
  BatchOptions options;
  options.threads = 2;
  BatchSvcRunner runner(std::make_shared<BruteForceSvc>(), options);
  EXPECT_TRUE(runner.AllValues({}).empty());

  QueryPtr q = ParseQuery(schema, "R(x)");
  std::vector<BatchInstance> batch{
      {q, ParsePartitionedDatabase(schema, "| R(a)")}};
  auto results = runner.AllValues(batch);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].empty());
}

}  // namespace
}  // namespace shapley
