#include "shapley/exec/oracle_cache.h"

#include <gtest/gtest.h>

#include "shapley/data/parser.h"
#include "shapley/engines/fgmc.h"
#include "shapley/exec/thread_pool.h"
#include "shapley/lineage/ddnnf.h"
#include "shapley/query/query_parser.h"

namespace shapley {
namespace {

class OracleCacheTest : public ::testing::Test {
 protected:
  std::shared_ptr<Schema> schema_ = Schema::Create();
};

TEST_F(OracleCacheTest, MemoizesCountBySize) {
  CqPtr q = ParseCq(schema_, "R(x), S(x,y)");
  PartitionedDatabase db =
      ParsePartitionedDatabase(schema_, "R(a) S(a,b) S(a,c) | R(d)");

  OracleCache cache;
  BruteForceFgmc oracle;
  Polynomial direct = oracle.CountBySize(*q, db);

  Polynomial first = cache.CountBySize(oracle, *q, db);
  EXPECT_EQ(first, direct);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 1u);

  Polynomial second = cache.CountBySize(oracle, *q, db);
  EXPECT_EQ(second, direct);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST_F(OracleCacheTest, FingerprintSeparatesQueryDatabaseAndPartition) {
  CqPtr q1 = ParseCq(schema_, "R(x), S(x,y)");
  CqPtr q2 = ParseCq(schema_, "R(x)");
  PartitionedDatabase db1 =
      ParsePartitionedDatabase(schema_, "R(a) S(a,b)");
  PartitionedDatabase db2 =
      ParsePartitionedDatabase(schema_, "R(a) S(a,c)");
  // Same facts as db1, but S(a,b) exogenous: the partition must matter.
  PartitionedDatabase db3 = ParsePartitionedDatabase(schema_, "R(a) | S(a,b)");

  const std::string base = OracleCache::Fingerprint("brute-force", *q1, db1);
  EXPECT_NE(OracleCache::Fingerprint("brute-force", *q2, db1), base);
  EXPECT_NE(OracleCache::Fingerprint("brute-force", *q1, db2), base);
  EXPECT_NE(OracleCache::Fingerprint("brute-force", *q1, db3), base);
  EXPECT_NE(OracleCache::Fingerprint("lifted-safe-plan", *q1, db1), base);
  EXPECT_EQ(OracleCache::Fingerprint("brute-force", *q1, db1), base);
}

TEST_F(OracleCacheTest, DistinctEnginesGetDistinctEntries) {
  CqPtr q = ParseCq(schema_, "R(x), S(x,y)");
  PartitionedDatabase db = ParsePartitionedDatabase(schema_, "R(a) S(a,b)");

  OracleCache cache;
  BruteForceFgmc brute;
  LiftedFgmc lifted;
  Polynomial from_brute = cache.CountBySize(brute, *q, db);
  Polynomial from_lifted = cache.CountBySize(lifted, *q, db);
  EXPECT_EQ(from_brute, from_lifted);  // Engines agree...
  EXPECT_EQ(cache.misses(), 2u);       // ...but are keyed separately.
  EXPECT_EQ(cache.size(), 2u);
}

TEST_F(OracleCacheTest, SatTableSharesOneMemoPerFingerprint) {
  CqPtr q = ParseCq(schema_, "R(x), S(x,y)");
  PartitionedDatabase db =
      ParsePartitionedDatabase(schema_, "R(a) S(a,b) | R(d)");
  PartitionedDatabase other = ParsePartitionedDatabase(schema_, "R(a) S(a,c)");

  OracleCache cache;
  std::shared_ptr<SatMemo> memo = cache.SatTable(*q, db);
  ASSERT_NE(memo, nullptr);
  EXPECT_EQ(cache.misses(), 1u);

  // Same (query, db) → same resident memo; verdicts written through one
  // handle are visible through the other.
  memo->Insert(0b11, true);
  std::shared_ptr<SatMemo> again = cache.SatTable(*q, db);
  EXPECT_EQ(memo, again);
  EXPECT_EQ(cache.hits(), 1u);
  ASSERT_TRUE(again->Lookup(0b11).has_value());
  EXPECT_TRUE(*again->Lookup(0b11));
  EXPECT_FALSE(again->Lookup(0b01).has_value());

  // A different database is a different memo.
  EXPECT_NE(cache.SatTable(*q, other), memo);
  EXPECT_EQ(cache.size(), 2u);
}

TEST_F(OracleCacheTest, MemoizesCompiledCircuits) {
  CqPtr q = ParseCq(schema_, "R(x), S(x,y)");
  PartitionedDatabase db =
      ParsePartitionedDatabase(schema_, "R(a) S(a,b) R(c) S(c,d)");

  OracleCache cache;
  auto circuit1 = cache.Circuit(*q, db, 200000, 2000000);
  auto circuit2 = cache.Circuit(*q, db, 200000, 2000000);
  EXPECT_EQ(circuit1.get(), circuit2.get());  // Same compilation, shared.
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);

  BruteForceFgmc brute;
  EXPECT_EQ(circuit1->CountBySize(), brute.CountBySize(*q, db));
}

TEST_F(OracleCacheTest, CircuitCacheDrivesLineageFgmc) {
  CqPtr q = ParseCq(schema_, "R(x), S(x,y)");
  PartitionedDatabase db =
      ParsePartitionedDatabase(schema_, "R(a) S(a,b) S(a,c) | S(a,d)");

  BruteForceFgmc brute;
  LineageFgmc lineage;
  OracleCache cache;
  lineage.set_circuit_cache(&cache);
  EXPECT_EQ(lineage.CountBySize(*q, db), brute.CountBySize(*q, db));
  EXPECT_EQ(lineage.CountBySize(*q, db), brute.CountBySize(*q, db));
  EXPECT_EQ(cache.hits(), 1u);
  lineage.set_circuit_cache(nullptr);
}

TEST_F(OracleCacheTest, EvictsLruByCountWhenFull) {
  CqPtr q = ParseCq(schema_, "R(x)");
  OracleCache cache(/*max_entries=*/2);
  BruteForceFgmc oracle;
  for (int i = 0; i < 5; ++i) {
    PartitionedDatabase db = ParsePartitionedDatabase(
        schema_, "R(a" + std::to_string(i) + ")");
    cache.CountBySize(oracle, *q, db);
  }
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.misses(), 5u);
  EXPECT_EQ(cache.evictions(), 3u);

  // The most recent entries survived: re-asking for them hits...
  cache.CountBySize(oracle, *q, ParsePartitionedDatabase(schema_, "R(a4)"));
  cache.CountBySize(oracle, *q, ParsePartitionedDatabase(schema_, "R(a3)"));
  EXPECT_EQ(cache.hits(), 2u);
  // ...and the oldest was evicted: re-asking for it misses again.
  cache.CountBySize(oracle, *q, ParsePartitionedDatabase(schema_, "R(a0)"));
  EXPECT_EQ(cache.misses(), 6u);
}

TEST_F(OracleCacheTest, LruBumpOnHitProtectsHotEntries) {
  CqPtr q = ParseCq(schema_, "R(x)");
  OracleCache cache(/*max_entries=*/2);
  BruteForceFgmc oracle;
  auto count = [&](const std::string& db_text) {
    PartitionedDatabase db = ParsePartitionedDatabase(schema_, db_text);
    cache.CountBySize(oracle, *q, db);
  };
  count("R(a)");  // miss
  count("R(b)");  // miss
  count("R(a)");  // hit: bumps R(a) ahead of R(b)
  count("R(c)");  // miss: evicts R(b), the least recently used
  count("R(a)");  // hit: R(a) survived because it was hot
  EXPECT_EQ(cache.hits(), 2u);
  EXPECT_EQ(cache.misses(), 3u);
  count("R(b)");  // miss again: it was the one evicted
  EXPECT_EQ(cache.misses(), 4u);
}

TEST_F(OracleCacheTest, AccountsApproximateBytesAndEvictsBySize) {
  CqPtr q = ParseCq(schema_, "R(x), S(x,y)");
  PartitionedDatabase db =
      ParsePartitionedDatabase(schema_, "R(a) S(a,b) S(a,c)");

  OracleCache cache;
  BruteForceFgmc oracle;
  EXPECT_EQ(cache.bytes_used(), 0u);
  cache.CountBySize(oracle, *q, db);
  const size_t after_polynomial = cache.bytes_used();
  EXPECT_GT(after_polynomial, 0u);

  // Compiled circuits are accounted too — and they dominate polynomials.
  cache.Circuit(*q, db, 200000, 2000000);
  EXPECT_GT(cache.bytes_used(), after_polynomial);

  cache.Clear();
  EXPECT_EQ(cache.bytes_used(), 0u);
  EXPECT_EQ(cache.size(), 0u);

  // A tiny byte budget forces LRU-by-size eviction down to one resident
  // entry (a single entry is always admitted so work is never recomputed
  // forever).
  OracleCache tiny(/*max_entries=*/1 << 16, /*max_bytes=*/1);
  for (int i = 0; i < 4; ++i) {
    PartitionedDatabase d = ParsePartitionedDatabase(
        schema_, "R(a" + std::to_string(i) + ")");
    tiny.CountBySize(oracle, *ParseCq(schema_, "R(x)"), d);
    EXPECT_EQ(tiny.size(), 1u);
  }
  EXPECT_EQ(tiny.evictions(), 3u);
}

TEST_F(OracleCacheTest, ThreadSafeUnderConcurrentMixedAccess) {
  CqPtr q = ParseCq(schema_, "R(x), S(x,y)");
  std::vector<PartitionedDatabase> dbs;
  for (int i = 0; i < 4; ++i) {
    dbs.push_back(ParsePartitionedDatabase(
        schema_, "R(a) S(a,b" + std::to_string(i) + ") S(a,c)"));
  }
  BruteForceFgmc oracle;
  std::vector<Polynomial> expected;
  for (const auto& db : dbs) expected.push_back(oracle.CountBySize(*q, db));

  OracleCache cache;
  ThreadPool pool(4);
  pool.ParallelFor(0, 400, [&](size_t i) {
    const size_t k = i % dbs.size();
    ASSERT_EQ(cache.CountBySize(oracle, *q, dbs[k]), expected[k]);
  });
  EXPECT_EQ(cache.hits() + cache.misses(), 400u);
  EXPECT_GE(cache.hits(), 400u - 2 * dbs.size());
}

}  // namespace
}  // namespace shapley
