#include "shapley/lineage/lineage.h"

#include <random>

#include <gtest/gtest.h>

#include "shapley/data/parser.h"
#include "shapley/lineage/ddnnf.h"
#include "shapley/query/query_parser.h"

namespace shapley {
namespace {

class LineageTest : public ::testing::Test {
 protected:
  LineageTest() : schema_(Schema::Create()) {}
  std::shared_ptr<Schema> schema_;
};

TEST_F(LineageTest, SimpleJoinLineage) {
  CqPtr q = ParseCq(schema_, "R(x,y), S(y)");
  PartitionedDatabase db =
      ParsePartitionedDatabase(schema_, "R(a,b) S(b) R(c,b)");
  Lineage lineage = BuildLineage(*q, db);
  EXPECT_EQ(lineage.num_variables(), 3u);
  EXPECT_FALSE(lineage.certainly_true);
  // Two minimal supports: {R(a,b),S(b)} and {R(c,b),S(b)}.
  EXPECT_EQ(lineage.clauses.size(), 2u);
  for (const auto& clause : lineage.clauses) EXPECT_EQ(clause.size(), 2u);
}

TEST_F(LineageTest, ExogenousFactsDropOut) {
  CqPtr q = ParseCq(schema_, "R(x,y), S(y)");
  PartitionedDatabase db = ParsePartitionedDatabase(schema_, "R(a,b) | S(b)");
  Lineage lineage = BuildLineage(*q, db);
  ASSERT_EQ(lineage.clauses.size(), 1u);
  EXPECT_EQ(lineage.clauses[0].size(), 1u);  // Only R(a,b) is uncertain.
}

TEST_F(LineageTest, CertainlyTrueWhenExogenousSupport) {
  CqPtr q = ParseCq(schema_, "R(x,y)");
  PartitionedDatabase db = ParsePartitionedDatabase(schema_, "R(c,d) | R(a,b)");
  Lineage lineage = BuildLineage(*q, db);
  EXPECT_TRUE(lineage.certainly_true);
}

TEST_F(LineageTest, FalseWhenNoSupport) {
  CqPtr q = ParseCq(schema_, "R(x,y), S(y)");
  PartitionedDatabase db = ParsePartitionedDatabase(schema_, "R(a,b)");
  Lineage lineage = BuildLineage(*q, db);
  EXPECT_FALSE(lineage.certainly_true);
  EXPECT_TRUE(lineage.clauses.empty());
}

TEST_F(LineageTest, AbsorptionRemovesSuperclauses) {
  // q = R(x,y) ∨ (R(x,y) ∧ S(y)): S-clauses absorbed by single R-clauses.
  UcqPtr q = ParseUcq(schema_, "R(x,y) | R(x,y), S(y)");
  PartitionedDatabase db = ParsePartitionedDatabase(schema_, "R(a,b) S(b)");
  Lineage lineage = BuildLineage(*q, db);
  ASSERT_EQ(lineage.clauses.size(), 1u);
  EXPECT_EQ(lineage.clauses[0].size(), 1u);
}

TEST_F(LineageTest, NonMonotoneRejected) {
  CqPtr q = ParseCq(schema_, "A(x), !B(x)");
  PartitionedDatabase db = ParsePartitionedDatabase(schema_, "A(a)");
  EXPECT_THROW(BuildLineage(*q, db), std::invalid_argument);
}

// --- Knowledge compilation ---

class DdnnfTest : public ::testing::Test {
 protected:
  // Brute-force model count by size from the DNF itself.
  static Polynomial BruteCount(const Lineage& lineage) {
    size_t n = lineage.num_variables();
    std::vector<BigInt> coeffs(n + 1, BigInt(0));
    for (uint64_t mask = 0; mask < (uint64_t{1} << n); ++mask) {
      bool satisfied = lineage.certainly_true;
      for (const auto& clause : lineage.clauses) {
        bool all = true;
        for (uint32_t v : clause) {
          if ((mask & (uint64_t{1} << v)) == 0) {
            all = false;
            break;
          }
        }
        if (all) {
          satisfied = true;
          break;
        }
      }
      if (satisfied) {
        coeffs[static_cast<size_t>(__builtin_popcountll(mask))] += 1;
      }
    }
    return Polynomial(std::move(coeffs));
  }

  static Lineage MakeLineage(size_t num_vars,
                             std::vector<std::vector<uint32_t>> clauses) {
    Lineage lineage;
    auto schema = Schema::Create();
    RelationId rel = schema->AddRelation("V", 1);
    for (size_t i = 0; i < num_vars; ++i) {
      lineage.variables.push_back(
          Fact(rel, {Constant::Named("v" + std::to_string(i))}));
    }
    for (auto& c : clauses) {
      std::sort(c.begin(), c.end());
      lineage.clauses.push_back(std::move(c));
    }
    return lineage;
  }
};

TEST_F(DdnnfTest, SingleClause) {
  Lineage lineage = MakeLineage(3, {{0, 1}});
  DdnnfCircuit circuit = CompileDnf(lineage);
  // Models: x0 ∧ x1, x2 free: sizes 2 and 3, one each... plus x2: counts:
  // k=2: 1 (x0x1), k=3: 1 (x0x1x2).
  Polynomial expected = BruteCount(lineage);
  EXPECT_EQ(circuit.CountBySize(), expected);
  EXPECT_EQ(circuit.ModelCount(), BigInt(2));
}

TEST_F(DdnnfTest, IndependentClausesDecompose) {
  Lineage lineage = MakeLineage(4, {{0}, {1}, {2}, {3}});
  DdnnfCircuit circuit = CompileDnf(lineage);
  EXPECT_EQ(circuit.CountBySize(), BruteCount(lineage));
  // 2^4 - 1 satisfying assignments (any nonempty subset).
  EXPECT_EQ(circuit.ModelCount(), BigInt(15));
}

TEST_F(DdnnfTest, RandomDnfsMatchBruteForce) {
  std::mt19937_64 rng(41);
  for (int trial = 0; trial < 60; ++trial) {
    size_t n = 2 + rng() % 9;  // 2..10 variables.
    size_t m = 1 + rng() % 6;  // 1..6 clauses.
    std::vector<std::vector<uint32_t>> clauses;
    for (size_t c = 0; c < m; ++c) {
      std::vector<uint32_t> clause;
      for (uint32_t v = 0; v < n; ++v) {
        if (rng() % 3 == 0) clause.push_back(v);
      }
      if (clause.empty()) clause.push_back(static_cast<uint32_t>(rng() % n));
      clauses.push_back(std::move(clause));
    }
    Lineage lineage = MakeLineage(n, std::move(clauses));
    DdnnfCircuit circuit = CompileDnf(lineage);
    EXPECT_EQ(circuit.CountBySize(), BruteCount(lineage)) << "trial " << trial;
  }
}

TEST_F(DdnnfTest, WeightedModelCountMatchesEnumeration) {
  std::mt19937_64 rng(43);
  Lineage lineage = MakeLineage(5, {{0, 1}, {1, 2}, {3, 4}});
  DdnnfCircuit circuit = CompileDnf(lineage);

  std::vector<BigRational> probs;
  for (int i = 0; i < 5; ++i) {
    probs.push_back(BigRational(BigInt(1 + static_cast<int64_t>(rng() % 9)),
                                BigInt(10)));
  }
  // Brute force.
  BigRational expected(0);
  for (uint64_t mask = 0; mask < 32; ++mask) {
    bool sat = false;
    for (const auto& clause : lineage.clauses) {
      bool all = true;
      for (uint32_t v : clause) {
        if ((mask & (uint64_t{1} << v)) == 0) all = false;
      }
      if (all) {
        sat = true;
        break;
      }
    }
    if (!sat) continue;
    BigRational weight(1);
    for (uint32_t v = 0; v < 5; ++v) {
      weight *= (mask & (uint64_t{1} << v)) ? probs[v]
                                            : BigRational(1) - probs[v];
    }
    expected += weight;
  }
  EXPECT_EQ(circuit.WeightedModelCount(probs), expected);
}

TEST_F(DdnnfTest, TrueAndFalseCircuits) {
  Lineage certainly;
  certainly.certainly_true = true;
  for (int i = 0; i < 3; ++i) {
    certainly.variables.push_back(Fact(0, {Constant::Fresh("t")}));
  }
  DdnnfCircuit t = CompileDnf(certainly);
  EXPECT_EQ(t.ModelCount(), BigInt(8));
  EXPECT_EQ(t.CountBySize(), Polynomial::OnePlusZPower(3));

  Lineage never = MakeLineage(2, {});
  DdnnfCircuit f = CompileDnf(never);
  EXPECT_EQ(f.ModelCount(), BigInt(0));
  EXPECT_TRUE(f.CountBySize().IsZero());
}

TEST_F(DdnnfTest, CacheKeepsCircuitSmallOnSeriesParallel) {
  // k independent pairs: circuit should stay tiny thanks to decomposition.
  std::vector<std::vector<uint32_t>> clauses;
  for (uint32_t i = 0; i < 10; ++i) clauses.push_back({2 * i, 2 * i + 1});
  Lineage lineage = MakeLineage(20, std::move(clauses));
  DdnnfCircuit circuit = CompileDnf(lineage);
  EXPECT_LT(circuit.size(), 200u);
  // Count: (3^10 sub-check) total models = 2^20 - 3^10.
  EXPECT_EQ(circuit.ModelCount(),
            BigInt::Pow(2, 20) - BigInt::Pow(3, 10));
}

TEST_F(DdnnfTest, NodeCapEnforced) {
  std::vector<std::vector<uint32_t>> clauses;
  // Dense random-ish structure to defeat decomposition.
  for (uint32_t i = 0; i < 14; ++i) {
    clauses.push_back({i, (i + 1) % 14, (i + 5) % 14});
  }
  Lineage lineage = MakeLineage(14, std::move(clauses));
  EXPECT_THROW(CompileDnf(lineage, 10), std::invalid_argument);
}

}  // namespace
}  // namespace shapley
