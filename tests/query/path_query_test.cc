#include "shapley/query/path_query.h"

#include <gtest/gtest.h>

#include "shapley/data/parser.h"

namespace shapley {
namespace {

class PathQueryTest : public ::testing::Test {
 protected:
  PathQueryTest() : schema_(Schema::Create()) {}

  RpqPtr Rpq(const std::string& regex, const std::string& src,
             const std::string& dst) {
    return RegularPathQuery::Create(schema_, Regex::Parse(regex),
                                    Constant::Named(src), Constant::Named(dst));
  }

  std::shared_ptr<Schema> schema_;
};

TEST_F(PathQueryTest, SimplePathReachability) {
  RpqPtr q = Rpq("A B", "s", "t");
  EXPECT_TRUE(q->Evaluate(ParseDatabase(schema_, "A(s,m) B(m,t)")));
  EXPECT_FALSE(q->Evaluate(ParseDatabase(schema_, "A(s,m) B(t,m)")));
  EXPECT_FALSE(q->Evaluate(ParseDatabase(schema_, "B(s,m) A(m,t)")));
}

TEST_F(PathQueryTest, StarTraversesCycles) {
  RpqPtr q = Rpq("A*", "s", "t");
  EXPECT_TRUE(q->Evaluate(ParseDatabase(schema_, "A(s,x1) A(x1,x2) A(x2,t)")));
  // Epsilon at same endpoint.
  RpqPtr loop = Rpq("A*", "s", "s");
  EXPECT_TRUE(loop->Evaluate(ParseDatabase(schema_, "")));
  // Through a cycle back to s.
  EXPECT_TRUE(q->Evaluate(ParseDatabase(schema_, "A(s,u) A(u,s) A(s,t)")));
}

TEST_F(PathQueryTest, EpsilonNeedsSameEndpoints) {
  RpqPtr q = Rpq("A?", "s", "t");
  EXPECT_FALSE(q->Evaluate(ParseDatabase(schema_, "B(s,t)")));
  EXPECT_TRUE(q->Evaluate(ParseDatabase(schema_, "A(s,t)")));
  RpqPtr same = Rpq("A?", "s", "s");
  EXPECT_TRUE(same->Evaluate(ParseDatabase(schema_, "B(u,w)")));
}

TEST_F(PathQueryTest, ReuseOfEdgesAcrossStates) {
  // The word AA can traverse the same edge twice on a self-loop.
  RpqPtr q = Rpq("A A", "s", "s");
  EXPECT_TRUE(q->Evaluate(ParseDatabase(schema_, "A(s,s)")));
  EXPECT_FALSE(q->Evaluate(ParseDatabase(schema_, "A(s,u)")));
}

TEST_F(PathQueryTest, RpqExpandToUcq) {
  RpqPtr q = Rpq("A | B C", "s", "t");
  UcqPtr ucq = q->ExpandToUcq(2);
  EXPECT_EQ(ucq->disjuncts().size(), 2u);
  Database d1 = ParseDatabase(schema_, "A(s,t)");
  Database d2 = ParseDatabase(schema_, "B(s,m) C(m,t)");
  Database d3 = ParseDatabase(schema_, "B(s,m) C(u,t)");
  EXPECT_EQ(q->Evaluate(d1), ucq->Evaluate(d1));
  EXPECT_EQ(q->Evaluate(d2), ucq->Evaluate(d2));
  EXPECT_EQ(q->Evaluate(d3), ucq->Evaluate(d3));
  EXPECT_TRUE(ucq->Evaluate(d2));
  EXPECT_FALSE(ucq->Evaluate(d3));
}

TEST_F(PathQueryTest, RpqExpansionEpsilonDisjunct) {
  RpqPtr same = Rpq("A?", "s", "s");
  UcqPtr ucq = same->ExpandToUcq(1);
  // Contains the always-true empty disjunct.
  EXPECT_TRUE(ucq->Evaluate(ParseDatabase(schema_, "")));
}

TEST_F(PathQueryTest, CrpqJoinOnVariable) {
  // [A](x,y) ∧ [B](y,c): some A-edge into a node with a B-edge to c.
  std::vector<PathAtom> atoms;
  atoms.push_back({Regex::Parse("A"), Term(Variable::Named("x")),
                   Term(Variable::Named("y"))});
  atoms.push_back({Regex::Parse("B"), Term(Variable::Named("y")),
                   Term(Constant::Named("c"))});
  CrpqPtr q = ConjunctiveRegularPathQuery::Create(schema_, std::move(atoms));
  EXPECT_TRUE(q->Evaluate(ParseDatabase(schema_, "A(u,m) B(m,c)")));
  EXPECT_FALSE(q->Evaluate(ParseDatabase(schema_, "A(u,m) B(n,c)")));
  EXPECT_EQ(q->Variables().size(), 2u);
  EXPECT_TRUE(q->IsSelfJoinFree());
}

TEST_F(PathQueryTest, CrpqSelfJoinDetection) {
  std::vector<PathAtom> atoms;
  atoms.push_back({Regex::Parse("A B"), Term(Variable::Named("x")),
                   Term(Variable::Named("y"))});
  atoms.push_back({Regex::Parse("B C"), Term(Variable::Named("y")),
                   Term(Variable::Named("z"))});
  CrpqPtr q = ConjunctiveRegularPathQuery::Create(schema_, std::move(atoms));
  EXPECT_FALSE(q->IsSelfJoinFree());
}

TEST_F(PathQueryTest, CrpqExpandToUcqMatchesSemantics) {
  std::vector<PathAtom> atoms;
  atoms.push_back({Regex::Parse("A | B"), Term(Variable::Named("x")),
                   Term(Constant::Named("d"))});
  CrpqPtr q = ConjunctiveRegularPathQuery::Create(schema_, std::move(atoms));
  UcqPtr ucq = q->ExpandToUcq(1);
  EXPECT_EQ(ucq->disjuncts().size(), 2u);
  for (const char* db_text : {"A(u,d)", "B(u,d)", "A(d,u)", ""}) {
    Database db = ParseDatabase(schema_, db_text);
    EXPECT_EQ(q->Evaluate(db), ucq->Evaluate(db)) << db_text;
  }
}

TEST_F(PathQueryTest, UnionCrpqEvaluation) {
  std::vector<PathAtom> a1, a2;
  a1.push_back({Regex::Parse("A"), Term(Constant::Named("s")),
                Term(Variable::Named("x"))});
  a2.push_back({Regex::Parse("B"), Term(Constant::Named("s")),
                Term(Variable::Named("x"))});
  UcrpqPtr q = UnionCrpq::Create(
      {ConjunctiveRegularPathQuery::Create(schema_, std::move(a1)),
       ConjunctiveRegularPathQuery::Create(schema_, std::move(a2))});
  EXPECT_TRUE(q->Evaluate(ParseDatabase(schema_, "A(s,u)")));
  EXPECT_TRUE(q->Evaluate(ParseDatabase(schema_, "B(s,u)")));
  EXPECT_FALSE(q->Evaluate(ParseDatabase(schema_, "A(u,s)")));
}

TEST_F(PathQueryTest, PaperLeakExampleQuery) {
  // q = ∃x [AB + BA](x, a): satisfied by {A(b,d), B(d,a)}.
  std::vector<PathAtom> atoms;
  atoms.push_back({Regex::Parse("A B | B A"), Term(Variable::Named("x")),
                   Term(Constant::Named("a"))});
  CrpqPtr q = ConjunctiveRegularPathQuery::Create(schema_, std::move(atoms));
  EXPECT_TRUE(q->Evaluate(ParseDatabase(schema_, "A(b,d) B(d,a)")));
  EXPECT_TRUE(q->Evaluate(ParseDatabase(schema_, "B(b,d) A(d,a)")));
  EXPECT_FALSE(q->Evaluate(ParseDatabase(schema_, "A(b,d) B(a,d)")));
}

}  // namespace
}  // namespace shapley
