#include "shapley/query/answers.h"

#include <gtest/gtest.h>

#include "shapley/data/parser.h"
#include "shapley/engines/svc.h"
#include "shapley/query/query_parser.h"

namespace shapley {
namespace {

class AnswersTest : public ::testing::Test {
 protected:
  AnswersTest() : schema_(Schema::Create()) {}
  std::shared_ptr<Schema> schema_;
};

TEST_F(AnswersTest, EnumerateAnswersProjectsHomomorphisms) {
  CqPtr q = ParseCq(schema_, "R(x,y), S(y)");
  Database db = ParseDatabase(schema_, "R(a,b) R(c,b) R(a,d) S(b)");
  auto answers =
      EnumerateAnswers(*q, {Variable::Named("x")}, db);
  // x ∈ {a, c} (only y = b has S(b)).
  ASSERT_EQ(answers.size(), 2u);
  EXPECT_EQ(answers[0][0], Constant::Named("a"));
  EXPECT_EQ(answers[1][0], Constant::Named("c"));
}

TEST_F(AnswersTest, TwoFreeVariables) {
  CqPtr q = ParseCq(schema_, "R(x,y)");
  Database db = ParseDatabase(schema_, "R(a,b) R(c,d)");
  auto answers = EnumerateAnswers(
      *q, {Variable::Named("x"), Variable::Named("y")}, db);
  EXPECT_EQ(answers.size(), 2u);
}

TEST_F(AnswersTest, NegationBlocksAnswers) {
  CqPtr q = ParseCq(schema_, "A(x), !B(x)");
  Database db = ParseDatabase(schema_, "A(a) A(c) B(a)");
  auto answers = EnumerateAnswers(*q, {Variable::Named("x")}, db);
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_EQ(answers[0][0], Constant::Named("c"));
}

TEST_F(AnswersTest, UnknownFreeVariableThrows) {
  CqPtr q = ParseCq(schema_, "R(x,y)");
  Database db = ParseDatabase(schema_, "R(a,b)");
  EXPECT_THROW(EnumerateAnswers(*q, {Variable::Named("z")}, db),
               std::invalid_argument);
  EXPECT_THROW(BooleanizeForAnswer(*q, {Variable::Named("z")},
                                   {Constant::Named("a")}),
               std::invalid_argument);
}

TEST_F(AnswersTest, BooleanizeSubstitutesAnswerConstants) {
  CqPtr q = ParseCq(schema_, "R(x,y), S(y)");
  CqPtr boolq = BooleanizeForAnswer(*q, {Variable::Named("x")},
                                    {Constant::Named("a")});
  // The Booleanized query now carries the constant 'a' (Remark 3.1: this
  // is why constants in queries matter).
  EXPECT_EQ(boolq->QueryConstants().size(), 1u);
  EXPECT_TRUE(boolq->Evaluate(ParseDatabase(schema_, "R(a,b) S(b)")));
  EXPECT_FALSE(boolq->Evaluate(ParseDatabase(schema_, "R(c,b) S(b)")));
}

TEST_F(AnswersTest, ArityMismatchThrows) {
  CqPtr q = ParseCq(schema_, "R(x,y)");
  EXPECT_THROW(
      BooleanizeForAnswer(*q, {Variable::Named("x")},
                          {Constant::Named("a"), Constant::Named("b")}),
      std::invalid_argument);
}

TEST_F(AnswersTest, PerAnswerShapleyValues) {
  // Remark 3.1 end to end: the contribution of a fact differs per answer.
  CqPtr q = ParseCq(schema_, "R(x,y), S(y)");
  PartitionedDatabase db =
      ParsePartitionedDatabase(schema_, "R(a,b) R(c,b) S(b)");
  BruteForceSvc svc;
  Fact ra = ParseFact(schema_, "R(a,b)");

  CqPtr for_a = BooleanizeForAnswer(*q, {Variable::Named("x")},
                                    {Constant::Named("a")});
  CqPtr for_c = BooleanizeForAnswer(*q, {Variable::Named("x")},
                                    {Constant::Named("c")});
  // R(a,b) is essential for answer a, useless for answer c.
  EXPECT_GT(svc.Value(*for_a, db, ra), BigRational(0));
  EXPECT_EQ(svc.Value(*for_c, db, ra), BigRational(0));
}

}  // namespace
}  // namespace shapley
