#include "shapley/query/conjunctive_query.h"

#include <gtest/gtest.h>

#include "shapley/data/parser.h"
#include "shapley/query/conjunction_query.h"
#include "shapley/query/query_parser.h"
#include "shapley/query/union_query.h"

namespace shapley {
namespace {

class CqTest : public ::testing::Test {
 protected:
  CqTest() : schema_(Schema::Create()) {}
  std::shared_ptr<Schema> schema_;
};

TEST_F(CqTest, ParserTermConvention) {
  CqPtr q = ParseCq(schema_, "R(x, a), S(a, y1)");
  ASSERT_EQ(q->atoms().size(), 2u);
  EXPECT_TRUE(q->atoms()[0].terms()[0].IsVariable());
  EXPECT_TRUE(q->atoms()[0].terms()[1].IsConstant());
  EXPECT_TRUE(q->atoms()[1].terms()[1].IsVariable());
  EXPECT_EQ(q->Variables().size(), 2u);
  EXPECT_EQ(q->QueryConstants().size(), 1u);
}

TEST_F(CqTest, ParserForcedMarkers) {
  CqPtr q = ParseCq(schema_, "R(?a, $x)");
  EXPECT_TRUE(q->atoms()[0].terms()[0].IsVariable());
  EXPECT_EQ(q->atoms()[0].terms()[0].variable().name(), "a");
  EXPECT_TRUE(q->atoms()[0].terms()[1].IsConstant());
  EXPECT_EQ(q->atoms()[0].terms()[1].constant().name(), "x");
}

TEST_F(CqTest, EvaluateSimpleJoin) {
  CqPtr q = ParseCq(schema_, "R(x,y), S(y)");
  EXPECT_TRUE(q->Evaluate(ParseDatabase(schema_, "R(a,b) S(b)")));
  EXPECT_FALSE(q->Evaluate(ParseDatabase(schema_, "R(a,b) S(a)")));
  EXPECT_FALSE(q->Evaluate(ParseDatabase(schema_, "R(a,b)")));
}

TEST_F(CqTest, EvaluateWithConstants) {
  CqPtr q = ParseCq(schema_, "R(a, x)");
  EXPECT_TRUE(q->Evaluate(ParseDatabase(schema_, "R(a,b)")));
  EXPECT_FALSE(q->Evaluate(ParseDatabase(schema_, "R(b,a)")));
}

TEST_F(CqTest, EvaluateSelfJoinAndRepeatedVariable) {
  CqPtr loop = ParseCq(schema_, "E(x,x)");
  EXPECT_TRUE(loop->Evaluate(ParseDatabase(schema_, "E(a,a)")));
  EXPECT_FALSE(loop->Evaluate(ParseDatabase(schema_, "E(a,b) E(b,a)")));

  CqPtr two_step = ParseCq(schema_, "E(x,y), E(y,z)");
  EXPECT_TRUE(two_step->Evaluate(ParseDatabase(schema_, "E(a,b) E(b,c)")));
  EXPECT_TRUE(two_step->Evaluate(ParseDatabase(schema_, "E(a,a)")));
  EXPECT_FALSE(two_step->Evaluate(ParseDatabase(schema_, "E(a,b) E(c,d)")));
}

TEST_F(CqTest, EmptyQueryIsTrue) {
  CqPtr top = ConjunctiveQuery::Create(schema_, {});
  EXPECT_TRUE(top->Evaluate(ParseDatabase(schema_, "")));
}

TEST_F(CqTest, NegationSafeAndEvaluated) {
  CqPtr q = ParseCq(schema_, "A(x), !S(x,y), B(y)");
  EXPECT_TRUE(q->HasNegation());
  EXPECT_FALSE(q->IsMonotone());
  // A(a), B(b), no S(a,b): satisfied.
  EXPECT_TRUE(q->Evaluate(ParseDatabase(schema_, "A(a) B(b)")));
  // S(a,b) blocks the only match.
  EXPECT_FALSE(q->Evaluate(ParseDatabase(schema_, "A(a) B(b) S(a,b)")));
  // Another b' escapes the block.
  EXPECT_TRUE(q->Evaluate(ParseDatabase(schema_, "A(a) B(b) B(c) S(a,b)")));
}

TEST_F(CqTest, UnsafeNegationRejected) {
  EXPECT_THROW(ParseCq(schema_, "A(x), !S(x,y)"), std::invalid_argument);
}

TEST_F(CqTest, SubstituteReplacesVariable) {
  CqPtr q = ParseCq(schema_, "R(x,y), S(y)");
  CqPtr q2 = q->Substitute(Variable::Named("y"), Constant::Named("k"));
  EXPECT_TRUE(q2->Evaluate(ParseDatabase(schema_, "R(a,k) S(k)")));
  EXPECT_FALSE(q2->Evaluate(ParseDatabase(schema_, "R(a,b) S(b)")));
  EXPECT_EQ(q2->Variables().size(), 1u);
}

TEST_F(CqTest, FreezeProducesCanonicalDatabase) {
  CqPtr q = ParseCq(schema_, "R(x,y), S(y,c0)");
  Assignment frozen;
  Database db = q->Freeze(&frozen);
  EXPECT_EQ(db.size(), 2u);
  EXPECT_TRUE(q->Evaluate(db));
  EXPECT_EQ(frozen.size(), 2u);
  // The query constant survives verbatim.
  EXPECT_TRUE(db.Constants().count(Constant::Named("c0")));
}

TEST_F(CqTest, UnionQueryEvaluation) {
  UcqPtr q = ParseUcq(schema_, "R(x,x) | S(x), T(x)");
  EXPECT_TRUE(q->Evaluate(ParseDatabase(schema_, "R(a,a)")));
  EXPECT_TRUE(q->Evaluate(ParseDatabase(schema_, "S(b) T(b)")));
  EXPECT_FALSE(q->Evaluate(ParseDatabase(schema_, "S(b) T(c)")));
  EXPECT_EQ(q->disjuncts().size(), 2u);
  EXPECT_TRUE(q->IsConstantFree());
  EXPECT_TRUE(q->IsPositive());
}

TEST_F(CqTest, ConjunctionQueryEvaluation) {
  QueryPtr q = ConjunctionQuery::Create(ParseCq(schema_, "R(x,x)"),
                                        ParseCq(schema_, "S(y)"));
  EXPECT_TRUE(q->Evaluate(ParseDatabase(schema_, "R(a,a) S(b)")));
  EXPECT_FALSE(q->Evaluate(ParseDatabase(schema_, "R(a,a)")));
  EXPECT_FALSE(q->Evaluate(ParseDatabase(schema_, "S(b)")));
}

TEST_F(CqTest, ParserErrors) {
  EXPECT_THROW(ParseCq(schema_, ""), std::invalid_argument);
  EXPECT_THROW(ParseCq(schema_, "R(x,y) | S(x)"), std::invalid_argument);
  EXPECT_THROW(ParseCq(schema_, "R(x"), std::invalid_argument);
  EXPECT_THROW(ParseUcq(schema_, "R(x,y) |"), std::invalid_argument);
}

TEST_F(CqTest, ToStringRoundTripReadable) {
  CqPtr q = ParseCq(schema_, "R(x,a), !S(x,x)");
  EXPECT_NE(q->ToString().find("R(x,a)"), std::string::npos);
  EXPECT_NE(q->ToString().find("¬S(x,x)"), std::string::npos);
}

}  // namespace
}  // namespace shapley
