#include "shapley/query/supports.h"

#include <gtest/gtest.h>

#include "shapley/data/parser.h"
#include "shapley/query/conjunction_query.h"
#include "shapley/query/query_parser.h"

namespace shapley {
namespace {

class SupportsTest : public ::testing::Test {
 protected:
  SupportsTest() : schema_(Schema::Create()) {}
  std::shared_ptr<Schema> schema_;
};

TEST_F(SupportsTest, ShrinkFindsMinimalSupport) {
  CqPtr q = ParseCq(schema_, "R(x,y), S(y)");
  Database db = ParseDatabase(schema_, "R(a,b) S(b) R(c,d) S(d) T(e)");
  Database minimal = ShrinkToMinimalSupport(*q, db);
  EXPECT_EQ(minimal.size(), 2u);
  EXPECT_TRUE(IsMinimalSupport(*q, minimal));
  EXPECT_TRUE(q->Evaluate(minimal));
}

TEST_F(SupportsTest, ShrinkThrowsOnNonMonotone) {
  CqPtr q = ParseCq(schema_, "A(x), !B(x)");
  EXPECT_THROW(ShrinkToMinimalSupport(*q, ParseDatabase(schema_, "A(a)")),
               std::invalid_argument);
}

TEST_F(SupportsTest, EnumerateMinimalSupportsCq) {
  CqPtr q = ParseCq(schema_, "R(x,y), S(y)");
  Database db = ParseDatabase(schema_, "R(a,b) S(b) R(c,b) S(d)");
  auto supports = EnumerateMinimalSupports(*q, db);
  // {R(a,b),S(b)} and {R(c,b),S(b)}.
  EXPECT_EQ(supports.size(), 2u);
  for (const Database& s : supports) {
    EXPECT_TRUE(IsMinimalSupport(*q, s));
    EXPECT_TRUE(s.IsSubsetOf(db));
  }
}

TEST_F(SupportsTest, EnumerateHandlesRedundantQueries) {
  // Non-core query: R(x,y) ∧ R(u,v); its minimal supports are single facts.
  CqPtr q = ParseCq(schema_, "R(x,y), R(u,v)");
  Database db = ParseDatabase(schema_, "R(a,b) R(c,d)");
  auto supports = EnumerateMinimalSupports(*q, db);
  EXPECT_EQ(supports.size(), 2u);
  for (const Database& s : supports) EXPECT_EQ(s.size(), 1u);
}

TEST_F(SupportsTest, EnumerateUcqTakesMinimalAcrossDisjuncts) {
  UcqPtr q = ParseUcq(schema_, "R(x,y), S(y) | S(x)");
  Database db = ParseDatabase(schema_, "R(a,b) S(b)");
  auto supports = EnumerateMinimalSupports(*q, db);
  // S(b) alone satisfies the second disjunct; the join support is subsumed.
  ASSERT_EQ(supports.size(), 1u);
  EXPECT_EQ(supports[0].size(), 1u);
}

TEST_F(SupportsTest, EnumerateRpqPathSupports) {
  RpqPtr q = RegularPathQuery::Create(schema_, Regex::Parse("A A"),
                                      Constant::Named("s"),
                                      Constant::Named("t"));
  Database db =
      ParseDatabase(schema_, "A(s,m1) A(m1,t) A(s,m2) A(m2,t) A(s,t)");
  auto supports = EnumerateMinimalSupports(*q, db);
  // Two two-edge paths; A(s,t) alone is not a support of AA... unless the
  // walk uses it twice — s→t then t→? no A(t,.) — so exactly 2.
  EXPECT_EQ(supports.size(), 2u);
  for (const Database& s : supports) {
    EXPECT_EQ(s.size(), 2u);
    EXPECT_TRUE(IsMinimalSupport(*q, s));
  }
}

TEST_F(SupportsTest, EnumerateRpqSelfLoopReuse) {
  // A self-loop supports AA with a single edge.
  RpqPtr q = RegularPathQuery::Create(schema_, Regex::Parse("A A"),
                                      Constant::Named("s"),
                                      Constant::Named("s"));
  Database db = ParseDatabase(schema_, "A(s,s) A(s,u) A(u,s)");
  auto supports = EnumerateMinimalSupports(*q, db);
  // {A(s,s)} (the loop walked twice) and {A(s,u), A(u,s)}.
  ASSERT_EQ(supports.size(), 2u);
  EXPECT_EQ(supports[0].size(), 1u);
  EXPECT_EQ(supports[1].size(), 2u);
  for (const Database& s : supports) EXPECT_TRUE(IsMinimalSupport(*q, s));
}

TEST_F(SupportsTest, EnumerateConjunction) {
  QueryPtr q = ConjunctionQuery::Create(ParseCq(schema_, "P(x)"),
                                        ParseCq(schema_, "Q(y)"));
  Database db = ParseDatabase(schema_, "P(a) P(b) Q(c)");
  auto supports = EnumerateMinimalSupports(*q, db);
  EXPECT_EQ(supports.size(), 2u);
  for (const Database& s : supports) EXPECT_EQ(s.size(), 2u);
}

TEST_F(SupportsTest, CoreRemovesRedundantAtoms) {
  CqPtr q = ParseCq(schema_, "R(x,y), R(u,v)");
  CqPtr core = CoreOfCq(*q);
  EXPECT_EQ(core->atoms().size(), 1u);

  // Non-redundant: R(x,y), S(y,x) stays intact.
  CqPtr q2 = ParseCq(schema_, "R(x,y), S(y,x)");
  EXPECT_EQ(CoreOfCq(*q2)->atoms().size(), 2u);

  // Triangle-with-tail folds: R(x,y), R(y,z) is a core (no fold possible).
  CqPtr q3 = ParseCq(schema_, "R(x,y), R(y,z)");
  EXPECT_EQ(CoreOfCq(*q3)->atoms().size(), 2u);

  // R(x,y), R(x,x): hom mapping y -> x collapses it to R(x,x).
  CqPtr q4 = ParseCq(schema_, "R(x,y), R(x,x)");
  EXPECT_EQ(CoreOfCq(*q4)->atoms().size(), 1u);
}

TEST_F(SupportsTest, CoreRespectsConstants) {
  // R(x,a) and R(x,b) cannot collapse (constants fixed).
  CqPtr q = ParseCq(schema_, "R(x,a), R(y,b)");
  EXPECT_EQ(CoreOfCq(*q)->atoms().size(), 2u);
}

TEST_F(SupportsTest, CanonicalSupportCqIsMinimal) {
  CqPtr q = ParseCq(schema_, "R(x,y), R(u,v), S(y)");
  auto supports = CanonicalMinimalSupports(*q);
  ASSERT_EQ(supports.size(), 1u);
  EXPECT_TRUE(IsMinimalSupport(*q, supports[0]));
  EXPECT_EQ(supports[0].size(), 2u);  // Core is R(x,y), S(y).
}

TEST_F(SupportsTest, CanonicalSupportsUcqOnePerDisjunct) {
  UcqPtr q = ParseUcq(schema_, "R(x,x) | S(x,y)");
  auto supports = CanonicalMinimalSupports(*q);
  EXPECT_EQ(supports.size(), 2u);
  for (const Database& s : supports) {
    EXPECT_TRUE(IsMinimalSupport(*q, s));
  }
}

TEST_F(SupportsTest, CanonicalSupportRpqShortestPath) {
  RpqPtr q = RegularPathQuery::Create(schema_, Regex::Parse("A B | A A A"),
                                      Constant::Named("s"),
                                      Constant::Named("t"));
  auto supports = CanonicalMinimalSupports(*q);
  ASSERT_EQ(supports.size(), 1u);
  EXPECT_EQ(supports[0].size(), 2u);
  EXPECT_TRUE(q->Evaluate(supports[0]));
  EXPECT_TRUE(IsMinimalSupport(*q, supports[0]));
}

TEST_F(SupportsTest, CanonicalRpqSupportWithLengthConstraint) {
  RpqPtr q = RegularPathQuery::Create(schema_, Regex::Parse("A | B B B"),
                                      Constant::Named("s"),
                                      Constant::Named("t"));
  auto support = CanonicalRpqSupport(*q, 2);
  ASSERT_TRUE(support.has_value());
  EXPECT_EQ(support->size(), 3u);  // Forced to take the BBB branch.
  EXPECT_TRUE(IsMinimalSupport(*q, *support));
  EXPECT_FALSE(CanonicalRpqSupport(*q, 4).has_value());
}

TEST_F(SupportsTest, CanonicalSupportCrpq) {
  std::vector<PathAtom> atoms;
  atoms.push_back({Regex::Parse("A B"), Term(Variable::Named("x")),
                   Term(Constant::Named("a"))});
  CrpqPtr q = ConjunctiveRegularPathQuery::Create(schema_, std::move(atoms));
  auto supports = CanonicalMinimalSupports(*q);
  ASSERT_EQ(supports.size(), 1u);
  EXPECT_EQ(supports[0].size(), 2u);
  EXPECT_TRUE(IsMinimalSupport(*q, supports[0]));
}

TEST_F(SupportsTest, MinimalSupportRejection) {
  CqPtr q = ParseCq(schema_, "R(x,y)");
  EXPECT_FALSE(IsMinimalSupport(*q, ParseDatabase(schema_, "R(a,b) R(c,d)")));
  EXPECT_FALSE(IsMinimalSupport(*q, ParseDatabase(schema_, "S(a)")));
  EXPECT_TRUE(IsMinimalSupport(*q, ParseDatabase(schema_, "R(a,b)")));
}

}  // namespace
}  // namespace shapley
