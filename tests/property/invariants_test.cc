// Cross-cutting invariants of the problem family, swept over random
// instances:
//  * counting monotonicity: promoting a fact from endogenous to exogenous
//    can only help a monotone query (GMC of the rest cannot drop);
//  * Shapley values of monotone-query games lie in [0, 1];
//  * the interpolation stack composed with the lifted engine stays exact
//    (a fully polynomial FGMC pipeline through probabilities);
//  * bounded RPQs counted through their UCQ expansion match direct counting.

#include <gtest/gtest.h>

#include "shapley/data/parser.h"
#include "shapley/engines/fgmc.h"
#include "shapley/engines/pqe.h"
#include "shapley/engines/svc.h"
#include "shapley/gen/generators.h"
#include "shapley/query/path_query.h"
#include "shapley/query/query_parser.h"
#include "shapley/reductions/interpolation.h"

namespace shapley {
namespace {

TEST(InvariantsTest, ExogenousPromotionOnlyHelpsMonotoneQueries) {
  auto schema = Schema::Create();
  UcqPtr q = ParseUcq(schema, "R(x), S(x,y) | T(y)");
  BruteForceFgmc fgmc;
  for (uint64_t seed = 0; seed < 10; ++seed) {
    RandomDatabaseOptions options;
    options.num_facts = 7;
    options.domain_size = 3;
    options.exogenous_fraction = 0.0;
    options.seed = seed + 777;
    PartitionedDatabase db = RandomPartitionedDatabase(schema, options);
    if (db.NumEndogenous() == 0) continue;

    Fact promoted = db.endogenous().facts().front();
    PartitionedDatabase with_fact = db.WithFactMadeExogenous(promoted);
    PartitionedDatabase without_fact = db.WithEndogenousFactRemoved(promoted);
    Polynomial helped = fgmc.CountBySize(*q, with_fact);
    Polynomial alone = fgmc.CountBySize(*q, without_fact);
    // Per size j, every generalized support without the fact stays one with
    // it (monotonicity): helped >= alone coefficient-wise.
    for (size_t j = 0; j <= db.NumEndogenous(); ++j) {
      EXPECT_GE(helped.Coefficient(j), alone.Coefficient(j))
          << "seed " << seed << " size " << j;
    }
  }
}

TEST(InvariantsTest, MonotoneShapleyValuesLieInUnitInterval) {
  auto schema = Schema::Create();
  CqPtr q = ParseCq(schema, "R(x), S(x,y), T(y)");
  BruteForceSvc svc;
  for (uint64_t seed = 0; seed < 10; ++seed) {
    RandomDatabaseOptions options;
    options.num_facts = 6;
    options.domain_size = 3;
    options.exogenous_fraction = 0.3;
    options.seed = seed + 888;
    PartitionedDatabase db = RandomPartitionedDatabase(schema, options);
    for (const auto& [fact, value] : svc.AllValues(*q, db)) {
      EXPECT_GE(value, BigRational(0)) << "seed " << seed;
      EXPECT_LE(value, BigRational(1)) << "seed " << seed;
    }
  }
}

TEST(InvariantsTest, FullyPolynomialPipelineThroughProbabilities) {
  // Lifted PQE (polynomial) -> interpolation (polynomial) = polynomial
  // FGMC; must equal the lifted counting engine exactly.
  auto schema = Schema::Create();
  CqPtr q = ParseCq(schema, "R(a,x), S(x,y)");
  InterpolationFgmc via_probability(std::make_shared<LiftedPqe>());
  LiftedFgmc direct;
  for (uint64_t seed = 0; seed < 8; ++seed) {
    RandomDatabaseOptions options;
    options.num_facts = 8;
    options.domain_size = 3;
    options.exogenous_fraction = 0.25;
    options.seed = seed + 999;
    PartitionedDatabase db = RandomPartitionedDatabase(schema, options);
    db.AddEndogenous(Fact(*schema->FindRelation("R"),
                          {Constant::Named("a"), Constant::Named("c0")}));
    EXPECT_EQ(via_probability.CountBySize(*q, db), direct.CountBySize(*q, db))
        << "seed " << seed;
  }
}

TEST(InvariantsTest, BoundedRpqExpansionCountsExactly) {
  // A bounded RPQ (words <= 2) expanded to a UCQ must count identically to
  // the RPQ itself — the tractable side of Corollary 4.3 in practice.
  auto schema = Schema::Create();
  RpqPtr q = RegularPathQuery::Create(schema, Regex::Parse("A | B C"),
                                      Constant::Named("v0"),
                                      Constant::Named("v1"));
  UcqPtr expanded = q->ExpandToUcq(2);
  BruteForceFgmc brute;
  LineageFgmc lineage;
  for (uint64_t seed = 0; seed < 6; ++seed) {
    Database graph = RandomGraph(schema, {"A", "B", "C"}, 3, 0.3, seed + 50);
    PartitionedDatabase db = PartitionedDatabase::AllEndogenous(graph);
    if (db.NumEndogenous() > 14) continue;
    Polynomial direct = brute.CountBySize(*q, db);
    EXPECT_EQ(brute.CountBySize(*expanded, db), direct) << "seed " << seed;
    EXPECT_EQ(lineage.CountBySize(*expanded, db), direct) << "seed " << seed;
  }
}

TEST(InvariantsTest, SvcInvariantUnderFactOrder) {
  // Shapley values must not depend on the (internal) order of facts:
  // rebuild the database with facts inserted in reverse and compare.
  auto schema = Schema::Create();
  CqPtr q = ParseCq(schema, "R(x,y), S(y)");
  PartitionedDatabase db =
      ParsePartitionedDatabase(schema, "R(a,b) R(c,b) S(b) | R(d,e)");
  Database endo_reversed(schema);
  const auto& facts = db.endogenous().facts();
  for (auto it = facts.rbegin(); it != facts.rend(); ++it) {
    endo_reversed.Insert(*it);
  }
  PartitionedDatabase reversed(endo_reversed, db.exogenous());
  BruteForceSvc svc;
  for (const Fact& f : facts) {
    EXPECT_EQ(svc.Value(*q, db, f), svc.Value(*q, reversed, f));
  }
}

}  // namespace
}  // namespace shapley
