// Property sweep: all counting/probability/Shapley engines must agree on
// random instances, across a grid of query classes. Parameterized gtest:
// one instantiation per (query, seed block).

#include <random>

#include <gtest/gtest.h>

#include "shapley/engines/fgmc.h"
#include "shapley/engines/pqe.h"
#include "shapley/engines/svc.h"
#include "shapley/exec/batch_runner.h"
#include "shapley/exec/oracle_cache.h"
#include "shapley/exec/thread_pool.h"
#include "shapley/gen/generators.h"
#include "shapley/query/query_parser.h"
#include "shapley/reductions/interpolation.h"

namespace shapley {
namespace {

struct AgreementCase {
  const char* label;
  const char* query;        // Parsed as UCQ ('|' allowed).
  bool lifted_applicable;   // Hierarchical sjf single-disjunct CQ.
  bool monotone;
};

class EngineAgreementTest : public ::testing::TestWithParam<AgreementCase> {
 protected:
  static QueryPtr Parse(const std::shared_ptr<Schema>& schema,
                        const AgreementCase& c) {
    UcqPtr ucq = ParseUcq(schema, c.query);
    if (ucq->disjuncts().size() == 1) return ucq->disjuncts()[0];
    return ucq;
  }
};

TEST_P(EngineAgreementTest, FgmcEnginesAgree) {
  const AgreementCase& c = GetParam();
  auto schema = Schema::Create();
  QueryPtr q = Parse(schema, c);

  BruteForceFgmc brute;
  LineageFgmc lineage;
  LiftedFgmc lifted;
  InterpolationFgmc interpolation(std::make_shared<BruteForcePqe>());

  for (uint64_t seed = 0; seed < 6; ++seed) {
    RandomDatabaseOptions options;
    options.num_facts = 7;
    options.domain_size = 3;
    options.exogenous_fraction = 0.25;
    options.seed = seed * 31 + 7;
    PartitionedDatabase db = RandomPartitionedDatabase(schema, options);

    Polynomial expected = brute.CountBySize(*q, db);
    if (c.monotone) {
      EXPECT_EQ(lineage.CountBySize(*q, db), expected)
          << c.label << " seed " << seed;
      EXPECT_EQ(interpolation.CountBySize(*q, db), expected)
          << c.label << " seed " << seed;
    }
    if (c.lifted_applicable) {
      EXPECT_EQ(lifted.CountBySize(*q, db), expected)
          << c.label << " seed " << seed;
    }
  }
}

TEST_P(EngineAgreementTest, SvcEnginesAgree) {
  const AgreementCase& c = GetParam();
  auto schema = Schema::Create();
  QueryPtr q = Parse(schema, c);

  BruteForceSvc brute;
  SvcViaFgmc via_brute_fgmc(std::make_shared<BruteForceFgmc>());

  for (uint64_t seed = 0; seed < 4; ++seed) {
    RandomDatabaseOptions options;
    options.num_facts = 6;
    options.domain_size = 3;
    options.exogenous_fraction = 0.2;
    options.seed = seed * 17 + 3;
    PartitionedDatabase db = RandomPartitionedDatabase(schema, options);
    for (const Fact& f : db.endogenous().facts()) {
      BigRational expected = brute.Value(*q, db, f);
      EXPECT_EQ(via_brute_fgmc.Value(*q, db, f), expected)
          << c.label << " seed " << seed;
      if (c.lifted_applicable) {
        SvcViaFgmc via_lifted(std::make_shared<LiftedFgmc>());
        EXPECT_EQ(via_lifted.Value(*q, db, f), expected)
            << c.label << " seed " << seed;
      }
    }
  }
}

// The exec runtime must be invisible in the values: AllValues through a
// thread pool and a shared oracle cache is bit-identical to the serial
// per-fact brute-force and permutation oracles.
TEST_P(EngineAgreementTest, ParallelBatchAgreesWithSequentialOracles) {
  const AgreementCase& c = GetParam();
  auto schema = Schema::Create();
  QueryPtr q = Parse(schema, c);

  ThreadPool pool(3);
  OracleCache cache;
  ExecContext context{&pool, &cache};

  BruteForceSvc parallel_brute;
  parallel_brute.set_exec_context(context);
  SvcViaFgmc parallel_via_fgmc(std::make_shared<BruteForceFgmc>());
  parallel_via_fgmc.set_exec_context(context);

  BruteForceSvc serial_brute;
  PermutationSvc permutations;

  for (uint64_t seed = 0; seed < 4; ++seed) {
    RandomDatabaseOptions options;
    options.num_facts = 6;
    options.domain_size = 3;
    options.exogenous_fraction = 0.2;
    options.seed = seed * 17 + 3;
    PartitionedDatabase db = RandomPartitionedDatabase(schema, options);

    std::map<Fact, BigRational> batched = parallel_brute.AllValues(*q, db);
    std::map<Fact, BigRational> batched_fgmc =
        parallel_via_fgmc.AllValues(*q, db);
    ASSERT_EQ(batched.size(), db.NumEndogenous());
    for (const Fact& f : db.endogenous().facts()) {
      BigRational expected = serial_brute.Value(*q, db, f);
      EXPECT_EQ(batched.at(f), expected) << c.label << " seed " << seed;
      EXPECT_EQ(batched_fgmc.at(f), expected) << c.label << " seed " << seed;
      if (db.NumEndogenous() <= 8) {
        EXPECT_EQ(permutations.Value(*q, db, f), expected)
            << c.label << " seed " << seed;
      }
    }
  }
}

TEST_P(EngineAgreementTest, PqeEnginesAgree) {
  const AgreementCase& c = GetParam();
  if (!c.monotone) GTEST_SKIP() << "lineage PQE requires monotone queries";
  auto schema = Schema::Create();
  QueryPtr q = Parse(schema, c);

  BruteForcePqe brute;
  LineagePqe lineage;
  FgmcBackedSppqe sppqe(std::make_shared<BruteForceFgmc>());

  std::mt19937_64 rng(5);
  for (uint64_t seed = 0; seed < 4; ++seed) {
    RandomDatabaseOptions options;
    options.num_facts = 6;
    options.domain_size = 3;
    options.exogenous_fraction = 0.2;
    options.seed = seed * 13 + 11;
    PartitionedDatabase pdb = RandomPartitionedDatabase(schema, options);

    // Arbitrary per-fact probabilities for brute vs lineage.
    ProbabilisticDatabase mixed(schema);
    for (const Fact& f : pdb.endogenous().facts()) {
      mixed.AddFact(f, BigRational(BigInt(1 + static_cast<int64_t>(rng() % 7)),
                                   BigInt(8)));
    }
    for (const Fact& f : pdb.exogenous().facts()) {
      mixed.AddFact(f, BigRational(1));
    }
    EXPECT_EQ(lineage.Probability(*q, mixed), brute.Probability(*q, mixed))
        << c.label << " seed " << seed;

    // SPPQE shape for the counting-backed engine.
    ProbabilisticDatabase sp = ProbabilisticDatabase::FromPartitioned(
        pdb, BigRational(BigInt(2), BigInt(5)));
    EXPECT_EQ(sppqe.Probability(*q, sp), brute.Probability(*q, sp))
        << c.label << " seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    QueryGrid, EngineAgreementTest,
    ::testing::Values(
        AgreementCase{"single_atom", "R(x,y)", true, true},
        AgreementCase{"ground_atom", "R(a,b)", true, true},
        AgreementCase{"hierarchical_join", "R(x), S(x,y)", true, true},
        AgreementCase{"hierarchical_with_constant", "R(a,x), S(x)", true, true},
        AgreementCase{"rst_hard", "R(x), S(x,y), T(y)", false, true},
        AgreementCase{"self_join_chain", "R(x,y), R(y,z)", false, true},
        AgreementCase{"triangle", "R(x,y), S(y,z), T(z,x)", false, true},
        AgreementCase{"disconnected", "R(x,y), S(u,w)", false, true},
        AgreementCase{"union_disjoint", "R(x), S(x,y) | T(y)", false, true},
        AgreementCase{"union_shared", "R(x,y) | R(x,x)", false, true},
        AgreementCase{"negation_guarded", "A(x), S(x,y), !N(x,y)", false,
                      false}),
    [](const ::testing::TestParamInfo<AgreementCase>& info) {
      return info.param.label;
    });

}  // namespace
}  // namespace shapley
