// Property sweep over the backward reductions (FGMC from SVC oracles):
// parameterized over pseudo-connected query classes, every instance checked
// against brute force. This is the paper's main theorem, stress-tested.

#include <gtest/gtest.h>

#include "shapley/analysis/witnesses.h"
#include "shapley/engines/fgmc.h"
#include "shapley/engines/svc.h"
#include "shapley/gen/generators.h"
#include "shapley/query/path_query.h"
#include "shapley/query/query_parser.h"
#include "shapley/reductions/lemmas.h"

namespace shapley {
namespace {

struct SweepCase {
  const char* label;
  const char* query;  // UCQ syntax; empty -> RPQ described by regex.
  const char* regex;  // RPQ language when query is empty.
};

class ReductionSweepTest : public ::testing::TestWithParam<SweepCase> {
 protected:
  struct Prepared {
    std::shared_ptr<Schema> schema;
    QueryPtr query;
  };

  static Prepared Prepare(const SweepCase& c) {
    Prepared p;
    p.schema = Schema::Create();
    if (std::string(c.query).empty()) {
      p.query = RegularPathQuery::Create(p.schema, Regex::Parse(c.regex),
                                         Constant::Named("v0"),
                                         Constant::Named("v1"));
    } else {
      UcqPtr ucq = ParseUcq(p.schema, c.query);
      p.query = ucq->disjuncts().size() == 1 ? QueryPtr(ucq->disjuncts()[0])
                                             : QueryPtr(ucq);
    }
    return p;
  }

  static PartitionedDatabase Instance(const Prepared& p, uint64_t seed) {
    if (p.schema->IsGraphSchema()) {
      std::vector<std::string> relations;
      for (RelationId r : p.schema->relations()) {
        relations.push_back(p.schema->name(r));
      }
      Database graph = RandomGraph(p.schema, relations, 3, 0.35, seed);
      return PartitionedDatabase::AllEndogenous(graph);
    }
    RandomDatabaseOptions options;
    options.num_facts = 6;
    options.domain_size = 3;
    options.exogenous_fraction = 0.25;
    options.seed = seed;
    return RandomPartitionedDatabase(p.schema, options);
  }
};

TEST_P(ReductionSweepTest, Lemma41RecoversExactCounts) {
  Prepared p = Prepare(GetParam());
  auto witness = CertifyPseudoConnected(*p.query);
  ASSERT_TRUE(witness.has_value()) << GetParam().label;

  BruteForceFgmc direct;
  BruteForceSvc oracle;
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    PartitionedDatabase db = Instance(p, seed * 97);
    if (db.NumEndogenous() > 9) continue;  // Keep the brute oracle feasible.
    Polynomial via = FgmcViaSvcLemma41(*p.query, *witness, db, oracle);
    EXPECT_EQ(via, direct.CountBySize(*p.query, db))
        << GetParam().label << " seed " << seed;
  }
}

TEST_P(ReductionSweepTest, Prop62MaxOracleRecoversExactCounts) {
  Prepared p = Prepare(GetParam());
  auto witness = CertifyPseudoConnected(*p.query);
  ASSERT_TRUE(witness.has_value());

  BruteForceFgmc direct;
  BruteForceSvc svc;
  MaxSvcOracle oracle = [&svc](const BooleanQuery& q,
                               const PartitionedDatabase& db) {
    return svc.MaxValue(q, db).second;
  };
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    PartitionedDatabase db = Instance(p, seed * 89 + 5);
    if (db.NumEndogenous() > 8) continue;
    Polynomial via = FgmcViaMaxSvcProp62(*p.query, *witness, db, oracle);
    EXPECT_EQ(via, direct.CountBySize(*p.query, db))
        << GetParam().label << " seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    PseudoConnectedClasses, ReductionSweepTest,
    ::testing::Values(
        SweepCase{"connected_path_cq", "R(x,y), S(y,z)", ""},
        SweepCase{"connected_triangle_cq", "R(x,y), S(y,z), T(z,x)", ""},
        SweepCase{"connected_selfjoin_cq", "R(x,y), R(y,x)", ""},
        SweepCase{"connected_star_cq", "R(x,y), S(x,z), T(x)", ""},
        SweepCase{"connected_ucq", "R(x,y), S(y,z) | T(x,y)", ""},
        SweepCase{"dss_union", "A(x) | R(x,c), S(c,x)", ""},
        SweepCase{"rpq_two_hop", "", "A A"},
        SweepCase{"rpq_choice", "", "A B | B A"},
        SweepCase{"rpq_star", "", "A A* B"}),
    [](const ::testing::TestParamInfo<SweepCase>& info) {
      return info.param.label;
    });

}  // namespace
}  // namespace shapley
