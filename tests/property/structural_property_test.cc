// Structural-analysis property sweeps on randomly generated CQs:
//  * IsHierarchical agrees with the paper's footnote-5 characterization
//    ("not hierarchical iff there are atoms α1, α2, α3 with
//     vars(α1)∩vars(α2) ⊄ vars(α3) and vars(α3)∩vars(α2) ⊄ vars(α1)");
//  * satisfaction of a monotone query equals containment of some minimal
//    support;
//  * the frozen core is always a minimal support.

#include <gtest/gtest.h>

#include "shapley/analysis/structure.h"
#include "shapley/gen/generators.h"
#include "shapley/query/supports.h"

namespace shapley {
namespace {

// Footnote 5, implemented verbatim as the triple-of-atoms test.
bool NonHierarchicalByFootnote5(const ConjunctiveQuery& cq) {
  std::vector<Atom> atoms = cq.atoms();
  atoms.insert(atoms.end(), cq.negated_atoms().begin(),
               cq.negated_atoms().end());
  auto subset = [](const std::set<Variable>& a, const std::set<Variable>& b) {
    for (Variable v : a) {
      if (b.count(v) == 0) return false;
    }
    return true;
  };
  for (const Atom& a1 : atoms) {
    for (const Atom& a2 : atoms) {
      for (const Atom& a3 : atoms) {
        std::set<Variable> v1 = a1.Variables(), v2 = a2.Variables(),
                           v3 = a3.Variables();
        std::set<Variable> i12, i32;
        for (Variable v : v1) {
          if (v2.count(v)) i12.insert(v);
        }
        for (Variable v : v3) {
          if (v2.count(v)) i32.insert(v);
        }
        if (!i12.empty() && !i32.empty() && !subset(i12, v3) &&
            !subset(i32, v1)) {
          return true;
        }
      }
    }
  }
  return false;
}

TEST(StructuralPropertyTest, HierarchicalMatchesFootnote5OnRandomCqs) {
  for (uint64_t seed = 0; seed < 200; ++seed) {
    auto schema = Schema::Create();
    RandomCqOptions options;
    options.num_atoms = 2 + seed % 3;
    options.num_variables = 2 + seed % 3;
    options.num_relations = 4;
    options.max_arity = 3;
    options.seed = seed;
    CqPtr q = RandomCq(schema, options);
    EXPECT_EQ(IsHierarchical(*q), !NonHierarchicalByFootnote5(*q))
        << "seed " << seed << " query " << q->ToString();
  }
}

TEST(StructuralPropertyTest, SatisfactionEqualsMinimalSupportContainment) {
  for (uint64_t seed = 0; seed < 40; ++seed) {
    auto schema = Schema::Create();
    RandomCqOptions cq_options;
    cq_options.num_atoms = 2;
    cq_options.num_variables = 2;
    cq_options.num_relations = 2;
    cq_options.seed = seed;
    CqPtr q = RandomCq(schema, cq_options);

    RandomDatabaseOptions db_options;
    db_options.num_facts = 6;
    db_options.domain_size = 2;
    db_options.exogenous_fraction = 0.0;
    db_options.seed = seed + 1000;
    Database db = RandomPartitionedDatabase(schema, db_options).AllFacts();

    bool satisfied = q->Evaluate(db);
    auto supports = EnumerateMinimalSupports(*q, db);
    bool has_support = false;
    for (const Database& s : supports) {
      if (s.IsSubsetOf(db)) has_support = true;
      EXPECT_TRUE(IsMinimalSupport(*q, s)) << "seed " << seed;
    }
    EXPECT_EQ(satisfied, has_support) << "seed " << seed;
  }
}

TEST(StructuralPropertyTest, FrozenCoreIsAlwaysAMinimalSupport) {
  for (uint64_t seed = 0; seed < 60; ++seed) {
    auto schema = Schema::Create();
    RandomCqOptions options;
    options.num_atoms = 2 + seed % 3;
    options.num_variables = 2 + seed % 2;
    options.num_relations = 3;
    options.seed = seed + 7;
    CqPtr q = RandomCq(schema, options);
    CqPtr core = CoreOfCq(*q);
    Database frozen = core->Freeze();
    EXPECT_TRUE(IsMinimalSupport(*q, frozen))
        << "seed " << seed << " query " << q->ToString() << " core "
        << core->ToString();
  }
}

TEST(StructuralPropertyTest, CoreIsEquivalentToOriginal) {
  // q and core(q) satisfy exactly the same databases.
  for (uint64_t seed = 0; seed < 30; ++seed) {
    auto schema = Schema::Create();
    RandomCqOptions options;
    options.num_atoms = 3;
    options.num_variables = 2;
    options.num_relations = 2;
    options.seed = seed + 77;
    CqPtr q = RandomCq(schema, options);
    CqPtr core = CoreOfCq(*q);

    RandomDatabaseOptions db_options;
    db_options.num_facts = 5;
    db_options.domain_size = 2;
    db_options.seed = seed + 2000;
    for (int inst = 0; inst < 4; ++inst) {
      db_options.seed += 13;
      Database db = RandomPartitionedDatabase(schema, db_options).AllFacts();
      EXPECT_EQ(q->Evaluate(db), core->Evaluate(db))
          << "seed " << seed << " inst " << inst;
    }
  }
}

TEST(StructuralPropertyTest, VariableConnectedComponentsPartitionAtoms) {
  for (uint64_t seed = 0; seed < 50; ++seed) {
    auto schema = Schema::Create();
    RandomCqOptions options;
    options.num_atoms = 4;
    options.num_variables = 3;
    options.num_relations = 4;
    options.seed = seed + 99;
    CqPtr q = RandomCq(schema, options);
    auto components = VariableConnectedComponents(q->atoms());
    size_t total = 0;
    for (const auto& comp : components) total += comp.size();
    EXPECT_EQ(total, q->atoms().size());
    // Each component's subquery is variable-connected.
    for (const auto& comp : components) {
      std::vector<Atom> atoms;
      for (size_t i : comp) atoms.push_back(q->atoms()[i]);
      EXPECT_TRUE(IsVariableConnected(atoms)) << "seed " << seed;
    }
  }
}

}  // namespace
}  // namespace shapley
