// The reconnect schedule's contract (net/client.h, ReconnectBackoff):
// capped exponential growth, equal-jitter bounds, determinism in the
// seed, decorrelation across seeds — and the client actually honoring
// connect_attempts when a backend is unreachable.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <stdexcept>
#include <vector>

#include "shapley/net/client.h"

namespace shapley {
namespace {

using net::ClientOptions;
using net::ReconnectBackoff;
using net::ShapleyClient;

TEST(ReconnectBackoffTest, FirstDialIsFreeLaterOnesJitterWithinTheCap) {
  const int base = 10;
  const int max = 250;
  ReconnectBackoff backoff(base, max, /*seed=*/42);

  EXPECT_EQ(backoff.DelayMs(0), 0);
  for (size_t attempt = 1; attempt <= 12; ++attempt) {
    SCOPED_TRACE("attempt " + std::to_string(attempt));
    // cap = min(base·2^(k−1), max), saturating instead of overflowing.
    int cap = base;
    for (size_t k = 1; k < attempt && cap < max; ++k) cap *= 2;
    cap = std::min(cap, max);
    const int delay = backoff.DelayMs(attempt);
    // Equal jitter: at least half the cap (real spacing under load), at
    // most the cap (bounded worst-case reconnect latency).
    EXPECT_GE(delay, cap / 2);
    EXPECT_LE(delay, cap);
  }
  // Far past the doubling range the schedule sits inside [max/2, max].
  EXPECT_GE(backoff.DelayMs(63), max / 2);
  EXPECT_LE(backoff.DelayMs(63), max);
}

TEST(ReconnectBackoffTest, SameSeedReplaysSameScheduleBitForBit) {
  ReconnectBackoff first(10, 250, 7);
  ReconnectBackoff second(10, 250, 7);
  for (size_t attempt = 0; attempt <= 20; ++attempt) {
    EXPECT_EQ(first.DelayMs(attempt), second.DelayMs(attempt));
    // Pure function of (seed, attempt): re-asking does not advance state.
    EXPECT_EQ(first.DelayMs(attempt), first.DelayMs(attempt));
  }
}

TEST(ReconnectBackoffTest, DistinctSeedsDecorrelate) {
  // A fleet of clients losing one backend must not dial its replacement
  // in lockstep: across seeds the same attempt lands on many delays.
  std::set<int> delays;
  for (uint64_t seed = 0; seed < 32; ++seed) {
    ReconnectBackoff backoff(10, 250, seed);
    delays.insert(backoff.DelayMs(6));  // cap = min(10·2^5, 250) = 250.
  }
  EXPECT_GT(delays.size(), 8u);
}

TEST(ReconnectBackoffTest, ClientGivesUpAfterConnectAttempts) {
  // Port 1 on localhost refuses instantly; with a tiny schedule the whole
  // retry loop costs milliseconds and then throws a transport error.
  ClientOptions options;
  options.connect_attempts = 2;
  options.base_backoff_ms = 1;
  options.max_backoff_ms = 2;
  ShapleyClient client("127.0.0.1", 1, options);
  int status = 0;
  EXPECT_THROW(client.RawGet("/healthz", &status), std::runtime_error);
}

}  // namespace
}  // namespace shapley
