// End-to-end tests of the network front over REAL TCP sockets on an
// ephemeral port:
//
//  (a) a mixed batch — exact lifted + guarded brute + sampling with
//      strategy overrides + structured failures — submitted through
//      net/client comes back BIT-IDENTICAL to in-process
//      ShapleyService::Compute(), with SvcError codes surfaced as the
//      documented HTTP statuses;
//  (b) the server drains in-flight requests on Stop(): responses already
//      being computed are streamed out, never dropped;
//  (c) transport-level behavior: keep-alive connection reuse, unknown
//      endpoints, malformed HTTP, oversized bodies, /v1/engines and
//      /v1/stats.

#include "shapley/net/server.h"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "shapley/common/version.h"
#include "shapley/data/parser.h"
#include "shapley/net/client.h"
#include "shapley/net/codec.h"
#include "shapley/query/query_parser.h"
#include "shapley/service/shapley_service.h"

namespace shapley {
namespace {

using net::HttpServer;
using net::Json;
using net::ServerOptions;
using net::ShapleyClient;

QueryPtr ParseQuery(const std::shared_ptr<Schema>& schema, const char* text) {
  UcqPtr ucq = ParseUcq(schema, text);
  if (ucq->disjuncts().size() == 1) return ucq->disjuncts()[0];
  return ucq;
}

/// Serving stack on an ephemeral port, torn down in reverse order.
struct Stack {
  explicit Stack(ServiceOptions service_options = {.threads = 2},
                 ServerOptions server_options = {})
      : service(service_options), server(&service, server_options) {
    server.Start();
  }
  ShapleyService service;
  HttpServer server;
};

TEST(ServerTest, MixedBatchOverTcpIsBitIdenticalToInProcessCompute) {
  auto schema = Schema::Create();
  QueryPtr easy = ParseQuery(schema, "R(x), S(x,y)");
  QueryPtr hard = ParseQuery(schema, "R(x), S(x,y), T(y)");
  QueryPtr negated = ParseQuery(schema, "S(x,y), R(x), !T(y)");
  PartitionedDatabase db = ParsePartitionedDatabase(
      schema, "R(a) R(b) S(a,c) S(b,d) T(c) | T(d) S(a,d)");

  // The mix the acceptance criterion names: exact lifted, exact brute,
  // sampling under every strategy override, plus two structured failures.
  std::vector<SvcRequest> requests;
  {
    SvcRequest r;  // → lifted (tractable side of the dichotomy).
    r.query = easy;
    r.db = db;
    requests.push_back(r);
  }
  {
    SvcRequest r;  // → guarded brute force (#P-hard side).
    r.query = hard;
    r.db = db;
    requests.push_back(r);
  }
  for (ApproxStrategy strategy :
       {ApproxStrategy::kHoeffding, ApproxStrategy::kBernstein,
        ApproxStrategy::kStratified}) {
    SvcRequest r;  // → sampling by explicit override, per strategy.
    r.query = negated;
    r.db = db;
    r.engine = "sampling";
    r.approx.epsilon = 0.1;
    r.approx.seed = 11;
    r.approx.strategy = strategy;
    requests.push_back(r);
  }
  {
    SvcRequest r;  // → kUnsupportedQuery (lifted cannot take negation).
    r.query = negated;
    r.db = db;
    r.engine = "lifted";
    requests.push_back(r);
  }
  {
    SvcRequest r;  // → kInvalidRequest (unknown engine).
    r.query = easy;
    r.db = db;
    r.engine = "no-such-engine";
    requests.push_back(r);
  }
  {
    SvcRequest r;  // → kMaxValue through the wire, for ranked coverage.
    r.query = hard;
    r.db = db;
    r.mode = SvcMode::kMaxValue;
    requests.push_back(r);
  }

  Stack stack;
  // In-process ground truth from an IDENTICAL, independent service (so
  // counters/caches on the serving one cannot interfere).
  ShapleyService reference(ServiceOptions{.threads = 2});
  std::vector<SvcResponse> expected;
  for (const SvcRequest& request : requests) {
    expected.push_back(reference.Compute(request));
  }

  ShapleyClient client("127.0.0.1", stack.server.port());
  std::vector<SvcResponse> actual = client.ComputeBatch(requests);
  ASSERT_EQ(actual.size(), requests.size());

  for (size_t i = 0; i < requests.size(); ++i) {
    SCOPED_TRACE("request " + std::to_string(i));
    EXPECT_EQ(actual[i].ok(), expected[i].ok());
    // Bit-identical payloads: exact rationals AND sampling estimates
    // (same seed → same tallies → same rationals).
    EXPECT_EQ(actual[i].values, expected[i].values);
    EXPECT_EQ(actual[i].ranked, expected[i].ranked);
    EXPECT_EQ(actual[i].engine, expected[i].engine);
    EXPECT_EQ(actual[i].verdict.query_class, expected[i].verdict.query_class);
    if (expected[i].approx.has_value()) {
      ASSERT_TRUE(actual[i].approx.has_value());
      EXPECT_EQ(actual[i].approx->samples, expected[i].approx->samples);
      EXPECT_EQ(actual[i].approx->fact_half_widths,
                expected[i].approx->fact_half_widths);
      EXPECT_EQ(actual[i].approx->strategy, expected[i].approx->strategy);
    }
    if (expected[i].error.has_value()) {
      ASSERT_TRUE(actual[i].error.has_value());
      EXPECT_EQ(actual[i].error->code, expected[i].error->code);
    }
  }
}

TEST(ServerTest, SingleComputeSurfacesDocumentedStatuses) {
  auto schema = Schema::Create();
  QueryPtr easy = ParseQuery(schema, "R(x), S(x,y)");
  QueryPtr negated = ParseQuery(schema, "S(x,y), R(x), !T(y)");
  PartitionedDatabase db =
      ParsePartitionedDatabase(schema, "R(a) S(a,b) T(b)");

  Stack stack;
  ShapleyClient client("127.0.0.1", stack.server.port());

  SvcRequest ok_request;
  ok_request.query = easy;
  ok_request.db = db;
  SvcResponse ok_response = client.Compute(ok_request);
  EXPECT_TRUE(ok_response.ok());
  EXPECT_EQ(client.last_status(), 200);

  SvcRequest unsupported;
  unsupported.query = negated;
  unsupported.db = db;
  unsupported.engine = "lifted";
  SvcResponse unsupported_response = client.Compute(unsupported);
  ASSERT_TRUE(unsupported_response.error.has_value());
  EXPECT_EQ(unsupported_response.error->code,
            SvcErrorCode::kUnsupportedQuery);
  EXPECT_EQ(client.last_status(), 422);

  SvcRequest invalid;
  invalid.query = easy;
  invalid.db = db;
  invalid.engine = "no-such-engine";
  SvcResponse invalid_response = client.Compute(invalid);
  ASSERT_TRUE(invalid_response.error.has_value());
  EXPECT_EQ(invalid_response.error->code, SvcErrorCode::kInvalidRequest);
  EXPECT_EQ(client.last_status(), 400);

  // Two Computes, one client: the keep-alive connection was reused.
  EXPECT_EQ(stack.server.connections_accepted(), 1u);
  EXPECT_EQ(stack.server.requests_served(), 3u);
}

TEST(ServerTest, StopDrainsInFlightBatchWithoutDroppingResponses) {
  auto schema = Schema::Create();
  // #P-hard instances sized to take real time on the brute engine, so
  // Stop() demonstrably lands while work is in flight.
  QueryPtr hard = ParseQuery(schema, "R(x), S(x,y), T(y)");
  std::string db_text;
  for (int i = 0; i < 17; ++i) {
    db_text += "R(a" + std::to_string(i) + ") ";
    db_text += "S(a" + std::to_string(i) + ",b" + std::to_string(i % 3) +
               ") ";
  }
  db_text += "| T(b0) T(b1)";
  PartitionedDatabase db = ParsePartitionedDatabase(schema, db_text);

  std::vector<SvcRequest> requests(6);
  for (SvcRequest& request : requests) {
    request.query = hard;
    request.db = db;
  }

  Stack stack(ServiceOptions{.threads = 2});
  std::vector<SvcResponse> responses;
  std::thread submitter([&] {
    ShapleyClient client("127.0.0.1", stack.server.port());
    responses = client.ComputeBatch(requests);
  });
  // Let the batch reach the service, then close the door mid-flight.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  stack.server.Stop();
  submitter.join();

  // Every response arrived; whatever the service already accepted
  // completed with values (the service keeps draining its own queue).
  ASSERT_EQ(responses.size(), requests.size());
  for (size_t i = 0; i < responses.size(); ++i) {
    SCOPED_TRACE("response " + std::to_string(i));
    ASSERT_TRUE(responses[i].ok()) << responses[i].error->ToString();
    EXPECT_FALSE(responses[i].values.empty());
  }
}

TEST(ServerTest, StopDoesNotWaitOutIdleKeepAliveConnections) {
  ServerOptions options;
  options.read_timeout_ms = 30'000;  // Far beyond what the test tolerates.
  Stack stack(ServiceOptions{.threads = 1}, options);

  // One served request leaves the connection parked in its keep-alive
  // read; Stop() must cut that wait short (SHUT_RD), not sit out the
  // 30-second read timeout.
  auto schema = Schema::Create();
  SvcRequest request;
  request.query = ParseQuery(schema, "R(x)");
  request.db = ParsePartitionedDatabase(schema, "R(a)");
  ShapleyClient client("127.0.0.1", stack.server.port());
  ASSERT_TRUE(client.Compute(request).ok());

  const auto start = std::chrono::steady_clock::now();
  stack.server.Stop();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(elapsed, std::chrono::seconds(2));
}

TEST(ServerTest, EnginesAndStatsEndpointsReportTheStack) {
  Stack stack;
  ShapleyClient client("127.0.0.1", stack.server.port());

  Json engines = client.Engines();
  const Json::Array* list = engines.Find("engines")->IfArray();
  ASSERT_NE(list, nullptr);
  bool saw_sampling = false;
  for (const Json& engine : *list) {
    if (*engine.Find("name")->IfString() == "sampling") {
      saw_sampling = true;
      EXPECT_EQ(engine.Find("caps")->Find("approximate")->IfBool(), true);
    }
  }
  EXPECT_TRUE(saw_sampling);

  // Serve one request, then check the counters moved.
  auto schema = Schema::Create();
  SvcRequest request;
  request.query = ParseQuery(schema, "R(x), S(x,y)");
  request.db = ParsePartitionedDatabase(schema, "R(a) S(a,b)");
  ASSERT_TRUE(client.Compute(request).ok());

  Json stats = client.Stats();
  const Json* service = stats.Find("service");
  ASSERT_NE(service, nullptr);
  EXPECT_GE(*service->Find("requests_submitted")->IfUint64(), 1u);
  EXPECT_GE(*service->Find("requests_completed")->IfUint64(), 1u);
  const Json* server = stats.Find("server");
  ASSERT_NE(server, nullptr);
  EXPECT_GE(*server->Find("requests_served")->IfUint64(), 2u);
}

TEST(ServerTest, HealthzIsAnsweredByTheTransportItself) {
  Stack stack;
  ShapleyClient client("127.0.0.1", stack.server.port());

  int status = 0;
  std::optional<Json> health = Json::Parse(client.RawGet("/healthz", &status));
  EXPECT_EQ(status, 200);
  ASSERT_TRUE(health.has_value());
  EXPECT_EQ(*health->Find("status")->IfString(), "ok");
  EXPECT_EQ(*health->Find("version")->IfString(), kShapleyVersion);
  EXPECT_EQ(*health->Find("role")->IfString(), "backend");

  // The probe cost no service work at all: a load balancer can hammer
  // /healthz without perturbing a single service counter.
  Json stats = client.Stats();
  EXPECT_EQ(*stats.Find("service")->Find("requests_submitted")->IfUint64(),
            0u);

  // /healthz is a GET; anything else gets the documented 405.
  net::HttpRequest post;
  post.method = "POST";
  post.target = "/healthz";
  std::string error;
  net::Socket socket = net::ConnectTcp("127.0.0.1", stack.server.port(),
                                       &error);
  ASSERT_TRUE(socket.valid()) << error;
  ASSERT_TRUE(socket.SendAll(net::SerializeRequest(post)));
  net::SocketReader reader(socket.fd(), 5000);
  net::HttpResponse response;
  bool chunked = false;
  ASSERT_EQ(net::ReadHttpResponse(&reader, 1 << 20, &response, &chunked),
            net::HttpReadResult::kOk);
  EXPECT_EQ(response.status, 405);
}

TEST(ServerTest, TransportEdgesAnswerStructurally) {
  ServerOptions options;
  options.max_body_bytes = 2048;
  Stack stack(ServiceOptions{.threads = 1}, options);
  const std::string host = "127.0.0.1";

  auto raw_exchange = [&](const std::string& wire) {
    std::string error;
    net::Socket socket = net::ConnectTcp(host, stack.server.port(), &error);
    EXPECT_TRUE(socket.valid()) << error;
    EXPECT_TRUE(socket.SendAll(wire));
    net::SocketReader reader(socket.fd(), 5000);
    net::HttpResponse response;
    bool chunked = false;
    EXPECT_EQ(net::ReadHttpResponse(&reader, 1 << 20, &response, &chunked),
              net::HttpReadResult::kOk);
    return response;
  };

  // Unknown endpoint → 404, wrong method → 405, garbage → 400 — each with
  // the one structured error body every client already knows how to read.
  net::HttpRequest get;
  get.method = "GET";
  get.target = "/v2/zap";
  EXPECT_EQ(raw_exchange(net::SerializeRequest(get)).status, 404);
  net::HttpRequest wrong;
  wrong.method = "GET";
  wrong.target = "/v1/compute";
  EXPECT_EQ(raw_exchange(net::SerializeRequest(wrong)).status, 405);
  EXPECT_EQ(raw_exchange("ZAP!\r\n\r\n").status, 400);

  // Oversized body → 413 before the server even reads it in.
  net::HttpRequest big;
  big.method = "POST";
  big.target = "/v1/compute";
  big.body = std::string(4096, 'x');
  net::HttpResponse too_large = raw_exchange(net::SerializeRequest(big));
  EXPECT_EQ(too_large.status, 413);
  std::optional<Json> body = Json::Parse(too_large.body);
  ASSERT_TRUE(body.has_value());
  // Code and transport status agree, per the documented mapping.
  EXPECT_EQ(*body->Find("error")->Find("code")->IfString(),
            "capacity-exceeded");

  // Bad JSON on a real endpoint → 400 with the structured body.
  net::HttpRequest bad_json;
  bad_json.method = "POST";
  bad_json.target = "/v1/compute";
  bad_json.body = "{this is not json";
  EXPECT_EQ(raw_exchange(net::SerializeRequest(bad_json)).status, 400);
}

}  // namespace
}  // namespace shapley
