// The wire protocol's contract, pinned down:
//
//  (a) ROUND-TRIPS: every SvcRequest mode, every sampling strategy and
//      every SvcError code survives encode → decode → encode with the
//      FIRST and SECOND encodings byte-identical (the encoding is a
//      canonical fixpoint), and decoded values (exact BigRationals
//      included) compare equal bit for bit;
//  (b) REJECTION: malformed input — truncated bodies, bad JSON, unknown
//      fields, wrong types, bad query/fact text, depth bombs — yields a
//      structured kInvalidRequest, never a crash or a silently-defaulted
//      request;
//  (c) the SvcErrorCode → HTTP status mapping is exactly the documented
//      table.

#include "shapley/net/codec.h"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <vector>

#include "shapley/data/parser.h"
#include "shapley/net/json.h"
#include "shapley/query/query_parser.h"
#include "shapley/service/shapley_service.h"

namespace shapley {
namespace {

using net::DecodedRequest;
using net::Json;

QueryPtr ParseQuery(const std::shared_ptr<Schema>& schema, const char* text) {
  UcqPtr ucq = ParseUcq(schema, text);
  if (ucq->disjuncts().size() == 1) return ucq->disjuncts()[0];
  return ucq;
}

/// encode → dump → parse → decode → encode must be a fixpoint, and the
/// decoded request must agree with the original on every wire-visible
/// field. Returns the decoded request for further inspection.
DecodedRequest RoundTrip(const SvcRequest& request) {
  const Json encoded = net::EncodeRequest(request);
  const std::string wire = encoded.Dump();

  std::string parse_error;
  std::optional<Json> parsed = Json::Parse(wire, &parse_error);
  EXPECT_TRUE(parsed.has_value()) << parse_error;

  DecodedRequest decoded;
  std::optional<SvcError> error = net::DecodeRequest(*parsed, &decoded);
  EXPECT_FALSE(error.has_value()) << error->ToString();

  const std::string rewire = net::EncodeRequest(decoded.request).Dump();
  EXPECT_EQ(wire, rewire) << "encoding is not canonical";

  EXPECT_EQ(decoded.request.mode, request.mode);
  EXPECT_EQ(decoded.request.engine, request.engine);
  EXPECT_EQ(decoded.request.allow_approx, request.allow_approx);
  EXPECT_EQ(decoded.request.approx.epsilon, request.approx.epsilon);
  EXPECT_EQ(decoded.request.approx.delta, request.approx.delta);
  EXPECT_EQ(decoded.request.approx.seed, request.approx.seed);
  EXPECT_EQ(decoded.request.approx.max_samples, request.approx.max_samples);
  EXPECT_EQ(decoded.request.approx.strategy, request.approx.strategy);
  if (request.mode == SvcMode::kTopK) {
    EXPECT_EQ(decoded.request.top_k, request.top_k);
  }
  // The databases agree fact for fact (rendered through their own schemas;
  // the schemas are distinct interners but the names must match).
  const auto render = [](const PartitionedDatabase& db) {
    std::vector<std::string> out;
    for (const Fact& fact : db.endogenous().facts()) {
      out.push_back(fact.ToString(*db.schema()));
    }
    out.push_back("|");
    for (const Fact& fact : db.exogenous().facts()) {
      out.push_back(fact.ToString(*db.schema()));
    }
    return out;
  };
  EXPECT_EQ(render(decoded.request.db), render(request.db));
  return decoded;
}

TEST(CodecTest, EveryModeRoundTripsCanonically) {
  auto schema = Schema::Create();
  SvcRequest request;
  request.query = ParseQuery(schema, "R(x), S(x,y), !T(y)");
  request.db = ParsePartitionedDatabase(schema, "R(a) S(a,b) T(b) | S(a,c)");
  for (SvcMode mode : {SvcMode::kAllValues, SvcMode::kMaxValue,
                       SvcMode::kTopK, SvcMode::kClassifyOnly}) {
    SCOPED_TRACE(ToString(mode));
    request.mode = mode;
    request.top_k = 5;
    RoundTrip(request);
  }
}

TEST(CodecTest, EveryStrategyAndOverrideRoundTrips) {
  auto schema = Schema::Create();
  SvcRequest request;
  request.query = ParseQuery(schema, "R(x), S(x,y), T(y)");
  request.db = ParsePartitionedDatabase(schema, "R(a) S(a,b) T(b)");
  request.allow_approx = true;
  request.approx.epsilon = 0.037;   // Not a round float: exercises the
  request.approx.delta = 1e-3;      // shortest-round-trip number path.
  request.approx.seed = 0xDEADBEEFCAFEBABEull;  // Needs full uint64 range.
  request.approx.max_samples = 123456789;
  for (ApproxStrategy strategy :
       {ApproxStrategy::kHoeffding, ApproxStrategy::kBernstein,
        ApproxStrategy::kStratified}) {
    SCOPED_TRACE(ToString(strategy));
    request.approx.strategy = strategy;
    for (const char* engine : {"", "sampling", "brute", "lifted"}) {
      request.engine = engine;
      DecodedRequest decoded = RoundTrip(request);
      EXPECT_EQ(decoded.request.approx.seed, 0xDEADBEEFCAFEBABEull);
    }
  }
}

TEST(CodecTest, UnionAndForcedPrefixQueriesSurviveTheWire) {
  auto schema = Schema::Create();
  SvcRequest request;
  // A constant named like a variable ('$x') and a variable named like a
  // constant ('?a'): only the explicit-prefix canonical text keeps these
  // straight across the wire.
  request.query = ParseQuery(schema, "R($x, y), S(y) | T(?a), R(b, ?a)");
  request.db = ParsePartitionedDatabase(schema, "R(x,c) S(c) T(d) R(b,d)");
  DecodedRequest decoded = RoundTrip(request);
  // Evaluating both queries on the decoded database agrees — the semantic
  // check that the prefixes preserved term kinds.
  EXPECT_EQ(request.query->Evaluate(request.db.AllFacts()),
            decoded.request.query->Evaluate(decoded.request.db.AllFacts()));
}

TEST(CodecTest, TimeoutCrossesTheWireAsARelativeBudget) {
  auto schema = Schema::Create();
  SvcRequest request;
  request.query = ParseQuery(schema, "R(x)");
  request.db = ParsePartitionedDatabase(schema, "R(a)");
  request.WithTimeout(std::chrono::milliseconds(5000));

  const Json encoded = net::EncodeRequest(request);
  const Json* timeout = encoded.Find("timeout_ms");
  ASSERT_NE(timeout, nullptr);
  ASSERT_TRUE(timeout->IfUint64().has_value());
  EXPECT_LE(*timeout->IfUint64(), 5000u);
  EXPECT_GE(*timeout->IfUint64(), 4000u);  // Encoding is not that slow.

  DecodedRequest decoded;
  ASSERT_FALSE(net::DecodeRequest(encoded, &decoded).has_value());
  ASSERT_TRUE(decoded.request.deadline.has_value());
  EXPECT_GT(*decoded.request.deadline, std::chrono::steady_clock::now());
}

TEST(CodecTest, ResponsesRoundTripBitIdentically) {
  auto schema = Schema::Create();
  QueryPtr query = ParseQuery(schema, "R(x), S(x,y), T(y)");
  PartitionedDatabase db =
      ParsePartitionedDatabase(schema, "R(a) S(a,b) T(b) S(a,c) | T(c)");
  ShapleyService service(ServiceOptions{.threads = 1});

  // One exact response, one estimated (full ApproxInfo vectors on the
  // wire), one ranked.
  std::vector<SvcRequest> requests(3);
  for (SvcRequest& request : requests) {
    request.query = query;
    request.db = db;
  }
  requests[1].engine = "sampling";
  requests[1].approx.seed = 7;
  requests[2].mode = SvcMode::kTopK;
  requests[2].top_k = 2;

  for (SvcRequest& request : requests) {
    SvcResponse response = service.Compute(request);
    ASSERT_TRUE(response.ok()) << response.error->ToString();

    const std::string wire = net::EncodeResponse(response, *schema).Dump();
    std::optional<Json> parsed = Json::Parse(wire);
    ASSERT_TRUE(parsed.has_value());
    SvcResponse decoded;
    std::optional<SvcError> error =
        net::DecodeResponse(*parsed, schema, &decoded);
    ASSERT_FALSE(error.has_value()) << error->ToString();

    // Byte-identical re-encoding, bit-identical payload.
    EXPECT_EQ(net::EncodeResponse(decoded, *schema).Dump(), wire);
    EXPECT_EQ(decoded.mode, response.mode);
    EXPECT_EQ(decoded.values, response.values);
    EXPECT_EQ(decoded.ranked, response.ranked);
    EXPECT_EQ(decoded.engine, response.engine);
    EXPECT_EQ(decoded.routed_by_classifier, response.routed_by_classifier);
    EXPECT_EQ(decoded.verdict.tractability, response.verdict.tractability);
    EXPECT_EQ(decoded.verdict.query_class, response.verdict.query_class);
    EXPECT_EQ(decoded.verdict.fgmc_svc_equivalent,
              response.verdict.fgmc_svc_equivalent);
    ASSERT_EQ(decoded.approx.has_value(), response.approx.has_value());
    if (response.approx.has_value()) {
      EXPECT_EQ(decoded.approx->samples, response.approx->samples);
      EXPECT_EQ(decoded.approx->seed, response.approx->seed);
      EXPECT_EQ(decoded.approx->half_width, response.approx->half_width);
      EXPECT_EQ(decoded.approx->strategy, response.approx->strategy);
      EXPECT_EQ(decoded.approx->fact_ranges, response.approx->fact_ranges);
      EXPECT_EQ(decoded.approx->fact_samples, response.approx->fact_samples);
      EXPECT_EQ(decoded.approx->fact_half_widths,
                response.approx->fact_half_widths);
    }
  }
}

TEST(CodecTest, EveryErrorCodeRoundTripsWithItsDocumentedStatus) {
  const std::vector<std::pair<SvcErrorCode, int>> table = {
      {SvcErrorCode::kInvalidRequest, 400},
      {SvcErrorCode::kCapacityExceeded, 413},
      {SvcErrorCode::kUnsupportedQuery, 422},
      {SvcErrorCode::kCancelled, 499},
      {SvcErrorCode::kEngineFailure, 500},
      {SvcErrorCode::kUpstreamUnavailable, 503},
      {SvcErrorCode::kRequestTimeout, 408},
      {SvcErrorCode::kDeadlineExceeded, 504},
  };
  auto schema = Schema::Create();
  for (const auto& [code, status] : table) {
    SCOPED_TRACE(ToString(code));
    EXPECT_EQ(net::HttpStatusFor(code), status);
    EXPECT_EQ(net::ParseSvcErrorCode(ToString(code)), code);

    SvcResponse response;
    response.error = SvcError{code, "the message", "the-engine"};
    const std::string wire = net::EncodeResponse(response, *schema).Dump();
    std::optional<Json> parsed = Json::Parse(wire);
    ASSERT_TRUE(parsed.has_value());
    // The wire carries the status next to the code.
    EXPECT_EQ(parsed->Find("error")->Find("status")->IfInt64(), status);
    SvcResponse decoded;
    ASSERT_FALSE(net::DecodeResponse(*parsed, schema, &decoded).has_value());
    ASSERT_TRUE(decoded.error.has_value());
    EXPECT_EQ(decoded.error->code, code);
    EXPECT_EQ(decoded.error->message, "the message");
    EXPECT_EQ(decoded.error->engine, "the-engine");
    EXPECT_EQ(net::EncodeResponse(decoded, *schema).Dump(), wire);
  }
  EXPECT_FALSE(net::ParseSvcErrorCode("no-such-code").has_value());
}

// ---------------------------------------------------- forward compat -----

/// Splices `extra` right after the first occurrence of `marker` — the
/// cheap way to plant an unknown member inside one specific JSON object
/// of an otherwise canonical wire body.
std::string InsertAfter(std::string wire, const std::string& marker,
                        const std::string& extra) {
  const size_t at = wire.find(marker);
  EXPECT_NE(at, std::string::npos) << marker;
  wire.insert(at + marker.size(), extra);
  return wire;
}

/// DecodeResponse must IGNORE unknown fields (a newer server, or a newer
/// backend behind the shard router, may annotate responses), while known
/// fields keep their strict types — so a decorated body decodes to the
/// same SvcResponse as the clean one.
TEST(CodecTest, ResponseDecodeToleratesUnknownFieldsAtEveryLevel) {
  auto schema = Schema::Create();
  SvcRequest request;
  request.query = ParseQuery(schema, "R(x), S(x,y), T(y)");
  request.db = ParsePartitionedDatabase(schema, "R(a) S(a,b) T(b) | T(c)");
  request.engine = "sampling";  // → values, approx, stats all populated.
  request.approx.seed = 7;
  ShapleyService service(ServiceOptions{.threads = 1});
  SvcResponse response = service.Compute(request);
  ASSERT_TRUE(response.ok()) << response.error->ToString();
  const std::string wire = net::EncodeResponse(response, *schema).Dump();

  SvcResponse clean;
  ASSERT_FALSE(
      net::DecodeResponse(*Json::Parse(wire), schema, &clean).has_value());

  // One unknown member planted in every nesting level the decoder walks.
  std::string decorated = wire;
  decorated = InsertAfter(decorated, "{", R"("x_future":{"deep":[1,2]},)");
  decorated = InsertAfter(decorated, "\"verdict\":{", R"("hint":null,)");
  decorated = InsertAfter(decorated, "\"approx\":{", R"("gpu_ms":3.5,)");
  decorated = InsertAfter(decorated, "\"stats\":{", R"("retries":0,)");
  decorated = InsertAfter(decorated, "\"values\":[{", R"("note":"hi",)");
  ASSERT_TRUE(Json::Parse(decorated).has_value()) << decorated;

  SvcResponse tolerant;
  std::optional<SvcError> error =
      net::DecodeResponse(*Json::Parse(decorated), schema, &tolerant);
  ASSERT_FALSE(error.has_value()) << error->ToString();
  EXPECT_EQ(tolerant.values, clean.values);
  EXPECT_EQ(tolerant.engine, clean.engine);
  EXPECT_EQ(tolerant.verdict.query_class, clean.verdict.query_class);
  ASSERT_TRUE(tolerant.approx.has_value());
  EXPECT_EQ(tolerant.approx->samples, clean.approx->samples);
  EXPECT_EQ(tolerant.approx->fact_half_widths,
            clean.approx->fact_half_widths);

  // The error object tolerates decoration too.
  SvcResponse failed;
  failed.error = SvcError{SvcErrorCode::kUpstreamUnavailable, "down", ""};
  const std::string error_wire = InsertAfter(
      net::EncodeResponse(failed, *schema).Dump(), "\"error\":{",
      R"("upstream":"h1:9","attempts":2,)");
  SvcResponse decoded_failed;
  ASSERT_FALSE(net::DecodeResponse(*Json::Parse(error_wire), schema,
                                   &decoded_failed)
                   .has_value());
  ASSERT_TRUE(decoded_failed.error.has_value());
  EXPECT_EQ(decoded_failed.error->code, SvcErrorCode::kUpstreamUnavailable);
  EXPECT_EQ(decoded_failed.error->message, "down");

  // Tolerance is NOT sloppiness: known fields keep their strict types.
  SvcResponse rejected;
  EXPECT_TRUE(net::DecodeResponse(
                  *Json::Parse(InsertAfter(wire, "\"approx\":{",
                                           R"("samples":"many",)")),
                  schema, &rejected)
                  .has_value());
}

/// The REQUEST path stays strict: the same decoration that responses
/// shrug off is a client typo there and must fail loudly.
TEST(CodecTest, RequestDecodeStaysStrictAboutUnknownFields) {
  auto schema = Schema::Create();
  SvcRequest request;
  request.query = ParseQuery(schema, "R(x)");
  request.db = ParsePartitionedDatabase(schema, "R(a)");
  const std::string wire = net::EncodeRequest(request).Dump();

  DecodedRequest decoded;
  ASSERT_FALSE(
      net::DecodeRequest(*Json::Parse(wire), &decoded).has_value());
  std::optional<SvcError> error = net::DecodeRequest(
      *Json::Parse(InsertAfter(wire, "{", R"("x_future":1,)")), &decoded);
  ASSERT_TRUE(error.has_value());
  EXPECT_EQ(error->code, SvcErrorCode::kInvalidRequest);
}

// ------------------------------------------------------------- rejection --

/// Decode must fail with kInvalidRequest and must not crash.
void ExpectRejected(const std::string& body, const char* why) {
  SCOPED_TRACE(why);
  std::optional<Json> parsed = Json::Parse(body);
  if (!parsed.has_value()) return;  // Rejected one layer earlier: fine.
  DecodedRequest decoded;
  std::optional<SvcError> error = net::DecodeRequest(*parsed, &decoded);
  ASSERT_TRUE(error.has_value()) << body;
  EXPECT_EQ(error->code, SvcErrorCode::kInvalidRequest);
  EXPECT_FALSE(error->message.empty());
}

TEST(CodecTest, MalformedRequestsAreRejectedStructurally) {
  const std::string valid =
      R"js({"query":"R(?x)","database":{"endogenous":["R(a)"],"exogenous":[]},)js"
      R"js("mode":"all-values","approx":{"epsilon":0.05,"delta":0.05,)js"
      R"js("seed":1,"max_samples":0,"strategy":"hoeffding"}})js";
  // Sanity: the valid body decodes.
  {
    std::optional<Json> parsed = Json::Parse(valid);
    ASSERT_TRUE(parsed.has_value());
    DecodedRequest decoded;
    EXPECT_FALSE(net::DecodeRequest(*parsed, &decoded).has_value());
  }
  // Truncations at every prefix must fail somewhere, never crash.
  for (size_t cut = 1; cut < valid.size(); cut += 7) {
    const std::string truncated = valid.substr(0, cut);
    std::optional<Json> parsed = Json::Parse(truncated);
    if (!parsed.has_value()) continue;  // Parser rejected: good.
    DecodedRequest decoded;
    net::DecodeRequest(*parsed, &decoded);  // Must simply not crash.
  }

  ExpectRejected("{}", "missing query");
  ExpectRejected(R"js({"query":"R(?x)"})js", "missing database");
  ExpectRejected(
      R"js({"query":"R(?x)","database":{},"mode":"all-values","extra":1})js",
      "unknown top-level field");
  ExpectRejected(
      R"js({"query":"R(?x)","database":{"endo":[]},"mode":"all-values"})js",
      "unknown database field");
  ExpectRejected(
      R"js({"query":"R(?x)","database":{},"mode":"values-all"})js",
      "unknown mode");
  ExpectRejected(
      R"js({"query":"R(?x)","database":{},"mode":"all-values",)js"
      R"js("approx":{"epsilonn":0.1}})js",
      "misspelled approx field");
  ExpectRejected(
      R"js({"query":"R(?x)","database":{},"mode":"all-values",)js"
      R"js("approx":{"strategy":"qmc"}})js",
      "unknown strategy");
  ExpectRejected(
      R"js({"query":"R(?x)","database":{},"mode":"all-values","top_k":0})js",
      "zero top_k");
  ExpectRejected(
      R"js({"query":"R(?x)","database":{},"mode":"all-values",)js"
      R"js("timeout_ms":-5})js",
      "negative timeout");
  ExpectRejected(
      R"js({"query":"R((","database":{},"mode":"all-values"})js",
      "unparsable query");
  ExpectRejected(
      R"js({"query":"R(?x)","database":{"endogenous":["R(a,b,c"]},)js"
      R"js("mode":"all-values"})js",
      "unparsable fact");
  ExpectRejected(
      R"js({"query":"R(?x)","database":{"endogenous":[42]},)js"
      R"js("mode":"all-values"})js",
      "non-string fact");
  ExpectRejected(
      R"js({"query":"R(?x)","database":{"endogenous":["R(a)","R(a,b)"]},)js"
      R"js("mode":"all-values"})js",
      "arity clash inside one database");
}

TEST(CodecTest, JsonParserSurvivesAdversarialInput) {
  std::string error;
  EXPECT_FALSE(Json::Parse("", &error).has_value());
  EXPECT_FALSE(Json::Parse("{", &error).has_value());
  EXPECT_FALSE(Json::Parse("{\"a\":1,}", &error).has_value());
  EXPECT_FALSE(Json::Parse("{\"a\":1}x", &error).has_value());
  EXPECT_FALSE(Json::Parse("{\"a\":1,\"a\":2}", &error).has_value());
  EXPECT_FALSE(Json::Parse("nul", &error).has_value());
  EXPECT_FALSE(Json::Parse("+1", &error).has_value());
  EXPECT_FALSE(Json::Parse("01", &error).has_value());
  EXPECT_FALSE(Json::Parse("1.", &error).has_value());
  EXPECT_FALSE(Json::Parse("\"\\q\"", &error).has_value());
  EXPECT_FALSE(Json::Parse("\"\\ud800\"", &error).has_value());
  EXPECT_FALSE(Json::Parse(std::string("\"\x01\""), &error).has_value());

  // Depth bomb: fails at the cap instead of overflowing the stack.
  const std::string bomb(10000, '[');
  EXPECT_FALSE(Json::Parse(bomb, &error).has_value());
  EXPECT_NE(error.find("deep"), std::string::npos);

  // Numbers keep their raw text (uint64 seeds survive where doubles
  // would round), escapes round-trip, unicode passes through.
  std::optional<Json> big = Json::Parse("18446744073709551615");
  ASSERT_TRUE(big.has_value());
  EXPECT_EQ(big->IfUint64(), 18446744073709551615ull);
  EXPECT_EQ(big->Dump(), "18446744073709551615");
  std::optional<Json> text =
      Json::Parse("\"a\\n\\\"b\\\" \\u00e9 \\ud83d\\ude00\"");
  ASSERT_TRUE(text.has_value());
  EXPECT_EQ(*text->IfString(), "a\n\"b\" \xc3\xa9 \xf0\x9f\x98\x80");
}

}  // namespace
}  // namespace shapley
