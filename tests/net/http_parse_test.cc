// Malformed-wire tests for the hardened HTTP parsing layer, at three
// depths:
//
//  (a) HttpRequestParser unit tests — the incremental parser the event
//      loop feeds byte ranges as they arrive: strict request-line
//      tokenization (exactly three fields), full-consumption size parses
//      (Content-Length: 12abc is NOT 12), duplicate Content-Length
//      rejection (request-smuggling class), Transfer-Encoding rejection,
//      split/byte-at-a-time feeding, pipelined leftovers;
//  (b) the blocking reader path (SocketReader + ReadHttpRequest /
//      ReadHttpResponse / ReadChunk) over a socketpair — the client-side
//      and legacy paths share the same strict helpers, including chunk
//      extensions and garbage chunk-size lines;
//  (c) wire-level: raw bytes against a REAL event-loop server must come
//      back 400, and two keep-alive requests in ONE TCP segment must both
//      be served off one connection (pipelining through the loop),
//      including on the poll() fallback backend.

#include "shapley/net/http.h"

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <string>
#include <vector>

#include "shapley/net/server.h"
#include "shapley/service/shapley_service.h"

namespace shapley {
namespace {

using net::HttpParseStatus;
using net::HttpRequestParser;

// ---------------------------------------------------------------------------
// (a) Incremental parser.
// ---------------------------------------------------------------------------

HttpParseStatus FeedAll(HttpRequestParser* parser, const std::string& wire,
                        size_t* eaten = nullptr) {
  size_t consumed = 0;
  const HttpParseStatus status = parser->Consume(wire, &consumed);
  if (eaten != nullptr) *eaten = consumed;
  return status;
}

TEST(HttpParseTest, ParsesAWellFormedRequest) {
  HttpRequestParser parser(1 << 20);
  const std::string wire =
      "POST /v1/compute HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\n"
      "hello";
  size_t eaten = 0;
  ASSERT_EQ(FeedAll(&parser, wire, &eaten), HttpParseStatus::kDone);
  EXPECT_EQ(eaten, wire.size());
  net::HttpRequest request = parser.Take();
  EXPECT_EQ(request.method, "POST");
  EXPECT_EQ(request.target, "/v1/compute");
  EXPECT_EQ(request.version, "HTTP/1.1");
  EXPECT_EQ(request.body, "hello");
}

TEST(HttpParseTest, RequestLineMustHaveExactlyThreeFields) {
  // A space inside the target must NOT silently parse as target "/a b" —
  // strict tokenization rejects anything that is not exactly three fields.
  for (const char* line : {
           "GET /a b HTTP/1.1",    // four fields
           "GET /a",               // two fields
           "GET  /a HTTP/1.1",     // empty field (double space)
           "GET /a ",              // empty version
           " /a HTTP/1.1",         // empty method
           "GET /a HTTP/9.9",      // not an HTTP/1.x version
           "GET /a HTTP/1.1 ",     // trailing space → empty fourth field
       }) {
    HttpRequestParser parser(1 << 20);
    const std::string wire = std::string(line) + "\r\nHost: x\r\n\r\n";
    EXPECT_EQ(FeedAll(&parser, wire), HttpParseStatus::kMalformed)
        << "line: [" << line << "]";
  }
}

TEST(HttpParseTest, ContentLengthMustConsumeItsFullToken) {
  // (leading spaces are stripped by header parsing, so " 12" is legal;
  // trailing ones are not — "12 " must fail full consumption)
  for (const char* value : {"12abc", "0x10", "12 ", "", "-5", "+5"}) {
    HttpRequestParser parser(1 << 20);
    const std::string wire = "POST /x HTTP/1.1\r\nContent-Length: " +
                             std::string(value) + "\r\n\r\n";
    EXPECT_EQ(FeedAll(&parser, wire), HttpParseStatus::kMalformed)
        << "Content-Length: [" << value << "]";
  }
}

TEST(HttpParseTest, DuplicateContentLengthIsRejected) {
  // Two Content-Length headers — conflicting or even AGREEING — are the
  // request-smuggling vector: upstream and downstream picking different
  // ones desynchronizes the stream. Reject outright.
  for (const char* second : {"6", "5"}) {
    HttpRequestParser parser(1 << 20);
    const std::string wire =
        "POST /x HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: " +
        std::string(second) + "\r\n\r\nhello";
    EXPECT_EQ(FeedAll(&parser, wire), HttpParseStatus::kMalformed)
        << "second value: " << second;
  }
}

TEST(HttpParseTest, TransferEncodingRequestsAreRejected) {
  HttpRequestParser parser(1 << 20);
  const std::string wire =
      "POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
      "5\r\nhello\r\n0\r\n\r\n";
  EXPECT_EQ(FeedAll(&parser, wire), HttpParseStatus::kMalformed);
}

TEST(HttpParseTest, OversizedDeclaredBodyIsTooLarge) {
  HttpRequestParser parser(/*max_body=*/16);
  const std::string wire = "POST /x HTTP/1.1\r\nContent-Length: 17\r\n\r\n";
  EXPECT_EQ(FeedAll(&parser, wire), HttpParseStatus::kTooLarge);
}

TEST(HttpParseTest, ByteAtATimeFeedingReachesTheSameParse) {
  HttpRequestParser parser(1 << 20);
  const std::string wire =
      "GET /v1/engines HTTP/1.1\r\nHost: a\r\nAccept: */*\r\n\r\n";
  HttpParseStatus status = HttpParseStatus::kNeedMore;
  for (size_t i = 0; i < wire.size(); ++i) {
    size_t consumed = 0;
    status = parser.Consume(std::string_view(&wire[i], 1), &consumed);
    if (i + 1 < wire.size()) {
      ASSERT_EQ(status, HttpParseStatus::kNeedMore) << "at byte " << i;
    }
    EXPECT_EQ(consumed, 1u);
  }
  ASSERT_EQ(status, HttpParseStatus::kDone);
  net::HttpRequest request = parser.Take();
  EXPECT_EQ(request.target, "/v1/engines");
  ASSERT_EQ(request.headers.size(), 2u);
  EXPECT_EQ(request.headers[1].second, "*/*");
}

TEST(HttpParseTest, PipelinedFollowerStaysUnconsumed) {
  HttpRequestParser parser(1 << 20);
  const std::string first =
      "POST /x HTTP/1.1\r\nContent-Length: 3\r\n\r\nabc";
  const std::string second = "GET /y HTTP/1.1\r\n\r\n";
  size_t eaten = 0;
  ASSERT_EQ(FeedAll(&parser, first + second, &eaten),
            HttpParseStatus::kDone);
  // The parser stops at its message boundary: the follower is the
  // caller's to re-feed after Reset().
  ASSERT_EQ(eaten, first.size());
  EXPECT_EQ(parser.Take().body, "abc");
  parser.Reset();
  ASSERT_EQ(FeedAll(&parser, second, &eaten), HttpParseStatus::kDone);
  EXPECT_EQ(parser.Take().target, "/y");
}

// ---------------------------------------------------------------------------
// (b) Blocking-reader path over a socketpair.
// ---------------------------------------------------------------------------

/// Feeds `wire` to a SocketReader through a socketpair (writer end closed,
/// so reads past the payload see clean EOF).
struct WirePipe {
  explicit WirePipe(const std::string& wire) {
    int fds[2] = {-1, -1};
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    read_end = net::Socket(fds[0]);
    net::Socket write_end(fds[1]);
    EXPECT_TRUE(write_end.SendAll(wire));
  }
  net::Socket read_end;
};

TEST(HttpParseTest, BlockingRequestPathRejectsTheSameWires) {
  const std::vector<std::string> bad = {
      "GET /a b HTTP/1.1\r\nHost: x\r\n\r\n",
      "POST /x HTTP/1.1\r\nContent-Length: 12abc\r\n\r\n",
      "POST /x HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 6\r\n\r\n"
      "hello",
  };
  for (const std::string& wire : bad) {
    WirePipe pipe(wire);
    net::SocketReader reader(pipe.read_end.fd(), 1000);
    net::HttpRequest request;
    EXPECT_EQ(net::ReadHttpRequest(&reader, 1 << 20, &request),
              net::HttpReadResult::kMalformed)
        << wire;
  }
}

TEST(HttpParseTest, ResponsePathRejectsGarbageAndDuplicateContentLength) {
  {
    WirePipe pipe("HTTP/1.1 200 OK\r\nContent-Length: 12abc\r\n\r\n");
    net::SocketReader reader(pipe.read_end.fd(), 1000);
    net::HttpResponse response;
    bool chunked = false;
    EXPECT_EQ(net::ReadHttpResponse(&reader, 1 << 20, &response, &chunked),
              net::HttpReadResult::kMalformed);
  }
  {
    WirePipe pipe(
        "HTTP/1.1 200 OK\r\nContent-Length: 2\r\nContent-Length: 3\r\n\r\n"
        "ok");
    net::SocketReader reader(pipe.read_end.fd(), 1000);
    net::HttpResponse response;
    bool chunked = false;
    EXPECT_EQ(net::ReadHttpResponse(&reader, 1 << 20, &response, &chunked),
              net::HttpReadResult::kMalformed);
  }
}

TEST(HttpParseTest, ChunkSizeLinesAreParsedStrictly) {
  {
    // A chunk EXTENSION (";name=value") is legal and ignored.
    WirePipe pipe("5;ext=1\r\nhello\r\n0\r\n\r\n");
    net::SocketReader reader(pipe.read_end.fd(), 1000);
    std::string chunk;
    bool done = false;
    ASSERT_TRUE(net::ReadChunk(&reader, 1 << 20, &chunk, &done));
    EXPECT_FALSE(done);
    EXPECT_EQ(chunk, "hello");
    ASSERT_TRUE(net::ReadChunk(&reader, 1 << 20, &chunk, &done));
    EXPECT_TRUE(done);
  }
  // ffzz used to parse as 0xff with the zz silently dropped; zz, an empty
  // size and a bare extension must all fail too.
  for (const char* line : {"ffzz", "zz", "", ";ext"}) {
    WirePipe pipe(std::string(line) + "\r\nhello\r\n");
    net::SocketReader reader(pipe.read_end.fd(), 1000);
    std::string chunk;
    bool done = false;
    EXPECT_FALSE(net::ReadChunk(&reader, 1 << 20, &chunk, &done))
        << "chunk-size line: [" << line << "]";
  }
}

// ---------------------------------------------------------------------------
// (c) Wire level, against the real event-loop server.
// ---------------------------------------------------------------------------

struct Stack {
  explicit Stack(net::ServerOptions server_options = {})
      : service(ServiceOptions{.threads = 1}),
        server(&service, server_options) {
    server.Start();
  }
  ShapleyService service;
  net::HttpServer server;
};

net::HttpResponse RawExchange(const Stack& stack, const std::string& wire) {
  std::string error;
  net::Socket socket =
      net::ConnectTcp("127.0.0.1", stack.server.port(), &error);
  EXPECT_TRUE(socket.valid()) << error;
  EXPECT_TRUE(socket.SendAll(wire));
  net::SocketReader reader(socket.fd(), 5000);
  net::HttpResponse response;
  bool chunked = false;
  EXPECT_EQ(net::ReadHttpResponse(&reader, 1 << 20, &response, &chunked),
            net::HttpReadResult::kOk);
  return response;
}

TEST(HttpParseTest, ServerAnswers400ToAllThreeBugClasses) {
  Stack stack;
  // Space in the target.
  EXPECT_EQ(RawExchange(stack, "GET /a b HTTP/1.1\r\nHost: x\r\n\r\n").status,
            400);
  // Content-Length with trailing garbage.
  EXPECT_EQ(
      RawExchange(stack,
                  "POST /v1/compute HTTP/1.1\r\nContent-Length: 12abc\r\n\r\n")
          .status,
      400);
  // Duplicate (conflicting) Content-Length.
  EXPECT_EQ(RawExchange(stack,
                        "POST /v1/compute HTTP/1.1\r\nContent-Length: 5\r\n"
                        "Content-Length: 6\r\n\r\nhello")
                .status,
            400);
}

TEST(HttpParseTest, KeepAlivePipeliningServesBothRequestsFromOneSegment) {
  Stack stack;
  std::string error;
  net::Socket socket =
      net::ConnectTcp("127.0.0.1", stack.server.port(), &error);
  ASSERT_TRUE(socket.valid()) << error;
  // TWO requests in ONE TCP segment: the first is answered inline by the
  // loop (/healthz), the second is dispatched to the pool (/v1/engines) —
  // the loop must serve the buffered follower without another read event.
  const std::string segment =
      "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n"
      "GET /v1/engines HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n";
  ASSERT_TRUE(socket.SendAll(segment));
  net::SocketReader reader(socket.fd(), 5000);
  net::HttpResponse first, second;
  bool chunked = false;
  ASSERT_EQ(net::ReadHttpResponse(&reader, 1 << 20, &first, &chunked),
            net::HttpReadResult::kOk);
  EXPECT_EQ(first.status, 200);
  EXPECT_NE(first.body.find("\"ok\""), std::string::npos);
  ASSERT_EQ(net::ReadHttpResponse(&reader, 1 << 20, &second, &chunked),
            net::HttpReadResult::kOk);
  EXPECT_EQ(second.status, 200);
  EXPECT_NE(second.body.find("engines"), std::string::npos);
  // One connection, two requests — pipelining, not reconnection.
  EXPECT_EQ(stack.server.connections_accepted(), 1u);
  EXPECT_EQ(stack.server.requests_served(), 2u);
}

TEST(HttpParseTest, PollFallbackBackendServesTheSamePipeline) {
  net::ServerOptions options;
  options.force_poll = true;
  Stack stack(options);
  std::string error;
  net::Socket socket =
      net::ConnectTcp("127.0.0.1", stack.server.port(), &error);
  ASSERT_TRUE(socket.valid()) << error;
  const std::string segment =
      "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n"
      "GET /healthz HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n";
  ASSERT_TRUE(socket.SendAll(segment));
  net::SocketReader reader(socket.fd(), 5000);
  for (int i = 0; i < 2; ++i) {
    net::HttpResponse response;
    bool chunked = false;
    ASSERT_EQ(net::ReadHttpResponse(&reader, 1 << 20, &response, &chunked),
              net::HttpReadResult::kOk)
        << "response " << i;
    EXPECT_EQ(response.status, 200);
  }
  // Malformed wire through the fallback too.
  EXPECT_EQ(RawExchange(stack, "ZAP!\r\n\r\n").status, 400);
}

TEST(HttpParseTest, ManyConcurrentKeepAliveConnectionsOnOneLoopThread) {
  // 128 keep-alive connections held open SIMULTANEOUSLY by one
  // single-threaded client, each served two request rounds — the
  // thread-per-connection front needed 128 OS threads for this; the loop
  // needs one (scripts/check.sh pushes the same shape to 512+ against the
  // CLI binary).
  constexpr size_t kConns = 128;
  Stack stack;
  std::vector<net::Socket> sockets;
  sockets.reserve(kConns);
  for (size_t i = 0; i < kConns; ++i) {
    std::string error;
    net::Socket socket =
        net::ConnectTcp("127.0.0.1", stack.server.port(), &error);
    ASSERT_TRUE(socket.valid()) << "conn " << i << ": " << error;
    sockets.push_back(std::move(socket));
  }
  const std::string probe = "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n";
  for (int round = 0; round < 2; ++round) {
    for (net::Socket& socket : sockets) {
      ASSERT_TRUE(socket.SendAll(probe));
    }
    for (net::Socket& socket : sockets) {
      net::SocketReader reader(socket.fd(), 5000);
      net::HttpResponse response;
      bool chunked = false;
      ASSERT_EQ(net::ReadHttpResponse(&reader, 1 << 20, &response, &chunked),
                net::HttpReadResult::kOk);
      EXPECT_EQ(response.status, 200);
    }
  }
  EXPECT_EQ(stack.server.connections_accepted(), kConns);
  EXPECT_EQ(stack.server.requests_served(), 2 * kConns);
}

TEST(HttpParseTest, PartialRequestTimesOutWith408BeforeClose) {
  // A connection that STARTED a request but never finished it gets told
  // why it is being hung up on: a prebuilt 408 with the structured
  // request-timeout error, then close. (Silent close is for idle
  // keep-alive conns with NO partial request — next test.)
  net::ServerOptions options;
  options.read_timeout_ms = 100;
  Stack stack(options);
  std::string error;
  net::Socket socket =
      net::ConnectTcp("127.0.0.1", stack.server.port(), &error);
  ASSERT_TRUE(socket.valid()) << error;
  // Headers complete, body short 3 bytes — mid-message forever.
  ASSERT_TRUE(socket.SendAll(
      "POST /v1/compute HTTP/1.1\r\nContent-Length: 5\r\n\r\nab"));
  net::SocketReader reader(socket.fd(), 5000);
  net::HttpResponse response;
  bool chunked = false;
  ASSERT_EQ(net::ReadHttpResponse(&reader, 1 << 20, &response, &chunked),
            net::HttpReadResult::kOk);
  EXPECT_EQ(response.status, 408);
  EXPECT_NE(response.body.find("request-timeout"), std::string::npos);
  EXPECT_NE(response.body.find("read timeout"), std::string::npos);
  // After the 408 the server closes: clean EOF, no second response.
  net::HttpResponse after;
  EXPECT_EQ(net::ReadHttpResponse(&reader, 1 << 20, &after, &chunked),
            net::HttpReadResult::kClosed);
  // The timeout is counted in the event-loop metric family.
  const net::HttpResponse metrics = RawExchange(
      stack, "GET /metrics HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n");
  EXPECT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.body.find("shapley_server_eventloop_read_timeouts_total{"
                              "role=\"backend\"} 1"),
            std::string::npos);
}

TEST(HttpParseTest, IdleConnectionsWithNoPartialRequestCloseSilently) {
  net::ServerOptions options;
  options.read_timeout_ms = 100;
  Stack stack(options);
  std::string error;

  // A fresh connection that never sends a byte: silent close, no 408.
  net::Socket fresh =
      net::ConnectTcp("127.0.0.1", stack.server.port(), &error);
  ASSERT_TRUE(fresh.valid()) << error;

  // A keep-alive connection idle BETWEEN requests: the answered request
  // comes back 200, the idle period ends in a silent close — a 408 here
  // would be nonsense (no request is pending).
  net::Socket kept =
      net::ConnectTcp("127.0.0.1", stack.server.port(), &error);
  ASSERT_TRUE(kept.valid()) << error;
  ASSERT_TRUE(kept.SendAll("GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n"));
  net::SocketReader kept_reader(kept.fd(), 5000);
  net::HttpResponse served;
  bool chunked = false;
  ASSERT_EQ(net::ReadHttpResponse(&kept_reader, 1 << 20, &served, &chunked),
            net::HttpReadResult::kOk);
  EXPECT_EQ(served.status, 200);

  net::HttpResponse nothing;
  net::SocketReader fresh_reader(fresh.fd(), 5000);
  EXPECT_EQ(net::ReadHttpResponse(&fresh_reader, 1 << 20, &nothing, &chunked),
            net::HttpReadResult::kClosed);
  EXPECT_EQ(net::ReadHttpResponse(&kept_reader, 1 << 20, &nothing, &chunked),
            net::HttpReadResult::kClosed);
}

}  // namespace
}  // namespace shapley
