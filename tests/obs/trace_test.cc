// The trace substrate (obs/trace.h) and its wire codec (net/codec.h):
//
//  (a) TraceContext::Derive is a pure function of the request bytes —
//      same bytes, same 128-bit id; different bytes, different id; never
//      zero (the empty request included) — and the hex codecs are strict
//      inverses;
//  (b) TraceRecorder turns a Begin/Attr/End discipline into a well-nested
//      tree: parent-relative offsets, attribute order preserved, AddClosed
//      backfills pre-recorder measurements, the epoch constructor
//      backdates the root, Finish closes whatever is still open and grows
//      parents over grafted children (never truncates);
//  (c) EndGraft splices a remote subtree under the closing hop span with
//      the symmetric network-delay estimate, keeping the result
//      well-nested without any cross-process clock comparison;
//  (d) the codec round-trips span trees bit-losslessly, tolerates unknown
//      response members, rejects malformed trees, and SetTraceBlock /
//      SetRequestTraceContext patch already-encoded bodies in place (the
//      router's stamping primitive).

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <utility>
#include <vector>

#include "shapley/net/codec.h"
#include "shapley/net/json.h"
#include "shapley/obs/trace.h"

namespace shapley::obs {
namespace {

using net::Json;

TEST(TraceContext, DeriveIsDeterministicAndNonZero) {
  const TraceContext a = TraceContext::Derive("{\"query\":\"R(?x)\"}");
  const TraceContext b = TraceContext::Derive("{\"query\":\"R(?x)\"}");
  EXPECT_TRUE(a.valid());
  EXPECT_EQ(a.trace_hi, b.trace_hi);
  EXPECT_EQ(a.trace_lo, b.trace_lo);
  EXPECT_EQ(a.TraceIdHex(), b.TraceIdHex());
  EXPECT_EQ(a.parent_span, 0u);

  const TraceContext c = TraceContext::Derive("{\"query\":\"S(?x)\"}");
  EXPECT_NE(a.TraceIdHex(), c.TraceIdHex());

  // Even the empty request has an identity.
  EXPECT_TRUE(TraceContext::Derive("").valid());
  EXPECT_FALSE(TraceContext().valid());
}

TEST(TraceContext, HexCodecsAreStrictInverses) {
  EXPECT_EQ(HexU64(0), "0000000000000000");
  EXPECT_EQ(HexU64(0xdeadbeefULL), "00000000deadbeef");
  for (uint64_t value : {0ull, 1ull, 0xdeadbeefull, ~0ull}) {
    const std::string hex = HexU64(value);
    ASSERT_EQ(hex.size(), 16u);
    EXPECT_EQ(ParseHexU64(hex), value);
  }
  // Strict: exact length, lowercase hex only.
  EXPECT_FALSE(ParseHexU64("abc").has_value());
  EXPECT_FALSE(ParseHexU64("00000000DEADBEEF").has_value());
  EXPECT_FALSE(ParseHexU64("0000000000000zzz").has_value());
  EXPECT_FALSE(ParseHexU64("00000000deadbeef0").has_value());

  const TraceContext context = TraceContext::Derive("bytes");
  const std::string id = context.TraceIdHex();
  ASSERT_EQ(id.size(), 32u);
  const auto parsed = ParseTraceIdHex(id);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->first, context.trace_hi);
  EXPECT_EQ(parsed->second, context.trace_lo);
  EXPECT_FALSE(ParseTraceIdHex(id.substr(1)).has_value());
  EXPECT_FALSE(ParseTraceIdHex(id + "0").has_value());
}

TEST(TraceRecorder, BuildsAWellNestedTree) {
  TraceRecorder recorder("backend", TraceContext::Derive("r"));
  recorder.AddClosed("decode", 0.0, 0.25);
  recorder.Begin("route");
  recorder.Begin("cache");
  recorder.Attr("hit", "false");
  recorder.End();
  recorder.End();
  recorder.Begin("engine");
  recorder.Attr("engine", "lifted");
  recorder.Attr("cache_hits", "1");
  recorder.End();
  const RequestTrace trace = recorder.Finish();

  EXPECT_TRUE(trace.context.valid());
  EXPECT_EQ(trace.root.name, "backend");
  EXPECT_EQ(trace.root.start_ms, 0.0);
  EXPECT_TRUE(WellNested(trace.root));

  ASSERT_EQ(trace.root.children.size(), 3u);
  EXPECT_EQ(trace.root.children[0].name, "decode");
  EXPECT_EQ(trace.root.children[0].ms, 0.25);
  EXPECT_EQ(trace.root.children[1].name, "route");
  EXPECT_EQ(trace.root.children[2].name, "engine");

  const TraceSpan* cache = trace.Find("cache");
  ASSERT_NE(cache, nullptr);
  ASSERT_EQ(trace.root.children[1].children.size(), 1u);
  EXPECT_EQ(&trace.root.children[1].children[0], cache);
  ASSERT_NE(cache->FindAttr("hit"), nullptr);
  EXPECT_EQ(*cache->FindAttr("hit"), "false");
  EXPECT_EQ(cache->FindAttr("miss"), nullptr);

  // Attribute order is preserved (it goes onto the wire as written).
  const TraceSpan* engine = trace.Find("engine");
  ASSERT_NE(engine, nullptr);
  ASSERT_EQ(engine->attrs.size(), 2u);
  EXPECT_EQ(engine->attrs[0].first, "engine");
  EXPECT_EQ(engine->attrs[1].first, "cache_hits");
}

TEST(TraceRecorder, FinishClosesOpenSpansAndGrowsOverClosedChildren) {
  TraceRecorder recorder("service");
  recorder.Begin("route");
  recorder.Begin("engine");
  // A backfilled child longer than any real elapsed time: Finish must
  // GROW engine → route → root over it rather than truncate it.
  recorder.AddClosed("compile", 0.0, 1000.0);
  const RequestTrace trace = recorder.Finish();

  EXPECT_TRUE(WellNested(trace.root));
  const TraceSpan* engine = trace.Find("engine");
  ASSERT_NE(engine, nullptr);
  EXPECT_GE(engine->ms, 1000.0);
  EXPECT_GE(trace.root.ms, 1000.0);
  ASSERT_NE(trace.Find("compile"), nullptr);
}

TEST(TraceRecorder, EpochConstructorBackdatesTheRoot) {
  const auto epoch =
      std::chrono::steady_clock::now() - std::chrono::milliseconds(40);
  TraceRecorder recorder("backend", TraceContext::Derive("r"), epoch);
  recorder.AddClosed("decode", 0.0, 5.0);
  const RequestTrace trace = recorder.Finish();
  // The root covers the pre-recorder work: at least the 40ms since epoch.
  EXPECT_GE(trace.root.ms, 40.0);
  EXPECT_TRUE(WellNested(trace.root));
}

TEST(TraceRecorder, EndGraftSplicesARemoteSubtree) {
  TraceSpan remote;
  remote.name = "backend";
  remote.ms = 3.0;
  TraceSpan remote_child;
  remote_child.name = "engine";
  remote_child.start_ms = 1.0;
  remote_child.ms = 2.0;
  remote.children.push_back(remote_child);

  TraceRecorder recorder("router", TraceContext::Derive("r"));
  recorder.Begin("hop");
  recorder.Attr("backend", "127.0.0.1:9");
  recorder.EndGraft(remote);
  const RequestTrace trace = recorder.Finish();

  EXPECT_TRUE(WellNested(trace.root));
  ASSERT_EQ(trace.root.children.size(), 1u);
  const TraceSpan& hop = trace.root.children[0];
  EXPECT_EQ(hop.name, "hop");
  // The hop's window includes both network legs, so it covers the grafted
  // subtree, which starts at the symmetric delay estimate.
  EXPECT_GE(hop.ms, 3.0);
  ASSERT_EQ(hop.children.size(), 1u);
  const TraceSpan& grafted = hop.children[0];
  EXPECT_EQ(grafted.name, "backend");
  EXPECT_EQ(grafted.ms, 3.0);
  EXPECT_NEAR(grafted.start_ms, (hop.ms - grafted.ms) / 2.0, 1e-9);
  // The remote subtree's internal offsets are untouched.
  ASSERT_EQ(grafted.children.size(), 1u);
  EXPECT_EQ(grafted.children[0].start_ms, 1.0);
  EXPECT_EQ(grafted.children[0].ms, 2.0);
}

TEST(WellNestedCheck, RejectsEscapingChildren) {
  TraceSpan parent;
  parent.name = "p";
  parent.ms = 2.0;
  TraceSpan child;
  child.name = "c";
  child.start_ms = 1.5;
  child.ms = 1.0;  // Ends at 2.5 > 2.0.
  parent.children.push_back(child);
  EXPECT_FALSE(WellNested(parent));

  parent.children[0].start_ms = -0.5;
  parent.children[0].ms = 1.0;
  EXPECT_FALSE(WellNested(parent));

  parent.children[0].start_ms = 0.5;
  EXPECT_TRUE(WellNested(parent));
}

TEST(TraceCodec, RoundTripsTheSpanTreeLosslessly) {
  RequestTrace trace;
  trace.context = TraceContext::Derive("request bytes");
  trace.root.name = "router";
  trace.root.ms = 12.5;
  TraceSpan hop;
  hop.name = "hop";
  hop.start_ms = 0.5;
  hop.ms = 11.0;
  hop.attrs = {{"backend", "127.0.0.1:9"}, {"attempt", "0"}};
  TraceSpan engine;
  engine.name = "engine";
  engine.start_ms = 2.0;
  engine.ms = 8.0;
  hop.children.push_back(engine);
  trace.root.children.push_back(std::move(hop));

  const Json encoded = net::EncodeTrace(trace);
  const std::optional<RequestTrace> decoded = net::DecodeTrace(encoded);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->context.TraceIdHex(), trace.context.TraceIdHex());
  EXPECT_EQ(decoded->root.name, "router");
  EXPECT_EQ(decoded->root.ms, 12.5);
  ASSERT_EQ(decoded->root.children.size(), 1u);
  const TraceSpan& decoded_hop = decoded->root.children[0];
  EXPECT_EQ(decoded_hop.start_ms, 0.5);
  ASSERT_EQ(decoded_hop.attrs.size(), 2u);
  EXPECT_EQ(decoded_hop.attrs[0],
            (std::pair<std::string, std::string>{"backend", "127.0.0.1:9"}));
  EXPECT_EQ(decoded_hop.attrs[1],
            (std::pair<std::string, std::string>{"attempt", "0"}));
  ASSERT_EQ(decoded_hop.children.size(), 1u);
  EXPECT_EQ(decoded_hop.children[0].name, "engine");

  // Re-encoding the decode is byte-identical: ONE serialized form.
  EXPECT_EQ(net::EncodeTrace(*decoded).Dump(), encoded.Dump());
}

TEST(TraceCodec, ToleratesUnknownMembersRejectsMalformedTrees) {
  // Unknown span members are ignored (response-tolerant decode).
  const Json spare = *Json::Parse(
      R"({"name":"engine","start_ms":0,"ms":1.5,"flavor":"new"})");
  TraceSpan span;
  ASSERT_TRUE(net::DecodeTraceSpan(spare, &span));
  EXPECT_EQ(span.name, "engine");
  EXPECT_EQ(span.ms, 1.5);

  // Missing required members, wrong types, bad ids: all rejected.
  for (const char* bad : {
           R"({"start_ms":0,"ms":1})",                      // No name.
           R"({"name":"x","start_ms":"0","ms":1})",         // Type.
           R"({"name":"x","start_ms":0,"ms":1,"attrs":3})",  // Attrs type.
           R"({"name":"x","start_ms":0,"ms":1,)"
           R"("children":[{"ms":1}]})",                     // Bad child.
       }) {
    SCOPED_TRACE(bad);
    EXPECT_FALSE(net::DecodeTraceSpan(*Json::Parse(bad), &span));
  }
  EXPECT_FALSE(
      net::DecodeTrace(*Json::Parse(R"({"trace_id":"xyz","root":)"
                                    R"({"name":"r","start_ms":0,"ms":1}})"))
          .has_value());
  EXPECT_FALSE(net::DecodeTrace(*Json::Parse("[]")).has_value());
}

TEST(TraceCodec, PatchesEncodedBodiesInPlace) {
  RequestTrace trace;
  trace.context = TraceContext::Derive("r");
  trace.root.name = "backend";
  trace.root.ms = 1.0;

  // SetTraceBlock replaces an existing block and preserves member order.
  Json response = *Json::Parse(
      R"({"mode":"all-values","trace":{"old":true},"status":200})");
  net::SetTraceBlock(&response, trace);
  const std::optional<RequestTrace> round =
      net::DecodeTrace(*response.Find("trace"));
  ASSERT_TRUE(round.has_value());
  EXPECT_EQ(round->root.name, "backend");
  EXPECT_EQ(response.Dump().find(R"({"mode":"all-values","trace":)"), 0u);
  EXPECT_NE(response.Dump().find(R"("status":200})"), std::string::npos);

  // SetRequestTraceContext rewrites "trace": true to the object form the
  // router stamps — and adds the member when absent.
  TraceContext context = TraceContext::Derive("r");
  context.parent_span = 0xabcULL;
  for (const char* body :
       {R"js({"query":"R(?x)","trace":true})js", R"js({"query":"R(?x)"})js"}) {
    SCOPED_TRACE(body);
    Json request = *Json::Parse(body);
    net::SetRequestTraceContext(&request, context);
    const Json* block = request.Find("trace");
    ASSERT_NE(block, nullptr);
    ASSERT_NE(block->Find("trace_id"), nullptr);
    EXPECT_EQ(*block->Find("trace_id")->IfString(), context.TraceIdHex());
    EXPECT_EQ(*block->Find("parent_span")->IfString(),
              "0000000000000abc");
  }
}

}  // namespace
}  // namespace shapley::obs
