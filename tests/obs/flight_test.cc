// The always-on flight recorder (obs/flight.h):
//
//  (a) digests come back in strict sequence order with t_ms stamped and
//      every field intact — the ring is a faithful recent-history window;
//  (b) overwrite accounting: after N > capacity records, exactly
//      capacity digests are resident, they are the NEWEST ones, and
//      dropped() == N - capacity — nothing vanishes unaccounted;
//  (c) the multi-thread lose-nothing hammer: 8 writers × thousands of
//      records, then the conservation contract — total_recorded == N,
//      Snapshot holds exactly min(N, capacity) entries with strictly
//      increasing distinct seqs, and every entry is internally CONSISTENT
//      (its fields were written together by one writer, never torn across
//      two) — while snapshots run concurrently with the writers.

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "shapley/obs/flight.h"

namespace shapley::obs {
namespace {

TEST(FlightRecorder, RecordsInSequenceOrderWithFieldsIntact) {
  FlightRecorder recorder(/*capacity=*/16, /*shards=*/4);
  for (int i = 0; i < 5; ++i) {
    FlightDigest digest;
    digest.target = "/v1/compute";
    digest.shard_key_hash = 100 + static_cast<uint64_t>(i);
    digest.engine = "lifted";
    digest.mode = "all-values";
    digest.strategy = "exact";
    digest.status = 200;
    digest.latency_us = 1000 + static_cast<uint64_t>(i);
    digest.samples = static_cast<uint64_t>(i);
    digest.cache_hits = static_cast<uint64_t>(2 * i);
    digest.trace_id = i == 0 ? "00ab" : "";
    recorder.Record(std::move(digest));
  }
  EXPECT_EQ(recorder.total_recorded(), 5u);
  EXPECT_EQ(recorder.dropped(), 0u);

  const auto snapshot = recorder.Snapshot();
  ASSERT_EQ(snapshot.size(), 5u);
  for (size_t i = 0; i < snapshot.size(); ++i) {
    EXPECT_EQ(snapshot[i].seq, i);
    const FlightDigest& digest = snapshot[i].digest;
    EXPECT_EQ(digest.target, "/v1/compute");
    EXPECT_EQ(digest.shard_key_hash, 100 + i);
    EXPECT_EQ(digest.engine, "lifted");
    EXPECT_EQ(digest.mode, "all-values");
    EXPECT_EQ(digest.strategy, "exact");
    EXPECT_EQ(digest.status, 200);
    EXPECT_EQ(digest.latency_us, 1000 + i);
    EXPECT_EQ(digest.samples, i);
    EXPECT_EQ(digest.cache_hits, 2 * i);
    EXPECT_EQ(digest.trace_id, i == 0 ? "00ab" : "");
    EXPECT_GE(digest.t_ms, 0.0);
    if (i > 0) EXPECT_GE(digest.t_ms, snapshot[i - 1].digest.t_ms);
  }
}

TEST(FlightRecorder, OverwritesOldestAndAccountsEveryDrop) {
  FlightRecorder recorder(/*capacity=*/8, /*shards=*/2);
  const uint64_t n = 21;
  for (uint64_t i = 0; i < n; ++i) {
    FlightDigest digest;
    digest.shard_key_hash = i;
    recorder.Record(std::move(digest));
  }
  EXPECT_EQ(recorder.total_recorded(), n);
  EXPECT_EQ(recorder.dropped(), n - recorder.capacity());

  // Exactly the NEWEST `capacity` digests are resident, in order.
  const auto snapshot = recorder.Snapshot();
  ASSERT_EQ(snapshot.size(), recorder.capacity());
  for (size_t i = 0; i < snapshot.size(); ++i) {
    EXPECT_EQ(snapshot[i].seq, n - recorder.capacity() + i);
    EXPECT_EQ(snapshot[i].digest.shard_key_hash, snapshot[i].seq);
  }
}

TEST(FlightRecorder, CapacityRoundsUpToShardMultiple) {
  FlightRecorder recorder(/*capacity=*/10, /*shards=*/8);
  EXPECT_EQ(recorder.capacity(), 16u);  // Rounded up to 8-slot shards.
}

TEST(FlightRecorder, MultiThreadHammerLosesNothingAndTearsNothing) {
  constexpr size_t kWriters = 8;
  constexpr uint64_t kPerWriter = 4000;
  constexpr uint64_t kTotal = kWriters * kPerWriter;
  FlightRecorder recorder(/*capacity=*/256, /*shards=*/8);

  // Each digest's fields are a pure function of (writer, iteration) —
  // a torn entry (fields from two different writes) is detectable.
  auto make = [](uint64_t writer, uint64_t i) {
    FlightDigest digest;
    digest.shard_key_hash = writer * kPerWriter + i;
    digest.latency_us = digest.shard_key_hash * 3 + 1;
    digest.samples = digest.shard_key_hash * 7 + 2;
    digest.cache_hits = digest.shard_key_hash * 11 + 3;
    digest.status = static_cast<int>(200 + writer);
    digest.engine = "w" + std::to_string(writer);
    digest.target = "/v1/compute";
    return digest;
  };

  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (size_t w = 0; w < kWriters; ++w) {
    writers.emplace_back([&recorder, &make, w] {
      for (uint64_t i = 0; i < kPerWriter; ++i) {
        recorder.Record(make(w, i));
      }
    });
  }
  // Concurrent snapshots must never observe a torn or duplicated entry.
  std::thread reader([&recorder, &make] {
    for (int round = 0; round < 50; ++round) {
      const auto snapshot = recorder.Snapshot();
      ASSERT_LE(snapshot.size(), recorder.capacity());
      uint64_t previous_seq = 0;
      for (size_t i = 0; i < snapshot.size(); ++i) {
        if (i > 0) ASSERT_GT(snapshot[i].seq, previous_seq);
        previous_seq = snapshot[i].seq;
        const FlightDigest& digest = snapshot[i].digest;
        const uint64_t id = digest.shard_key_hash;
        const FlightDigest expect = make(id / kPerWriter, id % kPerWriter);
        ASSERT_EQ(digest.latency_us, expect.latency_us) << "torn entry";
        ASSERT_EQ(digest.samples, expect.samples) << "torn entry";
        ASSERT_EQ(digest.cache_hits, expect.cache_hits) << "torn entry";
        ASSERT_EQ(digest.status, expect.status) << "torn entry";
        ASSERT_EQ(digest.engine, expect.engine) << "torn entry";
      }
    }
  });
  for (std::thread& t : writers) t.join();
  reader.join();

  // Conservation: every record counted, the ring full of distinct
  // strictly-increasing seqs, dropped == total - resident.
  EXPECT_EQ(recorder.total_recorded(), kTotal);
  const auto snapshot = recorder.Snapshot();
  ASSERT_EQ(snapshot.size(), recorder.capacity());
  std::set<uint64_t> seqs;
  std::set<uint64_t> ids;
  for (size_t i = 0; i < snapshot.size(); ++i) {
    if (i > 0) EXPECT_GT(snapshot[i].seq, snapshot[i - 1].seq);
    seqs.insert(snapshot[i].seq);
    ids.insert(snapshot[i].digest.shard_key_hash);
    EXPECT_LT(snapshot[i].seq, kTotal);
  }
  EXPECT_EQ(seqs.size(), snapshot.size()) << "duplicate seq in snapshot";
  EXPECT_EQ(ids.size(), snapshot.size()) << "duplicate digest in snapshot";
  EXPECT_EQ(recorder.dropped(), kTotal - snapshot.size());
}

}  // namespace
}  // namespace shapley::obs
