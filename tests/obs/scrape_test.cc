// GET /metrics over REAL TCP, for both halves of the serving stack:
//
//  (a) a backend scrape is well-formed Prometheus text — exactly one
//      HELP/TYPE per family, HELP before TYPE, no duplicate series lines,
//      every histogram's cumulative buckets monotone with +Inf == _count —
//      and carries shapley_build_info{version, role="backend"};
//  (b) request-latency series are labeled by what ACTUALLY served the
//      request: engine, mode and strategy ("exact" vs the sampling
//      strategy), fed from real traffic;
//  (c) the conservation self-check gauge reads 0 once the service drained;
//  (d) a ROUTER scrape exposes the routing counters and per-backend
//      {backend="host:port"} series, and its series set is fully DISJOINT
//      from a backend's (router-prefixed families by name, shared
//      transport families by the role label);
//  (e) the opt-in "trace" block crosses the wire as ONE well-nested span
//      TREE — a "backend" root enclosing decode → route (cache inside) →
//      engine → encode, the engine span decomposed into compile / delta /
//      accumulate by the deep-path hooks — absent otherwise, with a trace
//      id derived deterministically from the request bytes; and the span
//      durations feed the scrape-time shapley_phase_duration_ms{phase}
//      and shapley_cache_*{table} families, which stay BACKEND-ONLY (the
//      router never exposes them).

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "shapley/cluster/router.h"
#include "shapley/common/version.h"
#include "shapley/data/parser.h"
#include "shapley/net/client.h"
#include "shapley/net/server.h"
#include "shapley/query/query_parser.h"
#include "shapley/service/shapley_service.h"

namespace shapley {
namespace {

using net::ShapleyClient;

QueryPtr ParseQuery(const std::shared_ptr<Schema>& schema,
                    std::string_view text) {
  UcqPtr ucq = ParseUcq(schema, text);
  if (ucq->disjuncts().size() == 1) return ucq->disjuncts()[0];
  return ucq;
}

/// One backend serving stack on an ephemeral port.
struct Stack {
  explicit Stack(ServiceOptions service_options = {.threads = 2})
      : service(service_options), server(&service) {
    server.Start();
  }
  ShapleyService service;
  net::HttpServer server;
};

std::string Scrape(const std::string& host, uint16_t port) {
  ShapleyClient client(host, port);
  int status = 0;
  const std::string body = client.RawGet("/metrics", &status);
  EXPECT_EQ(status, 200);
  return body;
}

std::vector<std::string> Lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

/// Series identity of one sample line: everything before the value.
std::string SeriesKey(const std::string& line) {
  return line.substr(0, line.rfind(' '));
}

/// The format checks every scrape in this file must pass.
void ExpectWellFormed(const std::string& text) {
  // One HELP and one TYPE per family, HELP first.
  std::map<std::string, int> help_count;
  std::map<std::string, int> type_count;
  std::set<std::string> series_seen;
  std::map<std::string, uint64_t> bucket_cumulative;  // By le-less key.
  std::map<std::string, uint64_t> bucket_inf;
  std::map<std::string, uint64_t> histogram_count;
  for (const std::string& line : Lines(text)) {
    ASSERT_FALSE(line.empty()) << "blank line in exposition";
    if (line.rfind("# HELP ", 0) == 0) {
      const std::string name = line.substr(7, line.find(' ', 7) - 7);
      EXPECT_EQ(++help_count[name], 1) << "duplicate HELP for " << name;
      EXPECT_EQ(type_count[name], 0) << "HELP after TYPE for " << name;
      continue;
    }
    if (line.rfind("# TYPE ", 0) == 0) {
      const std::string name = line.substr(7, line.find(' ', 7) - 7);
      EXPECT_EQ(++type_count[name], 1) << "duplicate TYPE for " << name;
      EXPECT_EQ(help_count[name], 1) << "TYPE without HELP for " << name;
      continue;
    }
    ASSERT_NE(line[0], '#') << "unknown comment line: " << line;
    EXPECT_TRUE(series_seen.insert(SeriesKey(line)).second)
        << "duplicate series: " << SeriesKey(line);

    // Histogram bucket bookkeeping: cumulative counts must be monotone
    // within a series (le label stripped), +Inf must equal _count.
    const uint64_t value = std::stoull(line.substr(line.rfind(' ') + 1));
    const size_t bucket_pos = line.find("_bucket{");
    if (bucket_pos != std::string::npos) {
      std::string key = SeriesKey(line);
      const size_t le = key.find("le=\"");
      ASSERT_NE(le, std::string::npos) << line;
      const std::string le_value =
          key.substr(le + 4, key.find('"', le + 4) - (le + 4));
      // The le pair is the last label: erase it (and a preceding comma).
      key.erase(key[le - 1] == ',' ? le - 1 : le);
      auto [it, fresh] = bucket_cumulative.try_emplace(key, value);
      if (!fresh) {
        EXPECT_GE(value, it->second) << "non-monotone buckets: " << line;
        it->second = value;
      }
      if (le_value == "+Inf") bucket_inf[key] = value;
    } else if (line.find("_count") != std::string::npos &&
               line.find("_count ") != std::string::npos) {
      histogram_count[line.substr(0, line.find("_count"))] = value;
    }
  }
  for (const auto& [key, inf] : bucket_inf) {
    // key is "name_bucket{labels" or "name_bucket"; recover the name.
    const std::string name = key.substr(0, key.find("_bucket"));
    if (histogram_count.count(name) != 0) {
      // Unlabeled histogram: +Inf must match the _count line.
      EXPECT_EQ(inf, histogram_count[name]) << name;
    }
  }
}

TEST(BackendScrape, WellFormedLabeledAndConserved) {
  auto schema = Schema::Create();
  Stack stack;

  // Real traffic: one exact lifted, one exact brute-side, one seeded
  // sampling run, one structured failure.
  ShapleyClient client("127.0.0.1", stack.server.port());
  SvcRequest easy;
  easy.query = ParseQuery(schema, "R(x), S(x,y)");
  easy.db = ParsePartitionedDatabase(schema, "R(a) S(a,b) | S(a,c)");
  EXPECT_TRUE(client.Compute(easy).ok());

  SvcRequest hard = easy;
  hard.query = ParseQuery(schema, "R(x), S(x,y), T(y)");
  hard.db = ParsePartitionedDatabase(schema,
                                     "R(a) S(a,b) T(b) | T(c) S(a,c)");
  EXPECT_TRUE(client.Compute(hard).ok());

  SvcRequest sampled = hard;
  sampled.engine = "sampling";
  sampled.approx.epsilon = 0.2;
  sampled.approx.seed = 7;
  const SvcResponse sampled_response = client.Compute(sampled);
  EXPECT_TRUE(sampled_response.ok());
  ASSERT_TRUE(sampled_response.approx.has_value());

  SvcRequest bad = easy;
  bad.engine = "no-such-engine";
  EXPECT_FALSE(client.Compute(bad).ok());

  const std::string text = Scrape("127.0.0.1", stack.server.port());
  ExpectWellFormed(text);

  // Identity and role.
  EXPECT_NE(
      text.find("shapley_build_info{version=\"" +
                std::string(kShapleyVersion) + "\",role=\"backend\"} 1"),
      std::string::npos);

  // Latency series labeled by what served each request.
  EXPECT_NE(text.find("# TYPE shapley_request_latency_ms histogram"),
            std::string::npos);
  EXPECT_NE(text.find("engine=\"" + sampled_response.engine +
                      "\",mode=\"all-values\",strategy=\"" +
                      sampled_response.approx->strategy + "\""),
            std::string::npos);
  EXPECT_NE(text.find("strategy=\"exact\""), std::string::npos);
  EXPECT_NE(text.find("engine=\"none\""), std::string::npos);  // The failure.
  EXPECT_NE(text.find("shapley_queue_depth_bucket"), std::string::npos);

  // Service counters crossed into the scrape, and the drained service
  // self-checks: conservation error 0, submitted == 4.
  EXPECT_NE(text.find("shapley_service_requests_submitted_total 4"),
            std::string::npos);
  EXPECT_NE(text.find("shapley_service_requests_failed_total 1"),
            std::string::npos);
  EXPECT_NE(text.find("shapley_service_stats_conservation_error 0"),
            std::string::npos);

  // Transport counters are role-labeled.
  EXPECT_NE(text.find("shapley_server_requests_served_total{role="
                      "\"backend\"}"),
            std::string::npos);
}

TEST(RouterScrape, RouterSeriesAndBackendDisjointness) {
  auto schema = Schema::Create();
  std::vector<std::unique_ptr<Stack>> backends;
  std::vector<std::string> specs;
  for (size_t i = 0; i < 2; ++i) {
    backends.push_back(std::make_unique<Stack>());
    specs.push_back("127.0.0.1:" +
                    std::to_string(backends.back()->server.port()));
  }
  cluster::RouterOptions options;
  options.health_poll_ms = 0;
  cluster::ShardRouter router(specs, options);
  router.Start();

  ShapleyClient client("127.0.0.1", router.port());
  SvcRequest request;
  request.query = ParseQuery(schema, "R(x), S(x,y)");
  request.db = ParsePartitionedDatabase(schema, "R(a) S(a,b) | S(a,c)");
  EXPECT_TRUE(client.Compute(request).ok());

  const std::string router_text = Scrape("127.0.0.1", router.port());
  ExpectWellFormed(router_text);
  EXPECT_NE(router_text.find("shapley_router_requests_routed_total 1"),
            std::string::npos);
  EXPECT_NE(router_text.find("shapley_build_info{version=\"" +
                             std::string(kShapleyVersion) +
                             "\",role=\"router\"} 1"),
            std::string::npos);
  for (const std::string& spec : specs) {
    EXPECT_NE(router_text.find("shapley_router_backend_healthy{backend=\"" +
                               spec + "\"} 1"),
              std::string::npos);
    EXPECT_NE(router_text.find("shapley_router_backend_routed_total{"
                               "backend=\"" + spec + "\"}"),
              std::string::npos);
  }
  EXPECT_NE(router_text.find(
                "shapley_router_request_latency_ms_bucket{endpoint="
                "\"compute\""),
            std::string::npos);

  // Full series disjointness against the backend that served the request:
  // no sample line identity appears in both scrapes.
  const std::string backend_text =
      Scrape("127.0.0.1", backends[0]->server.port());
  ExpectWellFormed(backend_text);
  std::set<std::string> router_series;
  for (const std::string& line : Lines(router_text)) {
    if (line[0] != '#') router_series.insert(SeriesKey(line));
  }
  for (const std::string& line : Lines(backend_text)) {
    if (line[0] == '#') continue;
    EXPECT_EQ(router_series.count(SeriesKey(line)), 0u)
        << "series in BOTH scrapes: " << SeriesKey(line);
  }
  // And no service-layer series on the router (it computes nothing) —
  // the phase/cache profiling families included: those measure REAL work,
  // which only backends perform.
  EXPECT_EQ(router_text.find("shapley_service_"), std::string::npos);
  EXPECT_EQ(router_text.find("shapley_phase_duration_ms"), std::string::npos);
  EXPECT_EQ(router_text.find("shapley_cache_"), std::string::npos);
  EXPECT_EQ(backend_text.find("shapley_router_"), std::string::npos);

  router.Stop();
}

TEST(TraceWire, OptInSpansCrossTheWire) {
  auto schema = Schema::Create();
  Stack stack;
  ShapleyClient client("127.0.0.1", stack.server.port());

  SvcRequest request;
  request.query = ParseQuery(schema, "R(x), S(x,y)");
  request.db = ParsePartitionedDatabase(schema, "R(a) S(a,b) | S(a,c)");

  // Off by default: no trace block, no spans.
  const SvcResponse untraced = client.Compute(request);
  EXPECT_TRUE(untraced.ok());
  EXPECT_FALSE(untraced.trace.has_value());

  request.trace = true;
  const SvcResponse traced = client.Compute(request);
  EXPECT_TRUE(traced.ok());
  ASSERT_TRUE(traced.trace.has_value());
  const obs::RequestTrace& trace = *traced.trace;

  // ONE tree: a "backend" root whose direct children are the serving
  // phases in wall-clock order, every child nested in its parent's
  // [start, end) window.
  EXPECT_TRUE(trace.context.valid());
  EXPECT_EQ(trace.root.name, "backend");
  EXPECT_TRUE(obs::WellNested(trace.root));
  EXPECT_GT(trace.TotalMs(), 0.0);
  std::vector<std::string> phases;
  for (const obs::TraceSpan& child : trace.root.children) {
    phases.push_back(child.name);
  }
  EXPECT_EQ(phases, (std::vector<std::string>{"decode", "route", "engine",
                                              "encode"}));

  // The cache probe lives INSIDE route, tagged with its outcome.
  const obs::TraceSpan* route = trace.Find("route");
  ASSERT_NE(route, nullptr);
  ASSERT_EQ(route->children.size(), 1u);
  EXPECT_EQ(route->children[0].name, "cache");
  const std::string* hit = route->children[0].FindAttr("hit");
  ASSERT_NE(hit, nullptr);
  EXPECT_TRUE(*hit == "true" || *hit == "false");

  // The engine span carries its identity and cache deltas, and the
  // deep-path hooks decompose it: compile / delta / accumulate for an
  // exact engine.
  const obs::TraceSpan* engine = trace.Find("engine");
  ASSERT_NE(engine, nullptr);
  const std::string* engine_name = engine->FindAttr("engine");
  ASSERT_NE(engine_name, nullptr);
  EXPECT_EQ(*engine_name, traced.engine);
  EXPECT_NE(engine->FindAttr("cache_hits"), nullptr);
  EXPECT_NE(engine->FindAttr("cache_misses"), nullptr);
  for (const char* deep : {"compile", "delta", "accumulate"}) {
    ASSERT_NE(trace.Find(deep), nullptr) << deep;
  }

  // The trace id is a pure function of the request bytes: the same
  // request traced again reports the SAME id.
  const SvcResponse again = client.Compute(request);
  ASSERT_TRUE(again.trace.has_value());
  EXPECT_EQ(again.trace->context.TraceIdHex(), trace.context.TraceIdHex());

  // The latency histogram observed all three requests, and the span
  // durations fed the scrape-time profiling families: per-phase duration
  // histograms (traced requests only) and per-table cache counters.
  const std::string text = Scrape("127.0.0.1", stack.server.port());
  EXPECT_NE(text.find("shapley_request_latency_ms_count{engine=\"" +
                      traced.engine + "\",mode=\"all-values\","
                      "strategy=\"exact\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE shapley_phase_duration_ms histogram"),
            std::string::npos);
  for (const char* phase : {"decode", "engine", "compile", "accumulate"}) {
    EXPECT_NE(text.find("shapley_phase_duration_ms_count{phase=\"" +
                        std::string(phase) + "\"} 2"),
              std::string::npos)
        << phase;
  }
  for (const char* family :
       {"shapley_cache_hits_total{table=\"counts\"}",
        "shapley_cache_misses_total{table=\"counts\"}",
        "shapley_cache_inserts_total{table=\"circuits\"}",
        "shapley_cache_evictions_total{table=\"memos\"}"}) {
    EXPECT_NE(text.find(family), std::string::npos) << family;
  }
}

}  // namespace
}  // namespace shapley
