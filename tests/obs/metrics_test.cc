// Unit tests of the metrics registry (obs/metrics.h) and the shared stats
// codec (obs/stats_json.h):
//
//  (a) instrument semantics: counters, gauges, fixed-bucket histograms,
//      identical (name, labels) returning the SAME handle, and concurrent
//      Observe/Inc landing every event;
//  (b) exposition: Prometheus text well-formedness (one HELP/TYPE per
//      family, no duplicate series lines), CUMULATIVE histogram buckets
//      ending at +Inf == _count, label-value escaping, and deterministic
//      byte-identical re-renders;
//  (c) misuse: kind mismatch and bucket-layout mismatch throw
//      std::logic_error, invalid metric/label names std::invalid_argument;
//  (d) the ONE stats serialization path: ServiceStatsJson /
//      ServerCountersJson / ExecStatsJson render BYTE-STABLE key orders
//      (asserted against literal JSON), and ExecStats::ToJson is that very
//      codec;
//  (e) the conservation invariant submitted == completed + failed +
//      inflight, hammered through a live ShapleyService from many client
//      threads and asserted after the drain.

#include "shapley/obs/metrics.h"

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "shapley/data/parser.h"
#include "shapley/obs/stats_json.h"
#include "shapley/query/query_parser.h"
#include "shapley/service/shapley_service.h"

namespace shapley::obs {
namespace {

TEST(MetricsInstruments, CounterGaugeBasics) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("test_events_total", "events");
  counter->Inc();
  counter->Inc(41);
  EXPECT_EQ(counter->value(), 42u);

  Gauge* gauge = registry.GetGauge("test_depth", "depth");
  gauge->Set(2.5);
  EXPECT_DOUBLE_EQ(gauge->value(), 2.5);

  // Same (name, labels) → the SAME instrument, not a fresh zero.
  EXPECT_EQ(registry.GetCounter("test_events_total", "events"), counter);
  // Different labels → a distinct series of the same family.
  Counter* labeled =
      registry.GetCounter("test_events_total", "events", {{"kind", "a"}});
  EXPECT_NE(labeled, counter);
  EXPECT_EQ(registry.GetCounter("test_events_total", "events",
                                {{"kind", "a"}}),
            labeled);
}

TEST(MetricsInstruments, HistogramBucketPlacement) {
  Histogram histogram({1.0, 2.0, 4.0});
  histogram.Observe(0.5);   // ≤ 1
  histogram.Observe(1.0);   // ≤ 1 (bounds are inclusive, le semantics)
  histogram.Observe(3.0);   // ≤ 4
  histogram.Observe(100.0); // +Inf
  EXPECT_EQ(histogram.bucket_count(0), 2u);
  EXPECT_EQ(histogram.bucket_count(1), 0u);
  EXPECT_EQ(histogram.bucket_count(2), 1u);
  EXPECT_EQ(histogram.bucket_count(3), 1u);  // +Inf
  EXPECT_EQ(histogram.count(), 4u);
  EXPECT_DOUBLE_EQ(histogram.sum(), 104.5);
}

TEST(MetricsInstruments, ConcurrentUpdatesLoseNothing) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("test_hits_total", "hits");
  Histogram* histogram =
      registry.GetHistogram("test_ms", "ms", {1.0, 10.0, 100.0});
  constexpr size_t kThreads = 8;
  constexpr size_t kPerThread = 5000;
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (size_t i = 0; i < kPerThread; ++i) {
        counter->Inc();
        histogram->Observe(static_cast<double>((t + i) % 120));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter->value(), kThreads * kPerThread);
  EXPECT_EQ(histogram->count(), kThreads * kPerThread);
  uint64_t total = 0;
  for (size_t i = 0; i <= histogram->upper_bounds().size(); ++i) {
    total += histogram->bucket_count(i);
  }
  EXPECT_EQ(total, kThreads * kPerThread);
}

TEST(MetricsRegistryMisuse, KindAndBucketMismatchesThrow) {
  MetricsRegistry registry;
  registry.GetCounter("test_a_total", "a");
  EXPECT_THROW(registry.GetGauge("test_a_total", "a"), std::logic_error);
  EXPECT_THROW(registry.GetHistogram("test_a_total", "a", {1.0}),
               std::logic_error);
  registry.GetHistogram("test_h", "h", {1.0, 2.0});
  EXPECT_THROW(registry.GetHistogram("test_h", "h", {1.0, 3.0}),
               std::logic_error);
  // Bounds must be strictly increasing.
  EXPECT_THROW(registry.GetHistogram("test_bad", "h", {2.0, 1.0}),
               std::invalid_argument);
  EXPECT_THROW(registry.GetHistogram("test_bad2", "h", {1.0, 1.0}),
               std::invalid_argument);
}

TEST(MetricsRegistryMisuse, InvalidNamesThrow) {
  MetricsRegistry registry;
  EXPECT_THROW(registry.GetCounter("1leading_digit", "x"),
               std::invalid_argument);
  EXPECT_THROW(registry.GetCounter("has-dash", "x"), std::invalid_argument);
  EXPECT_THROW(registry.GetCounter("", "x"), std::invalid_argument);
  EXPECT_THROW(registry.GetCounter("ok_name", "x", {{"bad-label", "v"}}),
               std::invalid_argument);
  // Colons are legal in metric names but not label names.
  registry.GetCounter("ns:ok_total", "x");
  EXPECT_THROW(registry.GetCounter("ok2_total", "x", {{"a:b", "v"}}),
               std::invalid_argument);
}

TEST(MetricsExposition, LabelEscaping) {
  EXPECT_EQ(EscapeLabelValue("plain"), "plain");
  EXPECT_EQ(EscapeLabelValue("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(SeriesText("m", {{"k", "v\"w"}}), "m{k=\"v\\\"w\"}");
  EXPECT_EQ(SeriesText("m", {}), "m");

  MetricsRegistry registry;
  registry.GetCounter("test_esc_total", "esc", {{"q", "say \"hi\"\n"}})
      ->Inc();
  const std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("test_esc_total{q=\"say \\\"hi\\\"\\n\"} 1"),
            std::string::npos);
}

// Splits an exposition into its non-comment series lines.
std::vector<std::string> SeriesLines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '#') lines.push_back(line);
  }
  return lines;
}

TEST(MetricsExposition, WellFormedDeterministicAndDuplicateFree) {
  MetricsRegistry registry;
  registry.GetCounter("test_requests_total", "requests",
                      {{"engine", "lifted"}})->Inc(3);
  registry.GetCounter("test_requests_total", "requests",
                      {{"engine", "brute"}})->Inc();
  registry.GetGauge("test_inflight", "inflight")->Set(2);
  Histogram* histogram =
      registry.GetHistogram("test_latency_ms", "latency",
                            {1.0, 10.0}, {{"mode", "all-values"}});
  histogram->Observe(0.5);
  histogram->Observe(5.0);
  histogram->Observe(50.0);

  const std::string text = registry.RenderPrometheus();

  // One HELP and one TYPE per family, HELP before TYPE before series.
  for (const char* family :
       {"test_requests_total", "test_inflight", "test_latency_ms"}) {
    const std::string help = std::string("# HELP ") + family + " ";
    const std::string type = std::string("# TYPE ") + family + " ";
    ASSERT_NE(text.find(help), std::string::npos) << family;
    EXPECT_EQ(text.find(help), text.rfind(help)) << family;
    EXPECT_EQ(text.find(type), text.rfind(type)) << family;
    EXPECT_LT(text.find(help), text.find(type)) << family;
  }
  EXPECT_NE(text.find("# TYPE test_requests_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE test_inflight gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE test_latency_ms histogram"),
            std::string::npos);

  // No series line occurs twice.
  std::map<std::string, int> seen;
  for (const std::string& line : SeriesLines(text)) {
    EXPECT_EQ(++seen[line], 1) << "duplicate series line: " << line;
  }

  // A scrape is a pure function of the registry state.
  EXPECT_EQ(text, registry.RenderPrometheus());
}

TEST(MetricsExposition, HistogramBucketsAreCumulativeAndMonotone) {
  MetricsRegistry registry;
  Histogram* histogram =
      registry.GetHistogram("test_ms", "ms", {1.0, 5.0, 25.0});
  for (double v : {0.5, 0.7, 3.0, 20.0, 20.0, 100.0}) histogram->Observe(v);

  const std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("test_ms_bucket{le=\"1\"} 2"), std::string::npos);
  EXPECT_NE(text.find("test_ms_bucket{le=\"5\"} 3"), std::string::npos);
  EXPECT_NE(text.find("test_ms_bucket{le=\"25\"} 5"), std::string::npos);
  EXPECT_NE(text.find("test_ms_bucket{le=\"+Inf\"} 6"), std::string::npos);
  EXPECT_NE(text.find("test_ms_count 6"), std::string::npos);

  // Monotonicity, parsed back generically: cumulative counts never
  // decrease along the bucket list, and +Inf equals _count.
  uint64_t previous = 0;
  uint64_t inf_value = 0;
  for (const std::string& line : SeriesLines(text)) {
    if (line.rfind("test_ms_bucket", 0) != 0) continue;
    const uint64_t value =
        std::stoull(line.substr(line.rfind(' ') + 1));
    EXPECT_GE(value, previous) << line;
    previous = value;
    if (line.find("+Inf") != std::string::npos) inf_value = value;
  }
  EXPECT_EQ(inf_value, histogram->count());
}

TEST(MetricsExposition, CollectorsRunAtScrapeTime) {
  MetricsRegistry registry;
  std::atomic<uint64_t> external{0};
  Counter* mirror = registry.GetCounter("test_mirror_total", "mirror");
  registry.AddCollector([&] { mirror->Set(external.load()); });
  external = 7;
  EXPECT_NE(registry.RenderPrometheus().find("test_mirror_total 7"),
            std::string::npos);
  external = 19;
  EXPECT_NE(registry.RenderPrometheus().find("test_mirror_total 19"),
            std::string::npos);
}

// ---- The shared stats codec: byte-stable key order. ----

TEST(StatsJson, ServiceStatsByteStableOrder) {
  ServiceStats stats;
  stats.requests_submitted = 10;
  stats.requests_completed = 7;
  stats.requests_failed = 2;
  stats.requests_inflight = 1;
  stats.verdict_cache_hits = 5;
  stats.verdict_cache_misses = 4;
  stats.pool_threads = 3;
  stats.pool_tasks_executed = 11;
  stats.cache_entries = 6;
  stats.cache_bytes = 512;
  stats.cache_hits = 8;
  stats.cache_misses = 9;
  stats.cache_evictions = 1;
  EXPECT_EQ(
      ServiceStatsJson(stats).Dump(),
      "{\"requests_submitted\":10,\"requests_completed\":7,"
      "\"requests_failed\":2,\"requests_inflight\":1,"
      "\"verdict_cache_hits\":5,\"verdict_cache_misses\":4,"
      "\"pool_threads\":3,\"pool_tasks_executed\":11,\"cache_entries\":6,"
      "\"cache_bytes\":512,\"cache_hits\":8,\"cache_misses\":9,"
      "\"cache_evictions\":1}");
}

TEST(StatsJson, ServerCountersByteStableOrder) {
  net::ServerCounters counters;
  counters.connections_accepted = 4;
  counters.connections_rejected = 1;
  counters.connections_live = 2;
  counters.requests_served = 9;
  EXPECT_EQ(ServerCountersJson(counters).Dump(),
            "{\"connections_accepted\":4,\"connections_rejected\":1,"
            "\"connections_live\":2,\"requests_served\":9}");
}

TEST(StatsJson, ExecStatsByteStableOrderAndToJsonIsTheCodec) {
  ExecStats stats;
  stats.instances = 2;
  stats.facts = 12;
  stats.threads = 4;
  stats.tasks = 24;
  stats.oracle_calls = 100;
  stats.cache_hits = 60;
  stats.cache_misses = 40;
  stats.cache_bytes = 2048;
  stats.verdict_cache_hits = 1;
  stats.wall_ms = 1.5;
  EXPECT_EQ(ExecStatsJson(stats).Dump(),
            "{\"instances\":2,\"facts\":12,\"threads\":4,\"tasks\":24,"
            "\"oracle_calls\":100,\"cache_hits\":60,\"cache_misses\":40,"
            "\"cache_bytes\":2048,\"verdict_cache_hits\":1,"
            "\"wall_ms\":1.5}");
  // ExecStats::ToJson IS the shared codec — not a parallel serializer.
  EXPECT_EQ(stats.ToJson(), ExecStatsJson(stats).Dump());
}

// ---- Conservation invariant, hammered through a live service. ----

TEST(StatsConservation, HoldsAfterConcurrentHammer) {
  auto schema = Schema::Create();
  UcqPtr ucq = ParseUcq(schema, "R(x), S(x,y)");
  QueryPtr query = ucq->disjuncts()[0];
  PartitionedDatabase db =
      ParsePartitionedDatabase(schema, "R(a) S(a,b) | S(a,c)");

  ServiceOptions options;
  options.threads = 4;
  ShapleyService service(options);
  constexpr size_t kClients = 6;
  constexpr size_t kPerClient = 40;
  std::vector<std::thread> clients;
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      for (size_t i = 0; i < kPerClient; ++i) {
        SvcRequest request;
        request.query = query;
        request.db = db;
        // A mix of successes and structured failures: conservation must
        // count BOTH terminal states.
        if (i % 5 == 4) request.engine = "no-such-engine";
        service.Compute(request);
      }
    });
  }
  for (std::thread& thread : clients) thread.join();

  // Quiescent now (Compute is synchronous and every client joined).
  const ServiceStats stats = service.Stats();
  EXPECT_TRUE(StatsConserved(stats));
  EXPECT_EQ(StatsConservationError(stats), 0);
  EXPECT_EQ(stats.requests_submitted, kClients * kPerClient);
  EXPECT_EQ(stats.requests_inflight, 0u);
  EXPECT_GT(stats.requests_failed, 0u);  // The bad-engine slice.
}

}  // namespace
}  // namespace shapley::obs
