// The record/replay harness (obs/reqlog.h + obs/replay.h):
//
//  (a) the ndjson writer round-trips exactly — bodies with quotes,
//      backslashes and newlines come back byte-identical, timestamps are
//      monotone, and malformed/truncated logs fail loudly with a
//      line-numbered error instead of replaying a prefix;
//  (b) a live HttpServer captures its POST traffic verbatim (before
//      decoding — malformed bodies included), in arrival order;
//  (c) the canonicalizers: "stats"/"trace" stripped RECURSIVELY at every
//      object depth (the trace block is a nested span tree), unparsable
//      text passed through, batch lines id-sorted so the canonical form
//      is completion-order independent;
//  (d) END TO END: a captured mixed run (exact, sampling, batch, error
//      request) replayed against a FRESH server reproduces every response
//      BIT-IDENTICALLY in canonical form, with zero transport errors —
//      the determinism contract of the serving stack, proven across
//      server instances over real TCP.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "shapley/data/parser.h"
#include "shapley/net/client.h"
#include "shapley/net/codec.h"
#include "shapley/net/server.h"
#include "shapley/obs/replay.h"
#include "shapley/obs/reqlog.h"
#include "shapley/query/query_parser.h"
#include "shapley/service/shapley_service.h"

namespace shapley::obs {
namespace {

using net::Json;
using net::ShapleyClient;

QueryPtr ParseQuery(const std::shared_ptr<Schema>& schema,
                    std::string_view text) {
  UcqPtr ucq = ParseUcq(schema, text);
  if (ucq->disjuncts().size() == 1) return ucq->disjuncts()[0];
  return ucq;
}

/// RAII temp file in the test's working directory.
struct TempPath {
  explicit TempPath(std::string name) : path(std::move(name)) {}
  ~TempPath() { std::remove(path.c_str()); }
  const std::string path;
};

TEST(RequestLog, RoundTripsEscapedBodiesExactly) {
  TempPath temp("obs_reqlog_roundtrip.ndjson");
  const std::vector<std::string> bodies = {
      R"js({"query": "R(?x)", "mode": "all-values"})js",
      "{not even json \"with\\quotes\"}",
      std::string("line\nbreaks\tand\x01" "control"),
      "",
  };
  {
    RequestLogWriter writer(temp.path);
    for (const std::string& body : bodies) {
      writer.Append("/v1/compute", body);
    }
    EXPECT_EQ(writer.entries(), bodies.size());
    writer.Flush();
  }
  std::string error;
  auto log = ReadRequestLog(temp.path, &error);
  ASSERT_TRUE(log.has_value()) << error;
  ASSERT_EQ(log->size(), bodies.size());
  double previous = 0.0;
  for (size_t i = 0; i < bodies.size(); ++i) {
    EXPECT_EQ((*log)[i].body, bodies[i]) << "entry " << i;
    EXPECT_EQ((*log)[i].target, "/v1/compute");
    EXPECT_GE((*log)[i].t_ms, previous);
    previous = (*log)[i].t_ms;
  }
}

TEST(RequestLog, MalformedLogsFailLoudly) {
  std::string error;
  // Broken JSON on line 2 (line 1 is fine).
  auto log = ParseRequestLog(
      "{\"t_ms\":1,\"target\":\"/v1/compute\",\"body\":\"x\"}\n{oops\n",
      &error);
  EXPECT_FALSE(log.has_value());
  EXPECT_EQ(error.rfind("line 2:", 0), 0u) << error;

  // Well-formed JSON missing a required member.
  log = ParseRequestLog("{\"t_ms\":1,\"target\":\"/v1/compute\"}\n", &error);
  EXPECT_FALSE(log.has_value());
  EXPECT_NE(error.find("expected {t_ms, target, body}"), std::string::npos);

  // Missing file.
  log = ReadRequestLog("no/such/dir/capture.ndjson", &error);
  EXPECT_FALSE(log.has_value());

  // Empty text is a valid empty capture.
  log = ParseRequestLog("", &error);
  ASSERT_TRUE(log.has_value());
  EXPECT_TRUE(log->empty());
}

TEST(Canonicalize, StripsVolatileMembersRecursivelyAndSortsBatchLines) {
  // Top-level stats/trace go — the trace block being a full span TREE —
  // and everything else survives in order.
  EXPECT_EQ(CanonicalResponseBody(
                R"({"mode":"all-values","stats":{"queue_ms":1.5},)"
                R"("trace":{"trace_id":"00ab","root":{"name":"backend",)"
                R"("ms":2.5,"children":[{"name":"engine","ms":1.0}]}},)"
                R"("status":200})"),
            R"({"mode":"all-values","status":200})");
  // The strip is RECURSIVE: stats/trace buried inside nested objects and
  // array elements go too (a shallow strip would leave these behind and
  // break bit-identical replay comparison).
  EXPECT_EQ(CanonicalResponseBody(
                R"({"id":3,"inner":{"trace":{"root":{"name":"x"}},)"
                R"("value":7},"list":[{"stats":{"exec_ms":9},"ok":true}]})"),
            R"({"id":3,"inner":{"value":7},"list":[{"ok":true}]})");
  // Unparsable text passes through verbatim (comparisons then fail loudly).
  EXPECT_EQ(CanonicalResponseBody("not json"), "not json");

  // Batch lines sort by id, each canonicalized; completion order is gone.
  const std::string canonical = CanonicalBatchBody({
      R"({"id":2,"status":200,"stats":{"exec_ms":9}})",
      R"({"id":0,"status":200})",
      R"({"id":1,"status":400})",
  });
  EXPECT_EQ(canonical,
            "{\"id\":0,\"status\":200}\n{\"id\":1,\"status\":400}\n"
            "{\"id\":2,\"status\":200}");
}

TEST(RecordReplay, CapturesVerbatimAndReplaysBitIdentically) {
  TempPath temp("obs_reqlog_e2e.ndjson");
  auto schema = Schema::Create();

  // The mixed run: exact lifted, exact brute-side, seeded sampling, a
  // malformed body (its 400 must replay too), and a batch of all of them.
  std::vector<std::string> singles;
  {
    SvcRequest easy;
    easy.query = ParseQuery(schema, "R(x), S(x,y)");
    easy.db = ParsePartitionedDatabase(schema, "R(a) S(a,b) | S(a,c)");
    singles.push_back(net::EncodeRequest(easy).Dump());
    SvcRequest hard = easy;
    hard.query = ParseQuery(schema, "R(x), S(x,y), T(y)");
    hard.db = ParsePartitionedDatabase(schema,
                                       "R(a) S(a,b) T(b) | T(c) S(a,c)");
    singles.push_back(net::EncodeRequest(hard).Dump());
    SvcRequest sampled = hard;
    sampled.engine = "sampling";
    sampled.approx.epsilon = 0.2;
    sampled.approx.seed = 11;
    singles.push_back(net::EncodeRequest(sampled).Dump());
  }
  Json batch;
  {
    Json requests = Json::Arr();
    for (const std::string& body : singles) {
      requests.Push(*Json::Parse(body));
    }
    batch.Set("requests", std::move(requests));
  }

  std::vector<std::string> sent_bodies;
  std::vector<std::string> recorded;  // Canonical responses, send order.
  {
    RequestLogWriter capture(temp.path);
    ServiceOptions service_options;
    service_options.threads = 2;
    ShapleyService service(service_options);
    net::ServerOptions server_options;
    server_options.request_log = &capture;
    net::HttpServer server(&service, server_options);
    server.Start();
    ShapleyClient client("127.0.0.1", server.port());

    int status = 0;
    for (const std::string& body : singles) {
      sent_bodies.push_back(body);
      recorded.push_back(
          CanonicalResponseBody(client.RawCompute(body, &status)));
      EXPECT_EQ(status, 200);
    }
    sent_bodies.push_back("{broken");
    recorded.push_back(
        CanonicalResponseBody(client.RawCompute("{broken", &status)));
    EXPECT_EQ(status, 400);
    sent_bodies.push_back(batch.Dump());
    std::vector<std::string> lines;
    client.RawBatch(batch.Dump(),
                    [&](const std::string& line) { lines.push_back(line); });
    recorded.push_back(CanonicalBatchBody(lines));
    server.Stop();
    capture.Flush();
    EXPECT_EQ(capture.entries(), sent_bodies.size());
  }

  // (b) the capture is verbatim and in arrival order; GETs (none sent
  // here, but /healthz probes would be) never pollute it.
  std::string error;
  auto log = ReadRequestLog(temp.path, &error);
  ASSERT_TRUE(log.has_value()) << error;
  ASSERT_EQ(log->size(), sent_bodies.size());
  for (size_t i = 0; i < sent_bodies.size(); ++i) {
    EXPECT_EQ((*log)[i].body, sent_bodies[i]) << "entry " << i;
    EXPECT_EQ((*log)[i].target,
              i + 1 == sent_bodies.size() ? "/v1/batch" : "/v1/compute");
  }

  // (d) replay against a FRESH server: bit-identical canonical responses,
  // zero drops — at max speed and paced.
  for (double speed : {0.0, 4.0}) {
    SCOPED_TRACE("speed " + std::to_string(speed));
    ServiceOptions service_options;
    service_options.threads = 2;
    ShapleyService service(service_options);
    net::HttpServer server(&service, {});
    server.Start();
    ReplayOptions options;
    options.speed = speed;
    const ReplayResult result =
        Replay(*log, "127.0.0.1", server.port(), options);
    server.Stop();

    EXPECT_EQ(result.requests_sent, log->size());
    EXPECT_EQ(result.transport_errors, 0u);
    ASSERT_EQ(result.responses.size(), recorded.size());
    for (size_t i = 0; i < recorded.size(); ++i) {
      EXPECT_EQ(result.responses[i], recorded[i]) << "entry " << i;
      EXPECT_FALSE(result.responses[i].empty()) << "dropped entry " << i;
    }
  }
}

}  // namespace
}  // namespace shapley::obs
