// The Space-Saving heavy-hitter sketch (obs/heavy.h):
//
//  (a) under capacity the sketch is EXACT: counts match true frequencies,
//      errors are zero, and the summary is canonically ordered;
//  (b) eviction is deterministic — the minimum-count entry goes, ties
//      broken by key ASCENDING — so two sketches fed the same stream in
//      the same order summarize IDENTICALLY, and the admitted key carries
//      the evicted floor as its error (truth ∈ [count - error, count]);
//  (c) the mergeable-summary contract: MergeHeavySummaries is exact for
//      ≤ K distinct keys, ASSOCIATIVE, commutative, and identity-friendly
//      — the algebra the router's fleet-wide /v1/debug/hot fold relies on;
//  (d) the wire codec round-trips (HeavySummaryJson → ParseHeavySummary)
//      and rejects malformed payloads instead of guessing.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "shapley/net/json.h"
#include "shapley/obs/heavy.h"

namespace shapley::obs {
namespace {

using net::Json;

TEST(SpaceSaving, ExactUnderCapacityAndCanonicallyOrdered) {
  SpaceSaving sketch(/*k=*/4);
  sketch.Record("bravo");
  sketch.Record("alpha", 3);
  sketch.Record("bravo", 2);
  sketch.Record("charlie", 3);

  EXPECT_EQ(sketch.total(), 9u);
  EXPECT_EQ(sketch.evictions(), 0u);
  EXPECT_EQ(sketch.keys_tracked(), 3u);

  const HeavySummary summary = sketch.Summary();
  EXPECT_EQ(summary.k, 4u);
  EXPECT_EQ(summary.total, 9u);
  EXPECT_EQ(summary.evictions, 0u);
  // Count desc, key asc on the alpha/bravo/charlie tie at 3 — canonical.
  const std::vector<HeavyHitter> expect = {
      {"alpha", 3, 0}, {"bravo", 3, 0}, {"charlie", 3, 0}};
  EXPECT_EQ(summary.hitters, expect);
}

TEST(SpaceSaving, EvictionIsDeterministicWithKeyAscendingTies) {
  // Capacity 2: after a=5, b=2, the miss "c" must evict b (minimum) and
  // admit c with count min + 1 = 3, error min = 2.
  SpaceSaving sketch(/*k=*/2);
  sketch.Record("a", 5);
  sketch.Record("b", 2);
  sketch.Record("c");
  EXPECT_EQ(sketch.evictions(), 1u);
  HeavySummary summary = sketch.Summary();
  const std::vector<HeavyHitter> expect = {{"a", 5, 0}, {"c", 3, 2}};
  EXPECT_EQ(summary.hitters, expect);

  // A tie among minimum counts evicts the key-ASCENDING first — so the
  // same stream always produces the same sketch, arrival order of the
  // tied keys notwithstanding.
  SpaceSaving tied(/*k=*/2);
  tied.Record("zz", 4);
  tied.Record("mm", 4);
  tied.Record("qq");  // Tie at 4: "mm" < "zz" evicts, "zz" survives.
  const HeavySummary tied_summary = tied.Summary();
  const std::vector<HeavyHitter> tied_expect = {{"qq", 5, 4}, {"zz", 4, 0}};
  EXPECT_EQ(tied_summary.hitters, tied_expect);

  // Determinism end to end: the same stream through two sketches (and
  // through one sketch twice) summarizes identically.
  const std::vector<std::string> stream = {"x", "y", "z", "x", "w", "y",
                                           "v", "x", "u", "w", "x", "t"};
  SpaceSaving first(/*k=*/3);
  SpaceSaving second(/*k=*/3);
  for (const std::string& key : stream) {
    first.Record(key);
    second.Record(key);
  }
  EXPECT_EQ(first.Summary().hitters, second.Summary().hitters);
  EXPECT_EQ(first.Summary().evictions, second.Summary().evictions);
  // The Space-Saving invariant holds throughout: count ≥ true ≥
  // count - error for every tracked key ("x" appears 4 times).
  for (const HeavyHitter& hitter : first.Summary().hitters) {
    if (hitter.key == "x") {
      EXPECT_GE(hitter.count, 4u);
      EXPECT_LE(hitter.count - hitter.error, 4u);
    }
  }
}

TEST(MergeHeavySummaries, ExactAssociativeAndCommutativeUnderCapacity) {
  // Three disjoint-ish sketches of one logical stream: merged any way,
  // the result must equal the single-sketch truth (≤ K distinct keys).
  auto summarize = [](const std::vector<std::pair<std::string, uint64_t>>&
                          records) {
    SpaceSaving sketch(/*k=*/8);
    for (const auto& [key, weight] : records) sketch.Record(key, weight);
    return sketch.Summary();
  };
  const HeavySummary a = summarize({{"p", 4}, {"q", 1}});
  const HeavySummary b = summarize({{"q", 2}, {"r", 5}});
  const HeavySummary c = summarize({{"p", 1}, {"r", 1}, {"s", 3}});
  const HeavySummary truth =
      summarize({{"p", 5}, {"q", 3}, {"r", 6}, {"s", 3}});

  const HeavySummary ab_c = MergeHeavySummaries(MergeHeavySummaries(a, b), c);
  const HeavySummary a_bc = MergeHeavySummaries(a, MergeHeavySummaries(b, c));
  const HeavySummary ba_c = MergeHeavySummaries(MergeHeavySummaries(b, a), c);
  EXPECT_EQ(ab_c.hitters, truth.hitters);
  EXPECT_EQ(a_bc.hitters, truth.hitters);   // Associative.
  EXPECT_EQ(ba_c.hitters, truth.hitters);   // Commutative.
  EXPECT_EQ(ab_c.total, truth.total);
  EXPECT_EQ(a_bc.total, truth.total);

  // Merging with an empty summary is the identity.
  const HeavySummary empty;
  EXPECT_EQ(MergeHeavySummaries(a, empty).hitters, a.hitters);
  EXPECT_EQ(MergeHeavySummaries(empty, a).hitters, a.hitters);

  // Past capacity the union truncates to max(a.k, b.k) in canonical
  // order, and total/evictions still add exactly.
  SpaceSaving big(/*k=*/2);
  big.Record("m", 9);
  big.Record("n", 8);
  const HeavySummary truncated =
      MergeHeavySummaries(big.Summary(), summarize({{"p", 5}, {"q", 1}}));
  EXPECT_EQ(truncated.k, 8u);  // max(2, 8)
  const HeavySummary wide = MergeHeavySummaries(a, b);
  EXPECT_EQ(wide.k, 8u);
  SpaceSaving tiny_a(/*k=*/1);
  tiny_a.Record("m", 9);
  SpaceSaving tiny_b(/*k=*/1);
  tiny_b.Record("n", 8);
  const HeavySummary top1 =
      MergeHeavySummaries(tiny_a.Summary(), tiny_b.Summary());
  EXPECT_EQ(top1.k, 1u);
  ASSERT_EQ(top1.hitters.size(), 1u);  // Truncated to capacity...
  EXPECT_EQ(top1.hitters[0], (HeavyHitter{"m", 9, 0}));  // ...keeping top.
  EXPECT_EQ(top1.total, 17u);  // Totals add even past truncation.
}

TEST(HeavySummaryJson, RoundTripsAndRejectsMalformed) {
  SpaceSaving sketch(/*k=*/3);
  sketch.Record("alpha", 7);
  sketch.Record("beta", 2);
  sketch.Record("gamma", 2);
  sketch.Record("delta");  // Evicts one of the 2s.
  const HeavySummary summary = sketch.Summary();

  const Json wire = HeavySummaryJson(summary);
  const auto parsed = ParseHeavySummary(wire);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->k, summary.k);
  EXPECT_EQ(parsed->total, summary.total);
  EXPECT_EQ(parsed->evictions, summary.evictions);
  EXPECT_EQ(parsed->hitters, summary.hitters);
  // Canonical order → byte-stable wire: re-encoding the parse reproduces
  // the original dump exactly.
  EXPECT_EQ(HeavySummaryJson(*parsed).Dump(), wire.Dump());

  // Malformed payloads parse to nullopt, never to a guessed summary.
  EXPECT_FALSE(ParseHeavySummary(*Json::Parse("[]")).has_value());
  EXPECT_FALSE(
      ParseHeavySummary(*Json::Parse(R"({"k":3,"total":1})")).has_value());
  EXPECT_FALSE(ParseHeavySummary(
                   *Json::Parse(R"({"k":3,"total":1,"evictions":0,)"
                                R"("hitters":[{"key":"a"}]})"))
                   .has_value());
}

}  // namespace
}  // namespace shapley::obs
