// The slow-request capture (obs/slowlog.h):
//
//  (a) ShouldCapture is a pure threshold gate (0 disables), the ring
//      bounds residency at `capacity` keeping the NEWEST entries, and
//      total_captured counts every capture including overwritten ones;
//  (b) the wire shape round-trips: a /v1/debug/slow response body parses
//      back into Replay-ready LogEntries with bodies VERBATIM, and
//      malformed payloads are rejected without touching the output;
//  (c) END TO END: against a server whose threshold marks everything
//      slow, singles AND batch items land in the slow-log with their
//      verbatim POST bodies; fetched via GET /v1/debug/slow, parsed, and
//      replayed against a FRESH server, every outlier reproduces its
//      original response BIT-IDENTICALLY in canonical form — the
//      slow-log → replay triage workflow, proven over real TCP;
//  (d) a threshold far above real latencies captures NOTHING — fast
//      requests never pay the capture.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "shapley/data/parser.h"
#include "shapley/net/client.h"
#include "shapley/net/codec.h"
#include "shapley/net/json.h"
#include "shapley/net/server.h"
#include "shapley/obs/replay.h"
#include "shapley/obs/slowlog.h"
#include "shapley/query/query_parser.h"
#include "shapley/service/shapley_service.h"

namespace shapley::obs {
namespace {

using net::Json;
using net::ShapleyClient;

QueryPtr ParseQuery(const std::shared_ptr<Schema>& schema,
                    std::string_view text) {
  UcqPtr ucq = ParseUcq(schema, text);
  if (ucq->disjuncts().size() == 1) return ucq->disjuncts()[0];
  return ucq;
}

TEST(SlowLog, ThresholdGatesAndRingBoundsResidency) {
  SlowLog log(/*threshold_ms=*/10.0, /*capacity=*/2);
  EXPECT_FALSE(log.ShouldCapture(9.999));
  EXPECT_TRUE(log.ShouldCapture(10.0));
  EXPECT_TRUE(log.ShouldCapture(500.0));

  // Threshold 0 disables capture entirely.
  SlowLog disabled(/*threshold_ms=*/0.0, /*capacity=*/2);
  EXPECT_FALSE(disabled.ShouldCapture(1e9));

  for (int i = 0; i < 3; ++i) {
    SlowEntry entry;
    entry.target = "/v1/compute";
    entry.body = "body-" + std::to_string(i);
    entry.latency_ms = 10.0 + i;
    entry.status = 200;
    log.Capture(std::move(entry));
  }
  EXPECT_EQ(log.total_captured(), 3u);
  const auto snapshot = log.Snapshot();
  ASSERT_EQ(snapshot.size(), 2u);  // Bounded; the NEWEST two survive.
  EXPECT_EQ(snapshot[0].body, "body-1");
  EXPECT_EQ(snapshot[1].body, "body-2");
  EXPECT_GE(snapshot[1].t_ms, snapshot[0].t_ms);
}

TEST(SlowLog, WireShapeRoundTripsToReplayEntries) {
  SlowEntry entry;
  entry.t_ms = 12.5;
  entry.target = "/v1/compute";
  entry.body = R"js({"query":"R(?x)","mode":"all-values"})js";
  entry.latency_ms = 300.25;
  entry.status = 200;
  entry.engine = "sampling";
  entry.mode = "all-values";
  entry.strategy = "hoeffding";
  entry.shard_key_hash = 42;
  entry.trace_id = "00ab";

  // A /v1/debug/slow response carrying that one entry parses back into a
  // Replay-ready LogEntry with the body VERBATIM.
  Json body;
  body.Set("threshold_ms", Json::Number(250.0));
  body.Set("capacity", Json::Number(uint64_t{32}));
  body.Set("captured", Json::Number(uint64_t{1}));
  Json entries = Json::Arr();
  entries.Push(SlowEntryJson(entry));
  body.Set("entries", std::move(entries));

  std::vector<LogEntry> log;
  ASSERT_TRUE(ParseSlowLogBody(body.Dump(), &log));
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].t_ms, 12.5);
  EXPECT_EQ(log[0].target, "/v1/compute");
  EXPECT_EQ(log[0].body, entry.body);

  // Malformed payloads fail without touching the output.
  std::vector<LogEntry> untouched = log;
  EXPECT_FALSE(ParseSlowLogBody("not json", &untouched));
  EXPECT_FALSE(ParseSlowLogBody(R"({"captured":1})", &untouched));
  EXPECT_FALSE(ParseSlowLogBody(
      R"({"entries":[{"t_ms":1,"target":"/v1/compute"}]})", &untouched));
  EXPECT_EQ(untouched.size(), log.size());
}

TEST(SlowLogE2E, CapturesOutliersAndReplaysBitIdentically) {
  auto schema = Schema::Create();
  SvcRequest easy;
  easy.query = ParseQuery(schema, "R(x), S(x,y)");
  easy.db = ParsePartitionedDatabase(schema, "R(a) S(a,b) | S(a,c)");
  SvcRequest sampled;
  sampled.query = ParseQuery(schema, "R(x), S(x,y), T(y)");
  sampled.db =
      ParsePartitionedDatabase(schema, "R(a) S(a,b) T(b) | T(c) S(a,c)");
  sampled.engine = "sampling";
  sampled.approx.epsilon = 0.2;
  sampled.approx.seed = 11;
  const std::vector<std::string> singles = {
      net::EncodeRequest(easy).Dump(), net::EncodeRequest(sampled).Dump()};
  Json batch;
  {
    Json requests = Json::Arr();
    for (const std::string& body : singles) {
      requests.Push(*Json::Parse(body));
    }
    batch.Set("requests", std::move(requests));
  }

  std::string slow_body;
  std::vector<LogEntry> captured;
  std::vector<std::string> expected;  // Canonical response per entry.
  {
    // Threshold just above zero: EVERY request is an outlier — the
    // deterministic way to exercise the capture path.
    ServiceOptions service_options;
    service_options.threads = 1;
    ShapleyService service(service_options);
    net::ServerOptions server_options;
    server_options.slow_threshold_ms = 1e-6;
    net::HttpServer server(&service, server_options);
    server.Start();
    ShapleyClient client("127.0.0.1", server.port());

    int status = 0;
    for (const std::string& body : singles) {
      client.RawCompute(body, &status);
      EXPECT_EQ(status, 200);
    }
    client.RawBatch(batch.Dump(), [](const std::string&) {});

    slow_body = client.RawGet("/v1/debug/slow", &status);
    EXPECT_EQ(status, 200);
    ASSERT_TRUE(ParseSlowLogBody(slow_body, &captured));
    // 2 singles + 2 batch items, each batch item captured STANDALONE
    // under /v1/compute so it replays without the rest of its batch.
    ASSERT_EQ(captured.size(), 4u);
    for (const LogEntry& entry : captured) {
      EXPECT_EQ(entry.target, "/v1/compute");
      EXPECT_FALSE(entry.body.empty());
    }
    // The first two captures are the singles, bodies VERBATIM.
    EXPECT_EQ(captured[0].body, singles[0]);
    EXPECT_EQ(captured[1].body, singles[1]);
    server.Stop();
  }

  // Ground truth: what each captured body answers on a FRESH server (the
  // response's memo_hits figure depends on cache state, so the reference
  // run must start as cold as the replay target will).
  {
    ServiceOptions service_options;
    service_options.threads = 1;
    ShapleyService service(service_options);
    net::HttpServer server(&service, {});
    server.Start();
    ShapleyClient client("127.0.0.1", server.port());
    int status = 0;
    for (const LogEntry& entry : captured) {
      expected.push_back(
          CanonicalResponseBody(client.RawCompute(entry.body, &status)));
      EXPECT_EQ(status, 200);
    }
    server.Stop();
  }

  // Replay the parsed slow-log against a FRESH server: every outlier
  // reproduces bit-identically in canonical form.
  ServiceOptions service_options;
  service_options.threads = 1;
  ShapleyService service(service_options);
  net::HttpServer server(&service, {});
  server.Start();
  const ReplayResult result = Replay(captured, "127.0.0.1", server.port());
  server.Stop();

  EXPECT_EQ(result.requests_sent, captured.size());
  EXPECT_EQ(result.transport_errors, 0u);
  ASSERT_EQ(result.responses.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(result.responses[i], expected[i]) << "entry " << i;
    EXPECT_FALSE(result.responses[i].empty()) << "dropped entry " << i;
  }
}

TEST(SlowLogE2E, FastRequestsBelowThresholdAreNotCaptured) {
  auto schema = Schema::Create();
  SvcRequest easy;
  easy.query = ParseQuery(schema, "R(x), S(x,y)");
  easy.db = ParsePartitionedDatabase(schema, "R(a) S(a,b) | S(a,c)");

  ShapleyService service;
  net::ServerOptions server_options;
  server_options.slow_threshold_ms = 1e9;  // Nothing real is this slow.
  net::HttpServer server(&service, server_options);
  server.Start();
  ShapleyClient client("127.0.0.1", server.port());
  int status = 0;
  client.RawCompute(net::EncodeRequest(easy).Dump(), &status);
  EXPECT_EQ(status, 200);

  const std::string body = client.RawGet("/v1/debug/slow", &status);
  server.Stop();
  EXPECT_EQ(status, 200);
  const auto parsed = Json::Parse(body);
  ASSERT_TRUE(parsed.has_value());
  const Json* captured = parsed->Find("captured");
  ASSERT_NE(captured, nullptr);
  EXPECT_EQ(captured->IfUint64().value_or(99), 0u);
  const Json* entries = parsed->Find("entries");
  ASSERT_NE(entries, nullptr);
  EXPECT_TRUE(entries->IfArray() != nullptr && entries->IfArray()->empty());
}

}  // namespace
}  // namespace shapley::obs
