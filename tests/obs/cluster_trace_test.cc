// Cluster-propagated tracing and the router record/replay loop, over REAL
// TCP — a router fronting three in-process `serve` stacks:
//
//  (a) a traced routed compute comes back with ONE coherent tree: a
//      "router" root, a "hop" span tagged with the PREDICTED home shard,
//      and the backend's own decode → route(cache) → engine → encode
//      subtree (engine decomposed by the deep-path hooks) grafted under
//      the hop — with the trace id derived deterministically from the
//      request bytes, so the client can predict it; untraced requests
//      still cross with no trace block at all;
//  (b) under a mid-batch kill, every victim request's tree shows BOTH
//      hops — the failed one error-tagged on the dead backend, the retry
//      on the key's predicted fallback shard carrying the real subtree —
//      well-nested, with ZERO dropped ids;
//  (c) the router's HttpServer captures its POST traffic at the shared
//      pre-decode point (RouterOptions.server.request_log), and the
//      capture replays against a FRESH fleet bit-identically in canonical
//      form — the record/replay loop closed THROUGH the router.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "shapley/cluster/router.h"
#include "shapley/cluster/shard_map.h"
#include "shapley/data/parser.h"
#include "shapley/net/client.h"
#include "shapley/net/codec.h"
#include "shapley/net/server.h"
#include "shapley/obs/replay.h"
#include "shapley/obs/reqlog.h"
#include "shapley/obs/trace.h"
#include "shapley/query/query_parser.h"
#include "shapley/service/shapley_service.h"

namespace shapley {
namespace {

using cluster::RouterOptions;
using cluster::ShardRouter;
using net::Json;
using net::ShapleyClient;

QueryPtr ParseQuery(const std::shared_ptr<Schema>& schema,
                    std::string_view text) {
  UcqPtr ucq = ParseUcq(schema, text);
  if (ucq->disjuncts().size() == 1) return ucq->disjuncts()[0];
  return ucq;
}

/// One backend serving stack on an ephemeral port.
struct Stack {
  explicit Stack(ServiceOptions service_options = {.threads = 2})
      : service(service_options), server(&service) {
    server.Start();
  }
  ShapleyService service;
  net::HttpServer server;
};

/// Deterministic, fast-failover router options (see tests/cluster).
RouterOptions FastRouterOptions() {
  RouterOptions options;
  options.health_poll_ms = 0;
  options.client.connect_attempts = 2;
  options.client.base_backoff_ms = 1;
  options.client.max_backoff_ms = 2;
  return options;
}

/// N backend stacks plus a router over them, torn down in reverse order.
struct Fleet {
  explicit Fleet(size_t n, RouterOptions options = FastRouterOptions()) {
    for (size_t i = 0; i < n; ++i) {
      backends.push_back(std::make_unique<Stack>());
      specs.push_back("127.0.0.1:" +
                      std::to_string(backends.back()->server.port()));
    }
    router = std::make_unique<ShardRouter>(specs, options);
    router->Start();
  }
  ~Fleet() { router->Stop(); }

  /// Rendezvous ranking for a request — [0] is the home shard, [1] the
  /// first fallback; any process with the same backend list agrees.
  std::vector<size_t> Rank(const SvcRequest& request) const {
    return cluster::ShardMap(specs).Rank(cluster::ShardKeyFor(request));
  }

  std::vector<std::unique_ptr<Stack>> backends;
  std::vector<std::string> specs;
  std::unique_ptr<ShardRouter> router;
};

SvcRequest EasyInstance(const std::shared_ptr<Schema>& schema, int j) {
  const std::string a = "a" + std::to_string(j);
  SvcRequest request;
  request.query = ParseQuery(schema, "R(x), S(x,y)");
  request.db = ParsePartitionedDatabase(
      schema, "R(" + a + ") S(" + a + ",b) | S(" + a + ",c)");
  return request;
}

/// A fixed-count sampling instance slow enough to still be in flight when
/// the mid-batch kill lands (see tests/cluster/router_test.cc).
SvcRequest SlowInstance(const std::shared_ptr<Schema>& schema, int j) {
  SvcRequest request;
  request.query = ParseQuery(schema, "S(x,y), R(x), !T(y)");
  std::string db_text;
  for (int i = 0; i < 12; ++i) {
    const std::string a = "a" + std::to_string(j) + "_" + std::to_string(i);
    db_text += "R(" + a + ") ";
    db_text += "S(" + a + ",b" + std::to_string(i % 4) + ") ";
  }
  db_text += "T(b0) T(b1) | T(b2)";
  request.db = ParsePartitionedDatabase(schema, db_text);
  request.engine = "sampling";
  request.approx.epsilon = 0.025;
  request.approx.delta = 0.05;
  request.approx.seed = 5 + static_cast<uint64_t>(j);
  request.approx.strategy = ApproxStrategy::kHoeffding;
  return request;
}

/// The attr every hop span must carry: which upstream it talked to.
const std::string& HopBackend(const obs::TraceSpan& hop) {
  const std::string* backend = hop.FindAttr("backend");
  EXPECT_NE(backend, nullptr);
  static const std::string kMissing = "<missing>";
  return backend != nullptr ? *backend : kMissing;
}

TEST(ClusterTrace, RoutedComputeYieldsOneGraftedTree) {
  auto schema = Schema::Create();
  Fleet fleet(3);
  ShapleyClient client("127.0.0.1", fleet.router->port());

  // Untraced: verbatim forwarding, no trace block anywhere.
  SvcRequest request = EasyInstance(schema, 0);
  const SvcResponse untraced = client.Compute(request);
  EXPECT_TRUE(untraced.ok());
  EXPECT_FALSE(untraced.trace.has_value());

  request.trace = true;
  const SvcResponse traced = client.Compute(request);
  EXPECT_TRUE(traced.ok());
  ASSERT_TRUE(traced.trace.has_value());
  const obs::RequestTrace& trace = *traced.trace;

  // The trace id is derived from the request bytes — the client can
  // compute it WITHOUT talking to anyone.
  EXPECT_EQ(trace.context.TraceIdHex(),
            obs::TraceContext::Derive(net::EncodeRequest(request).Dump())
                .TraceIdHex());

  // Router root → one hop on the PREDICTED home shard → the backend's own
  // subtree grafted under it, engine decomposition included.
  EXPECT_EQ(trace.root.name, "router");
  EXPECT_TRUE(obs::WellNested(trace.root));
  ASSERT_EQ(trace.root.children.size(), 1u);
  const obs::TraceSpan& hop = trace.root.children[0];
  EXPECT_EQ(hop.name, "hop");
  EXPECT_EQ(HopBackend(hop), fleet.specs[fleet.Rank(request)[0]]);
  ASSERT_NE(hop.FindAttr("attempt"), nullptr);
  EXPECT_EQ(*hop.FindAttr("attempt"), "0");
  EXPECT_EQ(hop.FindAttr("error"), nullptr);

  ASSERT_EQ(hop.children.size(), 1u);
  const obs::TraceSpan& backend = hop.children[0];
  EXPECT_EQ(backend.name, "backend");
  std::vector<std::string> phases;
  for (const obs::TraceSpan& child : backend.children) {
    phases.push_back(child.name);
  }
  EXPECT_EQ(phases, (std::vector<std::string>{"decode", "route", "engine",
                                              "encode"}));
  for (const char* deep : {"cache", "compile", "delta", "accumulate"}) {
    EXPECT_NE(trace.Find(deep), nullptr) << deep;
  }
}

TEST(ClusterTrace, MidBatchKillKeepsBothHopsInEveryVictimTree) {
  auto schema = Schema::Create();
  // Six slow, mutually distinct instances, ALL traced: by pigeonhole some
  // backend owns at least two, each still in flight when the kill lands.
  std::vector<SvcRequest> requests;
  for (int j = 0; j < 6; ++j) {
    requests.push_back(SlowInstance(schema, j));
    requests.back().trace = true;
  }

  Fleet fleet(3);
  std::vector<size_t> owned(fleet.backends.size(), 0);
  for (const SvcRequest& request : requests) {
    ++owned[fleet.Rank(request)[0]];
  }
  size_t victim = 0;
  for (size_t i = 1; i < owned.size(); ++i) {
    if (owned[i] > owned[victim]) victim = i;
  }
  ASSERT_GE(owned[victim], 2u);

  std::vector<SvcResponse> actual;
  std::thread submitter([&] {
    ShapleyClient client("127.0.0.1", fleet.router->port());
    actual = client.ComputeBatch(requests);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  fleet.backends[victim]->server.Abort();
  submitter.join();

  // ZERO dropped ids: every request answered, successfully, with a tree.
  ASSERT_EQ(actual.size(), requests.size());
  size_t victims_seen = 0;
  for (size_t i = 0; i < requests.size(); ++i) {
    SCOPED_TRACE("request " + std::to_string(i));
    EXPECT_TRUE(actual[i].ok());
    ASSERT_TRUE(actual[i].trace.has_value());
    const obs::RequestTrace& trace = *actual[i].trace;
    EXPECT_EQ(trace.root.name, "router");
    EXPECT_TRUE(obs::WellNested(trace.root));

    const std::vector<size_t> rank = fleet.Rank(requests[i]);
    if (rank[0] != victim) {
      // Untouched by the kill: exactly one clean hop on the home shard.
      ASSERT_EQ(trace.root.children.size(), 1u);
      EXPECT_EQ(HopBackend(trace.root.children[0]), fleet.specs[rank[0]]);
      EXPECT_EQ(trace.root.children[0].FindAttr("error"), nullptr);
      continue;
    }
    ++victims_seen;

    // A victim: BOTH hops in ONE tree — the failed attempt on the dead
    // backend, error-tagged and childless, then the retry on the key's
    // predicted fallback shard carrying the real backend subtree.
    ASSERT_EQ(trace.root.children.size(), 2u);
    const obs::TraceSpan& failed = trace.root.children[0];
    EXPECT_EQ(failed.name, "hop");
    EXPECT_EQ(HopBackend(failed), fleet.specs[victim]);
    EXPECT_EQ(*failed.FindAttr("attempt"), "0");
    EXPECT_NE(failed.FindAttr("error"), nullptr);
    EXPECT_TRUE(failed.children.empty());

    const obs::TraceSpan& retry = trace.root.children[1];
    EXPECT_EQ(retry.name, "hop");
    EXPECT_EQ(HopBackend(retry), fleet.specs[rank[1]]);
    EXPECT_EQ(*retry.FindAttr("attempt"), "1");
    EXPECT_EQ(retry.FindAttr("error"), nullptr);
    ASSERT_EQ(retry.children.size(), 1u);
    EXPECT_EQ(retry.children[0].name, "backend");

    // The sampler's per-checkpoint instrumentation survived the failover:
    // the retried engine span decomposes into at least one round with
    // samples/retired counts.
    const obs::TraceSpan* round = trace.Find("round");
    ASSERT_NE(round, nullptr);
    ASSERT_NE(round->FindAttr("samples"), nullptr);
    EXPECT_NE(*round->FindAttr("samples"), "0");
    ASSERT_NE(round->FindAttr("retired"), nullptr);
    EXPECT_EQ(*round->FindAttr("retired"), "0");  // Hoeffding never retires.
  }
  EXPECT_EQ(victims_seen, owned[victim]);
  EXPECT_FALSE(fleet.router->backend(victim)->healthy());
}

/// RAII temp file in the test's working directory.
struct TempPath {
  explicit TempPath(std::string name) : path(std::move(name)) {}
  ~TempPath() { std::remove(path.c_str()); }
  const std::string path;
};

TEST(ClusterTrace, RouterSessionRecordsAndReplaysBitIdentically) {
  TempPath temp("obs_router_reqlog_e2e.ndjson");
  auto schema = Schema::Create();

  // The recorded session: two singles (one TRACED — volatile members must
  // canonicalize away), a malformed body (its 400 must replay), and a
  // scattered batch.
  std::vector<std::string> sent_bodies;
  {
    SvcRequest plain = EasyInstance(schema, 0);
    sent_bodies.push_back(net::EncodeRequest(plain).Dump());
    SvcRequest traced = EasyInstance(schema, 1);
    traced.trace = true;
    sent_bodies.push_back(net::EncodeRequest(traced).Dump());
  }
  Json batch;
  {
    Json items = Json::Arr();
    for (int j = 2; j < 8; ++j) {
      items.Push(net::EncodeRequest(EasyInstance(schema, j)));
    }
    batch.Set("requests", std::move(items));
  }

  std::vector<std::string> recorded;  // Canonical responses, send order.
  {
    obs::RequestLogWriter capture(temp.path);
    RouterOptions options = FastRouterOptions();
    options.server.request_log = &capture;
    Fleet fleet(3, options);
    ShapleyClient client("127.0.0.1", fleet.router->port());

    int status = 0;
    for (const std::string& body : sent_bodies) {
      recorded.push_back(
          obs::CanonicalResponseBody(client.RawCompute(body, &status)));
      EXPECT_EQ(status, 200);
    }
    sent_bodies.push_back("{broken");
    recorded.push_back(
        obs::CanonicalResponseBody(client.RawCompute("{broken", &status)));
    EXPECT_EQ(status, 400);
    sent_bodies.push_back(batch.Dump());
    std::vector<std::string> lines;
    client.RawBatch(batch.Dump(),
                    [&](const std::string& line) { lines.push_back(line); });
    recorded.push_back(obs::CanonicalBatchBody(lines));
    capture.Flush();
    EXPECT_EQ(capture.entries(), sent_bodies.size());
  }

  // The router captured every POST verbatim at the shared pre-decode
  // point, in arrival order — health probes (GETs) never pollute it.
  std::string error;
  auto log = obs::ReadRequestLog(temp.path, &error);
  ASSERT_TRUE(log.has_value()) << error;
  ASSERT_EQ(log->size(), sent_bodies.size());
  for (size_t i = 0; i < sent_bodies.size(); ++i) {
    EXPECT_EQ((*log)[i].body, sent_bodies[i]) << "entry " << i;
    EXPECT_EQ((*log)[i].target,
              i + 1 == sent_bodies.size() ? "/v1/batch" : "/v1/compute");
  }

  // Replayed against a FRESH fleet — new ports, new shard map, cold
  // caches — every response is bit-identical in canonical form: the
  // placement may differ, the answers cannot.
  Fleet fresh(2);
  const obs::ReplayResult result =
      obs::Replay(*log, "127.0.0.1", fresh.router->port());
  EXPECT_EQ(result.requests_sent, log->size());
  EXPECT_EQ(result.transport_errors, 0u);
  ASSERT_EQ(result.responses.size(), recorded.size());
  for (size_t i = 0; i < recorded.size(); ++i) {
    EXPECT_EQ(result.responses[i], recorded[i]) << "entry " << i;
    EXPECT_FALSE(result.responses[i].empty()) << "dropped entry " << i;
  }
}

}  // namespace
}  // namespace shapley
