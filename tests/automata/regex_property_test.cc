// Property test: the compiled DFA agrees with a naive structural matcher on
// every word up to a length bound, for a grid of regexes.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "shapley/automata/automaton.h"

namespace shapley {
namespace {

// Naive recursive matcher over the regex AST (exponential; ground truth).
bool NaiveMatch(const Regex& node, const std::vector<std::string>& word,
                size_t from, size_t to) {
  switch (node.kind()) {
    case Regex::Kind::kSymbol:
      return to == from + 1 && word[from] == node.symbol();
    case Regex::Kind::kEpsilon:
      return from == to;
    case Regex::Kind::kConcat:
      for (size_t mid = from; mid <= to; ++mid) {
        if (NaiveMatch(node.children()[0], word, from, mid) &&
            NaiveMatch(node.children()[1], word, mid, to)) {
          return true;
        }
      }
      return false;
    case Regex::Kind::kUnion:
      return NaiveMatch(node.children()[0], word, from, to) ||
             NaiveMatch(node.children()[1], word, from, to);
    case Regex::Kind::kStar: {
      if (from == to) return true;
      // Consume a nonempty prefix with the body, recurse on the rest.
      for (size_t mid = from + 1; mid <= to; ++mid) {
        if (NaiveMatch(node.children()[0], word, from, mid) &&
            NaiveMatch(node, word, mid, to)) {
          return true;
        }
      }
      return false;
    }
    case Regex::Kind::kPlus:
      for (size_t mid = from + 1; mid <= to; ++mid) {
        if (NaiveMatch(node.children()[0], word, from, mid)) {
          if (mid == to) return true;
          Regex star = Regex::Star(node.children()[0]);
          if (NaiveMatch(star, word, mid, to)) return true;
        }
      }
      return false;
    case Regex::Kind::kOptional:
      return from == to || NaiveMatch(node.children()[0], word, from, to);
  }
  return false;
}

class RegexPropertyTest : public ::testing::TestWithParam<const char*> {};

TEST_P(RegexPropertyTest, DfaAgreesWithNaiveMatcherOnAllShortWords) {
  Regex regex = Regex::Parse(GetParam());
  Dfa dfa = Dfa::FromRegex(regex);
  const std::vector<std::string> alphabet = {"A", "B", "C"};

  // Enumerate every word over {A,B,C} up to length 5.
  std::vector<std::vector<std::string>> frontier = {{}};
  for (size_t len = 0; len <= 5; ++len) {
    for (const auto& word : frontier) {
      // DFA representation of the word.
      std::vector<SymbolId> dfa_word;
      bool in_alphabet = true;
      for (const std::string& letter : word) {
        bool found = false;
        for (size_t i = 0; i < dfa.symbol_names().size(); ++i) {
          if (dfa.symbol_names()[i] == letter) {
            dfa_word.push_back(static_cast<SymbolId>(i));
            found = true;
            break;
          }
        }
        if (!found) in_alphabet = false;
      }
      bool naive = NaiveMatch(regex, word, 0, word.size());
      bool via_dfa = in_alphabet && dfa.Accepts(dfa_word);
      // Words using letters outside the regex alphabet can never match.
      if (!in_alphabet) {
        EXPECT_FALSE(naive);
      } else {
        EXPECT_EQ(via_dfa, naive)
            << GetParam() << " on word of length " << word.size();
      }
    }
    // Extend the frontier.
    std::vector<std::vector<std::string>> next;
    for (const auto& word : frontier) {
      for (const std::string& letter : alphabet) {
        auto extended = word;
        extended.push_back(letter);
        next.push_back(std::move(extended));
      }
    }
    frontier = std::move(next);
  }
}

TEST_P(RegexPropertyTest, WordsUpToLengthAreExactlyTheAcceptedWords) {
  Regex regex = Regex::Parse(GetParam());
  Dfa dfa = Dfa::FromRegex(regex);
  auto words = dfa.WordsUpToLength(4, 100000);
  // Every enumerated word is accepted, and the count matches a full scan.
  for (const auto& w : words) {
    EXPECT_TRUE(dfa.Accepts(w));
  }
  size_t accepted = 0;
  size_t alphabet = dfa.symbol_names().size();
  std::vector<std::vector<SymbolId>> frontier = {{}};
  for (size_t len = 0; len <= 4; ++len) {
    for (const auto& w : frontier) {
      if (dfa.Accepts(w)) ++accepted;
    }
    std::vector<std::vector<SymbolId>> next;
    for (const auto& w : frontier) {
      for (SymbolId a = 0; a < alphabet; ++a) {
        auto e = w;
        e.push_back(a);
        next.push_back(std::move(e));
      }
    }
    frontier = std::move(next);
  }
  EXPECT_EQ(words.size(), accepted) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    RegexGrid, RegexPropertyTest,
    ::testing::Values("A", "A B", "A | B", "A*", "A+", "A?", "(A|B)*",
                      "A (B|C)* A", "A B | B A", "(A B)+ C?", "A* B* C*",
                      "((A|B) C)+", "eps | A B C"));

}  // namespace
}  // namespace shapley
