#include "shapley/automata/automaton.h"

#include <gtest/gtest.h>

#include "shapley/automata/regex.h"

namespace shapley {
namespace {

// Builds a word from a string of single-letter symbols using the DFA's
// symbol table; returns nullopt if some letter is not in the alphabet.
std::optional<std::vector<SymbolId>> Word(const Dfa& dfa, const std::string& s) {
  std::vector<SymbolId> word;
  for (char ch : s) {
    std::string name(1, ch);
    bool found = false;
    for (size_t i = 0; i < dfa.symbol_names().size(); ++i) {
      if (dfa.symbol_names()[i] == name) {
        word.push_back(static_cast<SymbolId>(i));
        found = true;
        break;
      }
    }
    if (!found) return std::nullopt;
  }
  return word;
}

bool Accepts(const Dfa& dfa, const std::string& s) {
  auto word = Word(dfa, s);
  return word.has_value() && dfa.Accepts(*word);
}

TEST(RegexTest, ParseAndPrint) {
  EXPECT_EQ(Regex::Parse("A B | C*").ToString(), "((A B)|C*)");
  EXPECT_EQ(Regex::Parse("(A|B) C?").ToString(), "((A|B) C?)");
  EXPECT_EQ(Regex::Parse("eps | A").ToString(), "(eps|A)");
  EXPECT_EQ(Regex::Parse("A.B.C").ToString(), "((A B) C)");
}

TEST(RegexTest, ParseErrors) {
  EXPECT_THROW(Regex::Parse(""), std::invalid_argument);
  EXPECT_THROW(Regex::Parse("(A"), std::invalid_argument);
  EXPECT_THROW(Regex::Parse("A)"), std::invalid_argument);
  EXPECT_THROW(Regex::Parse("*A"), std::invalid_argument);
  EXPECT_THROW(Regex::Parse(".A"), std::invalid_argument);
}

TEST(RegexTest, SymbolNamesInOrder) {
  auto names = Regex::Parse("B A | A C").SymbolNames();
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "B");
  EXPECT_EQ(names[1], "A");
  EXPECT_EQ(names[2], "C");
}

TEST(DfaTest, BasicMembership) {
  Dfa dfa = Dfa::FromRegex(Regex::Parse("A B | B A"));
  EXPECT_TRUE(Accepts(dfa, "AB"));
  EXPECT_TRUE(Accepts(dfa, "BA"));
  EXPECT_FALSE(Accepts(dfa, "AA"));
  EXPECT_FALSE(Accepts(dfa, "A"));
  EXPECT_FALSE(Accepts(dfa, "ABA"));
  EXPECT_FALSE(dfa.AcceptsEpsilon());
}

TEST(DfaTest, StarAndPlus) {
  Dfa star = Dfa::FromRegex(Regex::Parse("A*"));
  EXPECT_TRUE(star.AcceptsEpsilon());
  EXPECT_TRUE(Accepts(star, "AAAA"));
  Dfa plus = Dfa::FromRegex(Regex::Parse("A+"));
  EXPECT_FALSE(plus.AcceptsEpsilon());
  EXPECT_TRUE(Accepts(plus, "A"));
  EXPECT_TRUE(Accepts(plus, "AAA"));
}

TEST(DfaTest, FinitenessDetection) {
  EXPECT_TRUE(Dfa::FromRegex(Regex::Parse("A B | C")).IsFinite());
  EXPECT_FALSE(Dfa::FromRegex(Regex::Parse("A* B")).IsFinite());
  EXPECT_FALSE(Dfa::FromRegex(Regex::Parse("A B+")).IsFinite());
  // The star is unreachable-to-accept... actually (A|B C)* is infinite.
  EXPECT_FALSE(Dfa::FromRegex(Regex::Parse("(A|B C)*")).IsFinite());
  EXPECT_TRUE(Dfa::FromRegex(Regex::Parse("eps")).IsFinite());
}

TEST(DfaTest, MaxWordLength) {
  EXPECT_EQ(Dfa::FromRegex(Regex::Parse("A B | C")).MaxWordLength(), 2u);
  EXPECT_EQ(Dfa::FromRegex(Regex::Parse("A B C | A (B|C)")).MaxWordLength(), 3u);
  EXPECT_EQ(Dfa::FromRegex(Regex::Parse("eps")).MaxWordLength(), 0u);
  EXPECT_EQ(Dfa::FromRegex(Regex::Parse("A*")).MaxWordLength(), std::nullopt);
}

TEST(DfaTest, HasWordOfLengthAtLeast) {
  // The RPQ dichotomy (Corollary 4.3) branches on exactly these tests.
  Dfa bounded2 = Dfa::FromRegex(Regex::Parse("A | B C"));
  EXPECT_TRUE(bounded2.HasWordOfLengthAtLeast(2));
  EXPECT_FALSE(bounded2.HasWordOfLengthAtLeast(3));
  Dfa unbounded = Dfa::FromRegex(Regex::Parse("A* B"));
  EXPECT_TRUE(unbounded.HasWordOfLengthAtLeast(3));
  EXPECT_TRUE(unbounded.HasWordOfLengthAtLeast(1000));
}

TEST(DfaTest, ShortestWord) {
  Dfa dfa = Dfa::FromRegex(Regex::Parse("A A A | B B"));
  auto w = dfa.ShortestWord();
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ(w->size(), 2u);

  Dfa eps = Dfa::FromRegex(Regex::Parse("A*"));
  EXPECT_EQ(eps.ShortestWord()->size(), 0u);
}

TEST(DfaTest, ShortestWordOfLengthAtLeast) {
  Dfa dfa = Dfa::FromRegex(Regex::Parse("A* B"));
  auto w = dfa.ShortestWordOfLengthAtLeast(3);
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ(w->size(), 3u);
  EXPECT_TRUE(dfa.Accepts(*w));

  Dfa bounded = Dfa::FromRegex(Regex::Parse("A B"));
  EXPECT_FALSE(bounded.ShortestWordOfLengthAtLeast(3).has_value());
  EXPECT_EQ(bounded.ShortestWordOfLengthAtLeast(2)->size(), 2u);
}

TEST(DfaTest, WordsUpToLength) {
  Dfa dfa = Dfa::FromRegex(Regex::Parse("A | B A | A B B"));
  auto words = dfa.WordsUpToLength(2);
  // "A" and "BA".
  EXPECT_EQ(words.size(), 2u);
  auto all = dfa.WordsUpToLength(5);
  EXPECT_EQ(all.size(), 3u);
  for (const auto& w : all) EXPECT_TRUE(dfa.Accepts(w));
}

TEST(DfaTest, WordsUpToLengthLimitEnforced) {
  Dfa dfa = Dfa::FromRegex(Regex::Parse("(A|B)*"));
  EXPECT_THROW(dfa.WordsUpToLength(20, 100), std::invalid_argument);
}

TEST(DfaTest, EmptyLanguageEdgeCases) {
  // 'A' restricted to co-accessible states after intersecting with nothing
  // is still fine; build an actually-empty language via contradiction-free
  // regex is impossible in this AST, so check the trimmed-empty path through
  // Accepts on a foreign word instead.
  Dfa dfa = Dfa::FromRegex(Regex::Parse("A"));
  EXPECT_FALSE(dfa.Accepts({42}));
  EXPECT_FALSE(dfa.AcceptsEmptyLanguage());
}

TEST(DfaTest, PaperExampleABplusBA) {
  // q = ∃x [AB + BA](x, a) from Section 4.1 — the q-leak example.
  Dfa dfa = Dfa::FromRegex(Regex::Parse("A B | B A"));
  EXPECT_TRUE(dfa.IsFinite());
  EXPECT_EQ(dfa.MaxWordLength(), 2u);
  EXPECT_EQ(dfa.WordsUpToLength(2).size(), 2u);
}

}  // namespace
}  // namespace shapley
