#include "shapley/reductions/interpolation.h"

#include <gtest/gtest.h>

#include "shapley/data/parser.h"
#include "shapley/gen/generators.h"
#include "shapley/query/query_parser.h"

namespace shapley {
namespace {

class InterpolationTest : public ::testing::Test {
 protected:
  InterpolationTest() : schema_(Schema::Create()) {}
  std::shared_ptr<Schema> schema_;
  BruteForceFgmc brute_fgmc_;
  BruteForcePqe brute_pqe_;
};

TEST_F(InterpolationTest, FgmcFromPqeMatchesBruteForce) {
  // FGMC ≤poly SPPQE (Claim A.2): interpolation through any PQE engine.
  auto schema = Schema::Create();
  UcqPtr q = ParseUcq(schema, "R(x), S(x,y) | T(y)");
  InterpolationFgmc via_pqe(std::make_shared<BruteForcePqe>());
  for (uint64_t seed = 0; seed < 10; ++seed) {
    RandomDatabaseOptions options;
    options.num_facts = 7;
    options.domain_size = 3;
    options.exogenous_fraction = 0.3;
    options.seed = seed + 500;
    PartitionedDatabase db = RandomPartitionedDatabase(schema, options);
    EXPECT_EQ(via_pqe.CountBySize(*q, db), brute_fgmc_.CountBySize(*q, db))
        << "seed " << seed;
  }
  // Exactly |Dn|+1 oracle calls per instance were used.
  EXPECT_GT(via_pqe.oracle_calls(), 0u);
}

TEST_F(InterpolationTest, SppqeFromFgmcMatchesBruteForce) {
  // SPPQE ≤poly FGMC (Claim A.2, other direction).
  auto schema = Schema::Create();
  CqPtr q = ParseCq(schema, "R(x), S(x,y), T(y)");
  FgmcBackedSppqe via_fgmc(std::make_shared<BruteForceFgmc>());
  for (uint64_t seed = 0; seed < 8; ++seed) {
    RandomDatabaseOptions options;
    options.num_facts = 7;
    options.domain_size = 3;
    options.exogenous_fraction = 0.25;
    options.seed = seed + 900;
    PartitionedDatabase pdb = RandomPartitionedDatabase(schema, options);
    ProbabilisticDatabase db = ProbabilisticDatabase::FromPartitioned(
        pdb, BigRational(BigInt(2), BigInt(7)));
    EXPECT_EQ(via_fgmc.Probability(*q, db), brute_pqe_.Probability(*q, db))
        << "seed " << seed;
  }
}

TEST_F(InterpolationTest, SppqeEngineRejectsMixedProbabilities) {
  auto schema = Schema::Create();
  CqPtr q = ParseCq(schema, "R(x,y)");
  ProbabilisticDatabase db(schema);
  db.AddFact(ParseFact(schema, "R(a,b)"), BigRational(BigInt(1), BigInt(2)));
  db.AddFact(ParseFact(schema, "R(c,d)"), BigRational(BigInt(1), BigInt(3)));
  FgmcBackedSppqe via_fgmc(std::make_shared<BruteForceFgmc>());
  EXPECT_THROW(via_fgmc.Probability(*q, db), std::invalid_argument);
}

TEST_F(InterpolationTest, RoundTripFgmcPqeFgmc) {
  // FGMC -> SPPQE -> FGMC round trip stays exact.
  auto schema = Schema::Create();
  CqPtr q = ParseCq(schema, "R(x,y), S(y)");
  auto inner_fgmc = std::make_shared<BruteForceFgmc>();
  auto sppqe = std::make_shared<FgmcBackedSppqe>(inner_fgmc);
  InterpolationFgmc round_trip(sppqe);

  PartitionedDatabase db = ParsePartitionedDatabase(
      schema, "R(a,b) R(c,b) R(a,d) | S(b) S(d)");
  EXPECT_EQ(round_trip.CountBySize(*q, db), brute_fgmc_.CountBySize(*q, db));
}

TEST_F(InterpolationTest, McViaUniformPqeMatchesDirectCount) {
  // MC_q(D) = 2^n * Pr(D_1/2 |= q) — the PQE^{1/2} box of Figure 1a.
  auto schema = Schema::Create();
  UcqPtr q = ParseUcq(schema, "R(x,y), S(y) | T(x)");
  BruteForcePqe pqe;
  for (uint64_t seed = 0; seed < 8; ++seed) {
    RandomDatabaseOptions options;
    options.num_facts = 8;
    options.domain_size = 3;
    options.exogenous_fraction = 0.0;
    options.seed = seed + 321;
    Database db = RandomPartitionedDatabase(schema, options).AllFacts();
    BigInt via_pqe = McViaUniformPqe(*q, db, pqe);
    BigInt direct = brute_fgmc_.Gmc(
        *q, PartitionedDatabase::AllEndogenous(db));
    EXPECT_EQ(via_pqe, direct) << "seed " << seed;
  }
}

TEST_F(InterpolationTest, PurelyEndogenousIsFmcSpqe) {
  // FMC ≡ SPQE (Claim A.3) is the same machinery on Dx = ∅ inputs.
  auto schema = Schema::Create();
  CqPtr q = ParseCq(schema, "R(x,x)");
  Database endo = ParseDatabase(schema, "R(a,a) R(a,b) R(b,b)");
  PartitionedDatabase db = PartitionedDatabase::AllEndogenous(endo);
  InterpolationFgmc via_pqe(std::make_shared<BruteForcePqe>());
  EXPECT_EQ(via_pqe.CountBySize(*q, db), brute_fgmc_.CountBySize(*q, db));
}

}  // namespace
}  // namespace shapley
