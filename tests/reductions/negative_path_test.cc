// Negative-path tests for the reductions: hypothesis violations must be
// rejected loudly (with std::invalid_argument), never silently miscounted.

#include <gtest/gtest.h>

#include "shapley/analysis/witnesses.h"
#include "shapley/common/macros.h"
#include "shapley/data/parser.h"
#include "shapley/engines/svc.h"
#include "shapley/gen/generators.h"
#include "shapley/query/query_parser.h"
#include "shapley/reductions/lemmas.h"

namespace shapley {
namespace {

class NegativePathTest : public ::testing::Test {
 protected:
  BruteForceSvc oracle_;
};

TEST_F(NegativePathTest, Lemma43RejectsConstantsWithSelfJoins) {
  // Neither self-join-free nor constant-free: leak-freeness cannot be
  // certified, so the wrapper must refuse.
  auto schema = Schema::Create();
  CqPtr q = ParseCq(schema, "R(x,a), R(y,x)");
  PartitionedDatabase db = ParsePartitionedDatabase(schema, "R(b,a)");
  EXPECT_THROW(FgmcViaSvcLemma43(*q, 0, db, oracle_), std::invalid_argument);
}

TEST_F(NegativePathTest, Lemma43RejectsNegation) {
  auto schema = Schema::Create();
  CqPtr q = ParseCq(schema, "A(x), !B(x)");
  PartitionedDatabase db = ParsePartitionedDatabase(schema, "A(a)");
  EXPECT_THROW(FgmcViaSvcLemma43(*q, 0, db, oracle_), std::invalid_argument);
}

TEST_F(NegativePathTest, Lemma43RejectsOutOfRangeComponent) {
  auto schema = Schema::Create();
  CqPtr q = ParseCq(schema, "R(x), S(x,y)");
  PartitionedDatabase db = ParsePartitionedDatabase(schema, "R(a)");
  EXPECT_THROW(FgmcViaSvcLemma43(*q, 5, db, oracle_), std::invalid_argument);
}

TEST_F(NegativePathTest, Lemma44RejectsSharedVocabulary) {
  auto schema = Schema::Create();
  CqPtr q = ParseCq(schema, "R(x,y), R(u,w)");
  // Hand-build an (invalid) decomposition sharing the relation R.
  Decomposition bad;
  bad.q1 = ParseCq(schema, "R(x,y)");
  bad.q2 = ParseCq(schema, "R(u,w)");
  PartitionedDatabase db = ParsePartitionedDatabase(schema, "R(a,b)");
  EXPECT_THROW(FgmcViaSvcLemma44(*q, bad, db, oracle_), std::invalid_argument);
}

TEST_F(NegativePathTest, Lemma62RequiresUnsharedConstant) {
  // A query whose island support has every constant in two facts:
  // R(x,y), S(y,x) — frozen core is {R(f1,f2), S(f2,f1)}; both constants
  // occur in both facts, so the Lemma 6.2 hypothesis fails.
  auto schema = Schema::Create();
  CqPtr q = ParseCq(schema, "R(x,y), S(y,x)");
  auto witness = CertifyPseudoConnected(*q);
  ASSERT_TRUE(witness.has_value());
  Database endo = ParseDatabase(schema, "R(a,b) S(b,a)");
  EXPECT_THROW(FmcViaSvcnLemma62(*q, *witness, endo, oracle_),
               std::invalid_argument);
}

TEST_F(NegativePathTest, Prop63RejectsEndogenousQueryConstants) {
  auto schema = Schema::Create();
  CqPtr q = ParseCq(schema, "Keyword(y, $shap)");
  Database db = ParseDatabase(schema, "Keyword(p1, shap)");
  ConstantPartition partition;
  partition.endogenous = {Constant::Named("shap"), Constant::Named("p1")};
  SvcConstOracle oracle = [](const Database&, const ConstantPartition&,
                             Constant) { return BigRational(0); };
  EXPECT_THROW(FgmcConstViaSvcConstProp63(*q, db, partition, oracle),
               std::invalid_argument);
}

TEST_F(NegativePathTest, Prop63RejectsNonMonotone) {
  auto schema = Schema::Create();
  CqPtr q = ParseCq(schema, "A(x), !B(x)");
  Database db = ParseDatabase(schema, "A(a)");
  ConstantPartition partition;
  partition.endogenous = {Constant::Named("a")};
  SvcConstOracle oracle = [](const Database&, const ConstantPartition&,
                             Constant) { return BigRational(0); };
  EXPECT_THROW(FgmcConstViaSvcConstProp63(*q, db, partition, oracle),
               std::invalid_argument);
}

TEST_F(NegativePathTest, NegationD2RejectsSelfJoins) {
  auto schema = Schema::Create();
  CqPtr q = ParseCq(schema, "A(x), A(y), !B(x)");
  PartitionedDatabase db = ParsePartitionedDatabase(schema, "A(a)");
  EXPECT_THROW(FgmcViaSvcNegationD2(*q, 0, db, oracle_),
               std::invalid_argument);
}

TEST_F(NegativePathTest, NegationD2RejectsNegatedRelationReuse) {
  auto schema = Schema::Create();
  CqPtr q = ParseCq(schema, "A(x), S(x,y), !A(y)");
  PartitionedDatabase db = ParsePartitionedDatabase(schema, "A(a) S(a,b)");
  EXPECT_THROW(FgmcViaSvcNegationD2(*q, 0, db, oracle_),
               std::invalid_argument);
}

TEST_F(NegativePathTest, NegationD2BlockerInExogenousMeansZero) {
  // A ground negated atom sitting in Dx falsifies the query everywhere.
  auto schema = Schema::Create();
  CqPtr q = ParseCq(schema, "A(x), S(x,y), B(y), !G(c0)");
  PartitionedDatabase db =
      ParsePartitionedDatabase(schema, "A(c1) S(c1,c2) B(c2) | G(c0)");
  Polynomial counts = FgmcViaSvcNegationD2(*q, 0, db, oracle_);
  EXPECT_TRUE(counts.IsZero());
}

TEST_F(NegativePathTest, PascalSpecValidatesSupportDisjointness) {
  // The support must be renamed away from the base database first; the
  // runner checks and refuses overlapping constructions.
  auto schema = Schema::Create();
  CqPtr q = ParseCq(schema, "R(x,y)");
  PartitionedDatabase db = ParsePartitionedDatabase(schema, "R(a,b)");
  PascalSpec spec;
  spec.oracle_query = q.get();
  spec.base = db;
  spec.exogenous_extra = Database(schema);
  spec.s0 = ParseDatabase(schema, "R(a,b)");  // Overlaps the base!
  spec.s_minus = Database(schema);
  spec.mu = ParseFact(schema, "R(a,b)");
  spec.duplicated = Constant::Named("a");
  spec.blockers = Database(schema);
  EXPECT_THROW(RunPascalReduction(spec, oracle_), InternalError);
}

}  // namespace
}  // namespace shapley
