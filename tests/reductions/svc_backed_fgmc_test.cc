#include "shapley/reductions/svc_backed_fgmc.h"

#include <gtest/gtest.h>

#include "shapley/data/parser.h"
#include "shapley/gen/generators.h"
#include "shapley/query/query_parser.h"

namespace shapley {
namespace {

TEST(SvcBackedFgmcTest, RoutesConnectedQueriesThroughLemma41) {
  auto schema = Schema::Create();
  CqPtr q = ParseCq(schema, "R(x,y), S(y,z)");
  SvcBackedFgmc engine(q, std::make_shared<BruteForceSvc>());
  EXPECT_NE(engine.name().find("lemma 4.1"), std::string::npos);

  BruteForceFgmc direct;
  for (uint64_t seed = 0; seed < 5; ++seed) {
    RandomDatabaseOptions options;
    options.num_facts = 6;
    options.domain_size = 3;
    options.exogenous_fraction = 0.2;
    options.seed = seed + 400;
    PartitionedDatabase db = RandomPartitionedDatabase(schema, options);
    EXPECT_EQ(engine.CountBySize(*q, db), direct.CountBySize(*q, db))
        << "seed " << seed;
  }
  EXPECT_GT(engine.stats().oracle_calls, 0u);
}

TEST(SvcBackedFgmcTest, RoutesDecomposableQueriesThroughLemma44) {
  auto schema = Schema::Create();
  CqPtr q = ParseCq(schema, "R(x,y), S(u,w)");
  SvcBackedFgmc engine(q, std::make_shared<BruteForceSvc>());
  EXPECT_NE(engine.name().find("lemma 4.4"), std::string::npos);

  BruteForceFgmc direct;
  PartitionedDatabase db =
      ParsePartitionedDatabase(schema, "R(a,b) S(c,d) R(e,f) | S(g,h)");
  EXPECT_EQ(engine.CountBySize(*q, db), direct.CountBySize(*q, db));
}

TEST(SvcBackedFgmcTest, RejectsUnroutableQueries) {
  auto schema = Schema::Create();
  // A 2-cycle and a triangle over the same relation: hom-incomparable, so
  // the core stays disconnected; the shared vocabulary blocks Lemma 4.5
  // decomposition and disconnectedness blocks Lemma 4.1 — unroutable.
  CqPtr q = ParseCq(schema, "R(x,y), R(y,x), R(u,w), R(w,v), R(v,u)");
  EXPECT_THROW(SvcBackedFgmc(q, std::make_shared<BruteForceSvc>()),
               std::invalid_argument);
}

TEST(SvcBackedFgmcTest, RejectsForeignQueries) {
  auto schema = Schema::Create();
  CqPtr q = ParseCq(schema, "R(x,y), S(y,z)");
  CqPtr other = ParseCq(schema, "R(x,y)");
  SvcBackedFgmc engine(q, std::make_shared<BruteForceSvc>());
  PartitionedDatabase db = ParsePartitionedDatabase(schema, "R(a,b)");
  EXPECT_THROW(engine.CountBySize(*other, db), std::invalid_argument);
}

TEST(SvcBackedFgmcTest, ClosesTheEquivalenceCircle) {
  // SVC -> (Claim A.1) -> FGMC -> (Lemma 4.1) -> SVC, as composed engines.
  auto schema = Schema::Create();
  CqPtr q = ParseCq(schema, "R(x,y), S(y,z)");
  auto inner_svc = std::make_shared<BruteForceSvc>();
  auto fgmc = std::make_shared<SvcBackedFgmc>(q, inner_svc);
  SvcViaFgmc outer_svc(fgmc);

  PartitionedDatabase db =
      ParsePartitionedDatabase(schema, "R(a,b) S(b,c) | R(d,b)");
  BruteForceSvc direct;
  for (const Fact& f : db.endogenous().facts()) {
    EXPECT_EQ(outer_svc.Value(*q, db, f), direct.Value(*q, db, f));
  }
}

}  // namespace
}  // namespace shapley
