#include "shapley/reductions/lemmas.h"

#include <gtest/gtest.h>

#include "shapley/data/parser.h"
#include "shapley/gen/generators.h"
#include "shapley/query/path_query.h"
#include "shapley/query/query_parser.h"
#include "shapley/reductions/interpolation.h"

namespace shapley {
namespace {

// The reductions are validated end to end: FGMC computed through an SVC
// oracle (itself brute force) must equal brute-force FGMC, on every instance.
class LemmasTest : public ::testing::Test {
 protected:
  BruteForceFgmc brute_fgmc_;
  BruteForceSvc svc_oracle_;
};

TEST_F(LemmasTest, Lemma41ConnectedCq) {
  auto schema = Schema::Create();
  CqPtr q = ParseCq(schema, "R(x,y), S(y,z)");
  auto witness = CertifyPseudoConnected(*q);
  ASSERT_TRUE(witness.has_value());

  for (uint64_t seed = 0; seed < 8; ++seed) {
    RandomDatabaseOptions options;
    options.num_facts = 6;
    options.domain_size = 3;
    options.exogenous_fraction = 0.25;
    options.seed = seed + 40;
    PartitionedDatabase db = RandomPartitionedDatabase(schema, options);
    PascalStats stats;
    Polynomial via_svc =
        FgmcViaSvcLemma41(*q, *witness, db, svc_oracle_, &stats);
    EXPECT_EQ(via_svc, brute_fgmc_.CountBySize(*q, db)) << "seed " << seed;
    if (!q->Evaluate(db.exogenous())) {
      // The construction makes exactly |Dn|+1 oracle calls.
      EXPECT_EQ(stats.oracle_calls, db.NumEndogenous() + 1);
    }
  }
}

TEST_F(LemmasTest, Lemma41ConnectedUcq) {
  auto schema = Schema::Create();
  UcqPtr q = ParseUcq(schema, "R(x,y), S(y,z) | T(x,y)");
  auto witness = CertifyPseudoConnected(*q);
  ASSERT_TRUE(witness.has_value());

  for (uint64_t seed = 0; seed < 6; ++seed) {
    RandomDatabaseOptions options;
    options.num_facts = 6;
    options.domain_size = 3;
    options.exogenous_fraction = 0.2;
    options.seed = seed + 60;
    PartitionedDatabase db = RandomPartitionedDatabase(schema, options);
    Polynomial via_svc = FgmcViaSvcLemma41(*q, *witness, db, svc_oracle_);
    EXPECT_EQ(via_svc, brute_fgmc_.CountBySize(*q, db)) << "seed " << seed;
  }
}

TEST_F(LemmasTest, Lemma41RpqViaIslandPath) {
  auto schema = Schema::Create();
  RpqPtr q = RegularPathQuery::Create(schema, Regex::Parse("A A A"),
                                      Constant::Named("s"),
                                      Constant::Named("t"));
  auto witness = CertifyPseudoConnected(*q);
  ASSERT_TRUE(witness.has_value());

  for (uint64_t seed = 0; seed < 6; ++seed) {
    Database graph = PathGraph(schema, "A", 3, 0.25, seed + 3);
    PartitionedDatabase db = PartitionedDatabase::AllEndogenous(graph);
    if (db.NumEndogenous() > 9) continue;
    Polynomial via_svc = FgmcViaSvcLemma41(*q, *witness, db, svc_oracle_);
    EXPECT_EQ(via_svc, brute_fgmc_.CountBySize(*q, db)) << "seed " << seed;
  }
}

TEST_F(LemmasTest, Lemma41DssQuery) {
  // A(x) ∨ (R(x,c) ∧ S(c,x)): duplicable singleton support A(·).
  auto schema = Schema::Create();
  UcqPtr q = ParseUcq(schema, "A(x) | R(x,c), S(c,x)");
  auto witness = CertifyPseudoConnected(*q);
  ASSERT_TRUE(witness.has_value());
  EXPECT_EQ(witness->island_support.size(), 1u);

  for (uint64_t seed = 0; seed < 6; ++seed) {
    RandomDatabaseOptions options;
    options.num_facts = 6;
    options.domain_size = 3;
    options.exogenous_fraction = 0.3;
    options.seed = seed + 70;
    PartitionedDatabase db = RandomPartitionedDatabase(schema, options);
    Polynomial via_svc = FgmcViaSvcLemma41(*q, *witness, db, svc_oracle_);
    EXPECT_EQ(via_svc, brute_fgmc_.CountBySize(*q, db)) << "seed " << seed;
  }
}

TEST_F(LemmasTest, Lemma41TrivialWhenExogenousSatisfies) {
  auto schema = Schema::Create();
  CqPtr q = ParseCq(schema, "R(x,y), S(y,z)");
  auto witness = CertifyPseudoConnected(*q);
  ASSERT_TRUE(witness.has_value());
  PartitionedDatabase db =
      ParsePartitionedDatabase(schema, "R(u,u) | R(a,b) S(b,c)");
  Polynomial counts = FgmcViaSvcLemma41(*q, *witness, db, svc_oracle_);
  EXPECT_EQ(counts, Polynomial::OnePlusZPower(1));
}

TEST_F(LemmasTest, Lemma62PurelyEndogenous) {
  // R(x,y), S(y,z): frozen core has unshared constants (x and z frozen).
  auto schema = Schema::Create();
  CqPtr q = ParseCq(schema, "R(x,y), S(y,z)");
  auto witness = CertifyPseudoConnected(*q);
  ASSERT_TRUE(witness.has_value());

  for (uint64_t seed = 0; seed < 6; ++seed) {
    RandomDatabaseOptions options;
    options.num_facts = 6;
    options.domain_size = 3;
    options.exogenous_fraction = 0.0;
    options.seed = seed + 80;
    PartitionedDatabase db = RandomPartitionedDatabase(schema, options);
    Polynomial via_svcn =
        FmcViaSvcnLemma62(*q, *witness, db.endogenous(), svc_oracle_);
    EXPECT_EQ(via_svcn, brute_fgmc_.CountBySize(*q, db)) << "seed " << seed;
  }
}

TEST_F(LemmasTest, Lemma43NonHierarchicalSjfCq) {
  // The canonical hard query R(x), S(x,y), T(y), with a disconnected extra
  // atom U(w) so that q_full ≠ q_vc and S' is nonempty.
  auto schema = Schema::Create();
  CqPtr q_full = ParseCq(schema, "R(x), S(x,y), T(y), U(w)");

  for (uint64_t seed = 0; seed < 6; ++seed) {
    RandomDatabaseOptions options;
    options.num_facts = 6;
    options.domain_size = 2;
    options.exogenous_fraction = 0.2;
    options.seed = seed + 90;
    PartitionedDatabase db = RandomPartitionedDatabase(schema, options);
    CqPtr counted;
    PascalStats stats;
    Polynomial via_svc =
        FgmcViaSvcLemma43(*q_full, 0, db, svc_oracle_, &stats, &counted);
    ASSERT_NE(counted, nullptr);
    EXPECT_EQ(counted->atoms().size(), 3u);  // R, S, T.
    EXPECT_EQ(via_svc, brute_fgmc_.CountBySize(*counted, db))
        << "seed " << seed;
    EXPECT_EQ(stats.oracle_calls, db.NumEndogenous() + 1);
  }
}

TEST_F(LemmasTest, Lemma43ConstantFreeSelfJoinCq) {
  // Constant-free with self-joins across components: R(x,y),R(y,x),P(u,w).
  auto schema = Schema::Create();
  CqPtr q_full = ParseCq(schema, "R(x,y), R(y,x), P(u,w)");
  for (uint64_t seed = 0; seed < 5; ++seed) {
    RandomDatabaseOptions options;
    options.num_facts = 6;
    options.domain_size = 2;
    options.exogenous_fraction = 0.2;
    options.seed = seed + 110;
    PartitionedDatabase db = RandomPartitionedDatabase(schema, options);
    CqPtr counted;
    Polynomial via_svc =
        FgmcViaSvcLemma43(*q_full, 0, db, svc_oracle_, nullptr, &counted);
    EXPECT_EQ(via_svc, brute_fgmc_.CountBySize(*counted, db))
        << "seed " << seed;
  }
}

TEST_F(LemmasTest, Lemma44DecomposableCq) {
  auto schema = Schema::Create();
  CqPtr q = ParseCq(schema, "R(x,y), S(u,w)");
  auto decomposition = FindDecomposition(*q);
  ASSERT_TRUE(decomposition.has_value());

  for (uint64_t seed = 0; seed < 8; ++seed) {
    RandomDatabaseOptions options;
    options.num_facts = 7;
    options.domain_size = 3;
    options.exogenous_fraction = 0.25;
    options.seed = seed + 120;
    PartitionedDatabase db = RandomPartitionedDatabase(schema, options);
    Polynomial via_svc =
        FgmcViaSvcLemma44(*q, *decomposition, db, svc_oracle_);
    EXPECT_EQ(via_svc, brute_fgmc_.CountBySize(*q, db)) << "seed " << seed;
  }
}

TEST_F(LemmasTest, Lemma44DecomposableCrpq) {
  auto schema = Schema::Create();
  std::vector<PathAtom> atoms;
  atoms.push_back({Regex::Parse("A B"), Term(Variable::Named("x")),
                   Term(Variable::Named("y"))});
  atoms.push_back({Regex::Parse("C"), Term(Variable::Named("u")),
                   Term(Variable::Named("w"))});
  CrpqPtr q = ConjunctiveRegularPathQuery::Create(schema, std::move(atoms));
  auto decomposition = FindDecomposition(*q);
  ASSERT_TRUE(decomposition.has_value());

  for (uint64_t seed = 0; seed < 4; ++seed) {
    Database graph = RandomGraph(schema, {"A", "B", "C"}, 3, 0.2, seed + 17);
    PartitionedDatabase db = PartitionedDatabase::AllEndogenous(graph);
    if (db.NumEndogenous() > 9) continue;
    Polynomial via_svc =
        FgmcViaSvcLemma44(*q, *decomposition, db, svc_oracle_);
    EXPECT_EQ(via_svc, brute_fgmc_.CountBySize(*q, db)) << "seed " << seed;
  }
}

TEST_F(LemmasTest, Lemma61ExponentialInExogenousOnly) {
  auto schema = Schema::Create();
  CqPtr q = ParseCq(schema, "R(x,y), S(y)");
  PartitionedDatabase db = ParsePartitionedDatabase(
      schema, "R(a,b) R(c,b) S(d) | S(b) R(a,d)");
  ASSERT_EQ(db.exogenous().size(), 2u);

  BruteForceFgmc fmc_oracle;
  size_t calls = 0;
  Polynomial via_fmc = FgmcViaFmcLemma61(*q, db, fmc_oracle, &calls);
  EXPECT_EQ(via_fmc, brute_fgmc_.CountBySize(*q, db));
  EXPECT_EQ(calls, 4u);  // 2^k with k = 2.
}

TEST_F(LemmasTest, Prop62MaxSvcOracleSuffices) {
  auto schema = Schema::Create();
  CqPtr q = ParseCq(schema, "R(x,y), S(y,z)");
  auto witness = CertifyPseudoConnected(*q);
  ASSERT_TRUE(witness.has_value());

  BruteForceSvc svc;
  MaxSvcOracle max_oracle = [&svc](const BooleanQuery& query,
                                   const PartitionedDatabase& db) {
    return svc.MaxValue(query, db).second;
  };
  for (uint64_t seed = 0; seed < 5; ++seed) {
    RandomDatabaseOptions options;
    options.num_facts = 5;
    options.domain_size = 3;
    options.exogenous_fraction = 0.2;
    options.seed = seed + 130;
    PartitionedDatabase db = RandomPartitionedDatabase(schema, options);
    Polynomial via_max = FgmcViaMaxSvcProp62(*q, *witness, db, max_oracle);
    EXPECT_EQ(via_max, brute_fgmc_.CountBySize(*q, db)) << "seed " << seed;
  }
}

TEST_F(LemmasTest, Prop63ConstantsReduction) {
  auto schema = Schema::Create();
  CqPtr q = ParseCq(schema, "R(x,y), S(y,z)");
  SvcConstOracle oracle = [&q](const Database& db,
                               const ConstantPartition& partition,
                               Constant player) {
    return SvcConstBruteForce(*q, db, partition, player);
  };
  for (uint64_t seed = 0; seed < 5; ++seed) {
    RandomDatabaseOptions options;
    options.num_facts = 6;
    options.domain_size = 4;
    options.exogenous_fraction = 0.0;
    options.seed = seed + 140;
    PartitionedDatabase pdb = RandomPartitionedDatabase(schema, options);
    Database db = pdb.AllFacts();
    // Half the constants endogenous, half exogenous.
    ConstantPartition partition;
    size_t index = 0;
    for (Constant c : db.Constants()) {
      if (index++ % 2 == 0) {
        partition.endogenous.insert(c);
      } else {
        partition.exogenous.insert(c);
      }
    }
    if (partition.endogenous.empty()) continue;
    Polynomial via_svc =
        FgmcConstViaSvcConstProp63(*q, db, partition, oracle);
    EXPECT_EQ(via_svc, FgmcConstBySize(*q, db, partition)) << "seed " << seed;
  }
}

TEST_F(LemmasTest, NegationD2SjfCqNeg) {
  // q = A(x), S(x,y), B(y), !N(x,y), !G(c0): variable-connected positive
  // part; one covered negated atom; one ground negated blocker.
  auto schema = Schema::Create();
  CqPtr q = ParseCq(schema, "A(x), S(x,y), B(y), !N(x,y), !G(c0)");

  for (uint64_t seed = 0; seed < 6; ++seed) {
    RandomDatabaseOptions options;
    options.num_facts = 6;
    options.domain_size = 2;
    options.exogenous_fraction = 0.2;
    options.seed = seed + 150;
    PartitionedDatabase db = RandomPartitionedDatabase(schema, options);
    CqPtr counted;
    Polynomial via_svc =
        FgmcViaSvcNegationD2(*q, 0, db, svc_oracle_, nullptr, &counted);
    ASSERT_NE(counted, nullptr);
    EXPECT_EQ(via_svc, brute_fgmc_.CountBySize(*counted, db))
        << "seed " << seed;
  }
}

TEST_F(LemmasTest, NegationD2UncoveredNegationsDrop) {
  // Negated atom across components is dropped from the counted query.
  auto schema = Schema::Create();
  CqPtr q = ParseCq(schema, "A(x), B(y), !N(x), P(y,u)");
  // Components: {A(x)} and {B(y), P(y,u)}; !N(x) covered by first only.
  CqPtr counted;
  PartitionedDatabase db = ParsePartitionedDatabase(schema, "A(c0) N(c0)");
  Polynomial via_svc =
      FgmcViaSvcNegationD2(*q, 1, db, svc_oracle_, nullptr, &counted);
  ASSERT_NE(counted, nullptr);
  EXPECT_FALSE(counted->HasNegation());  // !N(x) not covered by component 1.
  EXPECT_EQ(via_svc, brute_fgmc_.CountBySize(*counted, db));
}

TEST_F(LemmasTest, FullCircleSvcToSvc) {
  // SVC ≤ FGMC ≤ SPPQE (forward, Prop 3.3) composed with
  // FGMC ≤ SVC (backward, Lemma 4.1): a Shapley value computed through the
  // entire reduction stack must match direct brute force.
  auto schema = Schema::Create();
  CqPtr q = ParseCq(schema, "R(x,y), S(y,z)");
  auto witness = CertifyPseudoConnected(*q);
  ASSERT_TRUE(witness.has_value());

  // FGMC oracle implemented through the Lemma 4.1 SVC reduction.
  class Lemma41Fgmc : public FgmcEngine {
   public:
    Lemma41Fgmc(const BooleanQuery* q, const PseudoConnectednessWitness* w)
        : q_(q), w_(w) {}
    std::string name() const override { return "fgmc-via-svc(lemma41)"; }
    Polynomial CountBySize(const BooleanQuery& query,
                           const PartitionedDatabase& db) override {
      (void)query;
      return FgmcViaSvcLemma41(*q_, *w_, db, inner_);
    }
    const BooleanQuery* q_;
    const PseudoConnectednessWitness* w_;
    BruteForceSvc inner_;
  };

  auto fgmc_via_svc = std::make_shared<Lemma41Fgmc>(q.get(), &*witness);
  SvcViaFgmc full_circle(fgmc_via_svc);

  PartitionedDatabase db =
      ParsePartitionedDatabase(schema, "R(a,b) S(b,c) R(d,b) | S(b,e)");
  BruteForceSvc direct;
  for (const Fact& f : db.endogenous().facts()) {
    EXPECT_EQ(full_circle.Value(*q, db, f), direct.Value(*q, db, f));
  }
}

}  // namespace
}  // namespace shapley
