#include "shapley/analysis/classifier.h"

#include <gtest/gtest.h>

#include "shapley/analysis/leaks.h"
#include "shapley/analysis/safety.h"
#include "shapley/analysis/witnesses.h"
#include "shapley/data/parser.h"
#include "shapley/query/path_query.h"
#include "shapley/query/query_parser.h"

namespace shapley {
namespace {

class ClassifierTest : public ::testing::Test {
 protected:
  ClassifierTest() : schema_(Schema::Create()) {}

  RpqPtr Rpq(const std::string& regex) {
    return RegularPathQuery::Create(Schema::Create(), Regex::Parse(regex),
                                    Constant::Named("s"), Constant::Named("t"));
  }

  // Parses against a fresh schema so relation names may be reused with
  // different arities across test cases.
  static CqPtr Q(const std::string& text) {
    return ParseCq(Schema::Create(), text);
  }
  static UcqPtr U(const std::string& text) {
    return ParseUcq(Schema::Create(), text);
  }

  std::shared_ptr<Schema> schema_;
};

TEST_F(ClassifierTest, SafetyOracleSjfCq) {
  EXPECT_EQ(DetermineSafety(*Q("R(x), S(x,y)")).safety,
            Safety::kSafe);
  EXPECT_EQ(DetermineSafety(*Q("R(x), S(x,y), T(y)")).safety,
            Safety::kUnsafe);
  EXPECT_EQ(DetermineSafety(*Q("R(x,y), R(y,z)")).safety,
            Safety::kUnknown);
}

TEST_F(ClassifierTest, SafetyOracleDisjointUnion) {
  EXPECT_EQ(DetermineSafety(*U("R(x,y) | S(x)")).safety,
            Safety::kSafe);
  EXPECT_EQ(
      DetermineSafety(*U("A(x), S(x,y), B(y) | T(x)")).safety,
      Safety::kUnsafe);
  EXPECT_EQ(DetermineSafety(*U("R(x,y) | R(x,x)")).safety,
            Safety::kUnknown);
}

TEST_F(ClassifierTest, RpqDichotomyWordLengths) {
  // Corollary 4.3: #P-hard iff a word of length >= 3 exists.
  EXPECT_EQ(ClassifySvcComplexity(*Rpq("A B C")).tractability,
            Tractability::kSharpPHard);
  EXPECT_EQ(ClassifySvcComplexity(*Rpq("A B | C")).tractability,
            Tractability::kFP);
  EXPECT_EQ(ClassifySvcComplexity(*Rpq("A* B")).tractability,
            Tractability::kSharpPHard);
  EXPECT_EQ(ClassifySvcComplexity(*Rpq("A")).tractability, Tractability::kFP);
  EXPECT_TRUE(ClassifySvcComplexity(*Rpq("A B")).fgmc_svc_equivalent);
  EXPECT_FALSE(ClassifySvcComplexity(*Rpq("A")).fgmc_svc_equivalent);
}

TEST_F(ClassifierTest, SjfCqDichotomy) {
  auto hier = ClassifySvcComplexity(*Q("R(x), S(x,y)"));
  EXPECT_EQ(hier.tractability, Tractability::kFP);
  EXPECT_EQ(hier.query_class, "sjf-CQ");

  auto rst = ClassifySvcComplexity(*Q("R(x), S(x,y), T(y)"));
  EXPECT_EQ(rst.tractability, Tractability::kSharpPHard);
  EXPECT_TRUE(rst.fgmc_svc_equivalent);  // Constant-free.
}

TEST_F(ClassifierTest, SjfCqNegationDichotomy) {
  auto hard = ClassifySvcComplexity(*Q("A(x), !S(x,y), B(y)"));
  EXPECT_EQ(hard.tractability, Tractability::kSharpPHard);
  EXPECT_EQ(hard.query_class, "sjf-CQ¬");

  auto easy = ClassifySvcComplexity(*Q("A(x), S(x,y), !T(x,y)"));
  EXPECT_EQ(easy.tractability, Tractability::kFP);
}

TEST_F(ClassifierTest, SelfJoinCqNonHierarchicalHard) {
  auto v = ClassifySvcComplexity(*Q("R(x,y), S(x,z), S(z,y), T(y,w)"));
  (void)v;  // Any verdict is fine as long as no crash; specific case below.
  auto nonhier =
      ClassifySvcComplexity(*Q("R(x,u), S(x,y), R(y,w)"));
  // at(x)={R1,S}, at(y)={S,R2}: overlap, incomparable -> non-hierarchical.
  EXPECT_EQ(nonhier.tractability, Tractability::kSharpPHard);
}

TEST_F(ClassifierTest, ConnectedUcqDichotomy) {
  // Connected constant-free UCQ with relation-disjoint hierarchical parts.
  auto v = ClassifySvcComplexity(*U("R(x,y) | S(x,y), T(y,x)"));
  EXPECT_TRUE(v.fgmc_svc_equivalent);
  EXPECT_EQ(v.tractability, Tractability::kFP);
}

TEST_F(ClassifierTest, CrpqUnboundedHard) {
  std::vector<PathAtom> atoms;
  atoms.push_back({Regex::Parse("A B*A"), Term(Variable::Named("x")),
                   Term(Variable::Named("y"))});
  auto q = ConjunctiveRegularPathQuery::Create(schema_, std::move(atoms));
  auto v = ClassifySvcComplexity(*q);
  EXPECT_EQ(v.tractability, Tractability::kSharpPHard);
  EXPECT_TRUE(v.fgmc_svc_equivalent);
}

TEST_F(ClassifierTest, QLeakPaperExample) {
  // q = ∃x,y (A(x,y) ∧ B(y,a)) ∨ (B(x,y) ∧ A(y,a)): A(b,a) is a q-leak.
  UcqPtr q = U("A(x,y), B(y, $a) | B(x,y), A(y, $a)");
  Fact leak = ParseFact(q->schema(), "A(b,a)");
  EXPECT_TRUE(IsQLeak(leak, *q));
  // A fact that maps no fresh constant into C is not a leak.
  Fact no_leak = ParseFact(q->schema(), "A(b,c)");
  EXPECT_FALSE(IsQLeak(no_leak, *q));
}

TEST_F(ClassifierTest, NoLeaksForConstantFreeOrSjf) {
  // Constant-free: C = ∅, no constant can land in C.
  UcqPtr cf = U("R(x,y), S(y,z)");
  EXPECT_FALSE(IsQLeak(ParseFact(cf->schema(), "R(a,b)"), *cf));
  // Self-join-free with constants: a leak needs a support atom mapping a
  // fresh constant into C; S(x,c) -> S(b,c) maps x->b only.
  CqPtr sjf = Q("R(x), S(x,c)");
  EXPECT_FALSE(IsQLeak(ParseFact(sjf->schema(), "S(b,c)"), *sjf));
  // But S(c0,c) where the non-C position receives c itself IS a leak:
  EXPECT_TRUE(IsQLeak(ParseFact(sjf->schema(), "S(c,c)"), *sjf));
}

TEST_F(ClassifierTest, PseudoConnectedWitnesses) {
  // Connected constant-free CQ: Lemma 4.2.
  auto w1 = CertifyPseudoConnected(*Q("R(x,y), S(y,z)"));
  ASSERT_TRUE(w1.has_value());
  EXPECT_TRUE(w1->c_set.empty());
  EXPECT_FALSE(w1->island_support.empty());

  // RPQ with long word: Lemma B.1.
  auto w2 = CertifyPseudoConnected(*Rpq("A B C"));
  ASSERT_TRUE(w2.has_value());
  EXPECT_EQ(w2->island_support.size(), 3u);
  EXPECT_EQ(w2->c_set.size(), 2u);

  // dss: A(x) ∨ connected-with-constant query.
  auto w3 =
      CertifyPseudoConnected(*U("A(x) | R(x,c), S(c,x)"));
  ASSERT_TRUE(w3.has_value());
  EXPECT_EQ(w3->island_support.size(), 1u);

  // Disconnected constant-free CQ without dss: no certificate.
  EXPECT_FALSE(
      CertifyPseudoConnected(*Q("R(x,y), S(u,w)")).has_value());
}

TEST_F(ClassifierTest, DecompositionOfCq) {
  auto d = FindDecomposition(*Q("R(x,y), S(u,w)"));
  ASSERT_TRUE(d.has_value());
  EXPECT_NE(d->q1->ToString(), d->q2->ToString());

  // Shared vocabulary: not decomposable by Lemma 4.5.
  EXPECT_FALSE(FindDecomposition(*Q("R(x,y), R(u,w)")).has_value());
  // Connected: nothing to decompose... note R(x,y),R(u,w) cores to one atom.
  EXPECT_FALSE(FindDecomposition(*Q("R(x,y), S(y,z)")).has_value());
}

TEST_F(ClassifierTest, DecompositionOfCrpq) {
  std::vector<PathAtom> atoms;
  atoms.push_back({Regex::Parse("A B"), Term(Variable::Named("x")),
                   Term(Variable::Named("y"))});
  atoms.push_back({Regex::Parse("C"), Term(Variable::Named("u")),
                   Term(Variable::Named("w"))});
  auto q = ConjunctiveRegularPathQuery::Create(schema_, std::move(atoms));
  auto d = FindDecomposition(*q);
  ASSERT_TRUE(d.has_value());

  // Shared symbol across components: rejected.
  std::vector<PathAtom> shared;
  shared.push_back({Regex::Parse("A B"), Term(Variable::Named("x")),
                    Term(Variable::Named("y"))});
  shared.push_back({Regex::Parse("B C"), Term(Variable::Named("u")),
                    Term(Variable::Named("w"))});
  auto q2 = ConjunctiveRegularPathQuery::Create(schema_, std::move(shared));
  EXPECT_FALSE(FindDecomposition(*q2).has_value());
}

TEST_F(ClassifierTest, VerdictToStringMentionsJustification) {
  auto v = ClassifySvcComplexity(*Q("R(x), S(x,y), T(y)"));
  std::string s = ToString(v);
  EXPECT_NE(s.find("#P-hard"), std::string::npos);
  EXPECT_NE(s.find("Corollary 4.5"), std::string::npos);
}

}  // namespace
}  // namespace shapley
