#include "shapley/analysis/structure.h"

#include <gtest/gtest.h>

#include "shapley/query/query_parser.h"

namespace shapley {
namespace {

class StructureTest : public ::testing::Test {
 protected:
  StructureTest() : schema_(Schema::Create()) {}

  // Parses against a fresh schema, so tests may reuse relation names with
  // different arities.
  static CqPtr Q(const std::string& text) {
    return ParseCq(Schema::Create(), text);
  }
  static UcqPtr U(const std::string& text) {
    return ParseUcq(Schema::Create(), text);
  }

  std::shared_ptr<Schema> schema_;
};

TEST_F(StructureTest, SelfJoinFreeDetection) {
  EXPECT_TRUE(IsSelfJoinFree(*ParseCq(schema_, "R(x,y), S(y)")));
  EXPECT_FALSE(IsSelfJoinFree(*ParseCq(schema_, "R(x,y), R(y,z)")));
}

TEST_F(StructureTest, HierarchicalClassics) {
  // The canonical non-hierarchical query R(x), S(x,y), T(y).
  EXPECT_FALSE(IsHierarchical(*Q("R(x), S(x,y), T(y)")));
  // Hierarchical: R(x), S(x,y).
  EXPECT_TRUE(IsHierarchical(*Q("R(x), S(x,y)")));
  // Hierarchical chain: at(x)={R}, at(y)={R,S}, at(z)={S}: at(x)⊆at(y),
  // at(z)⊆at(y), at(x)∩at(z)=∅.
  EXPECT_TRUE(IsHierarchical(*Q("R(x,y), S(y,z)")));
  // Single atom and ground queries are trivially hierarchical.
  EXPECT_TRUE(IsHierarchical(*Q("R(x,y)")));
  EXPECT_TRUE(IsHierarchical(*Q("R(a,b)")));
}

TEST_F(StructureTest, HierarchicalWithNegation) {
  // [Reshef et al.]: negated atoms count. A(x), !S(x,y), B(y) is
  // non-hierarchical (x and y meet only in the negated S).
  EXPECT_FALSE(IsHierarchical(*Q("A(x), !S(x,y), B(y)")));
  // at(y) = {S, T} ⊆ at(x) = {A, S, T}: hierarchical.
  EXPECT_TRUE(IsHierarchical(*Q("A(x), S(x,y), !T(x,y)")));
}

TEST_F(StructureTest, VariableConnectedComponents) {
  CqPtr q = ParseCq(schema_, "R(x,y), S(y,z), T(u)");
  auto components = VariableConnectedComponents(q->atoms());
  EXPECT_EQ(components.size(), 2u);

  // Constants do not connect: R(x,a), S(a,y) is variable-disconnected.
  CqPtr q2 = ParseCq(schema_, "R(x,a), S(a,y)");
  EXPECT_EQ(VariableConnectedComponents(q2->atoms()).size(), 2u);
  EXPECT_FALSE(IsVariableConnected(q2->atoms()));
  // ... but term-connected.
  EXPECT_EQ(TermConnectedComponents(q2->atoms()).size(), 1u);
}

TEST_F(StructureTest, ConnectedQueryViaCanonicalSupports) {
  EXPECT_TRUE(IsConnectedQuery(*ParseCq(schema_, "R(x,y), S(y,z)")));
  EXPECT_FALSE(IsConnectedQuery(*ParseCq(schema_, "R(x,y), S(u,w)")));
  // Redundant atoms vanish in the core: R(x,y), R(u,v) is connected (its
  // core is the single atom R(x,y)).
  EXPECT_TRUE(IsConnectedQuery(*ParseCq(schema_, "R(x,y), R(u,v)")));
  // UCQ: connected iff every disjunct's support is connected.
  EXPECT_TRUE(IsConnectedQuery(*ParseUcq(schema_, "R(x,y) | S(x,y), T(y,z)")));
  EXPECT_FALSE(IsConnectedQuery(*ParseUcq(schema_, "R(x,y) | S(x,y), T(u,w)")));
}

TEST_F(StructureTest, MaximalVariableConnectedSubqueries) {
  CqPtr q = ParseCq(schema_, "R(x), S(x,y), T(y), P(u,w)");
  auto subqueries = MaximalVariableConnectedSubqueries(*q);
  ASSERT_EQ(subqueries.size(), 2u);
  EXPECT_EQ(subqueries[0]->atoms().size() + subqueries[1]->atoms().size(), 4u);
}

TEST_F(StructureTest, SubqueriesCarryCoveredNegations) {
  CqPtr q = ParseCq(schema_, "A(x), B(y), !S(x), P(y,z)");
  auto subqueries = MaximalVariableConnectedSubqueries(*q);
  ASSERT_EQ(subqueries.size(), 2u);
  // The component containing A(x) carries !S(x).
  bool found = false;
  for (const CqPtr& sub : subqueries) {
    for (const Atom& neg : sub->negated_atoms()) {
      (void)neg;
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace shapley
