#include "shapley/engines/fgmc.h"

#include <gtest/gtest.h>

#include "shapley/data/parser.h"
#include "shapley/gen/generators.h"
#include "shapley/query/path_query.h"
#include "shapley/query/query_parser.h"

namespace shapley {
namespace {

class FgmcTest : public ::testing::Test {
 protected:
  FgmcTest() : schema_(Schema::Create()) {}
  std::shared_ptr<Schema> schema_;
  BruteForceFgmc brute_;
  LineageFgmc lineage_;
  LiftedFgmc lifted_;
};

TEST_F(FgmcTest, HandComputedCounts) {
  // q = R(x,y), S(y): D = {R(a,b), R(c,b), S(b)} all endogenous.
  CqPtr q = ParseCq(schema_, "R(x,y), S(y)");
  PartitionedDatabase db =
      ParsePartitionedDatabase(schema_, "R(a,b) R(c,b) S(b)");
  Polynomial counts = brute_.CountBySize(*q, db);
  // Size 2: {R(a,b),S(b)}, {R(c,b),S(b)} -> 2. Size 3: the whole db -> 1.
  EXPECT_EQ(counts.Coefficient(0), BigInt(0));
  EXPECT_EQ(counts.Coefficient(1), BigInt(0));
  EXPECT_EQ(counts.Coefficient(2), BigInt(2));
  EXPECT_EQ(counts.Coefficient(3), BigInt(1));
  EXPECT_EQ(brute_.Gmc(*q, db), BigInt(3));
}

TEST_F(FgmcTest, ExogenousFactsAlwaysPresent) {
  CqPtr q = ParseCq(schema_, "R(x,y), S(y)");
  PartitionedDatabase db = ParsePartitionedDatabase(schema_, "R(a,b) | S(b)");
  Polynomial counts = brute_.CountBySize(*q, db);
  EXPECT_EQ(counts.Coefficient(0), BigInt(0));
  EXPECT_EQ(counts.Coefficient(1), BigInt(1));
}

TEST_F(FgmcTest, EnginesAgreeOnRandomCqInstances) {
  auto schema = Schema::Create();
  CqPtr q = ParseCq(schema, "R(x), S(x,y)");  // Hierarchical sjf.
  for (uint64_t seed = 0; seed < 20; ++seed) {
    RandomDatabaseOptions options;
    options.num_facts = 9;
    options.domain_size = 3;
    options.exogenous_fraction = 0.25;
    options.seed = seed;
    PartitionedDatabase db = RandomPartitionedDatabase(schema, options);
    Polynomial expected = brute_.CountBySize(*q, db);
    EXPECT_EQ(lineage_.CountBySize(*q, db), expected) << "seed " << seed;
    EXPECT_EQ(lifted_.CountBySize(*q, db), expected) << "seed " << seed;
  }
}

TEST_F(FgmcTest, EnginesAgreeOnNonHierarchicalQuery) {
  // Lifted must refuse; lineage must still be exact.
  auto schema = Schema::Create();
  CqPtr q = ParseCq(schema, "R(x), S(x,y), T(y)");
  PartitionedDatabase db = RstGadget(schema, 3, 3, 0.6, 7);
  EXPECT_EQ(lineage_.CountBySize(*q, db), brute_.CountBySize(*q, db));
  EXPECT_THROW(lifted_.CountBySize(*q, db), std::invalid_argument);
}

TEST_F(FgmcTest, EnginesAgreeOnUcq) {
  auto schema = Schema::Create();
  UcqPtr q = ParseUcq(schema, "R(x), S(x,y) | T(y)");
  for (uint64_t seed = 0; seed < 10; ++seed) {
    RandomDatabaseOptions options;
    options.num_facts = 8;
    options.domain_size = 3;
    options.seed = seed + 100;
    PartitionedDatabase db = RandomPartitionedDatabase(schema, options);
    EXPECT_EQ(lineage_.CountBySize(*q, db), brute_.CountBySize(*q, db))
        << "seed " << seed;
  }
}

TEST_F(FgmcTest, EnginesAgreeOnRpq) {
  auto schema = Schema::Create();
  RpqPtr q = RegularPathQuery::Create(schema, Regex::Parse("A A | B"),
                                      Constant::Named("v0"),
                                      Constant::Named("v2"));
  for (uint64_t seed = 0; seed < 10; ++seed) {
    Database graph = RandomGraph(schema, {"A", "B"}, 4, 0.3, seed + 5);
    PartitionedDatabase db = PartitionedDatabase::AllEndogenous(graph);
    if (db.NumEndogenous() > 14) continue;
    EXPECT_EQ(lineage_.CountBySize(*q, db), brute_.CountBySize(*q, db))
        << "seed " << seed;
  }
}

TEST_F(FgmcTest, LiftedMatchesBruteWithConstantsInQuery) {
  auto schema = Schema::Create();
  CqPtr q = ParseCq(schema, "R(a, x), S(x, y)");
  for (uint64_t seed = 0; seed < 10; ++seed) {
    RandomDatabaseOptions options;
    options.num_facts = 8;
    options.domain_size = 3;  // Includes chances of the constant 'a'? No —
    options.seed = seed;      // domain is c0..c2; add 'a' facts manually.
    PartitionedDatabase db = RandomPartitionedDatabase(schema, options);
    db.AddEndogenous(ParseFact(schema, "R(a,c0)"));
    EXPECT_EQ(lifted_.CountBySize(*q, db), brute_.CountBySize(*q, db))
        << "seed " << seed;
  }
}

TEST_F(FgmcTest, LiftedPolynomialScalesToLargeInstances) {
  // 300 facts would be far beyond brute force; lifted handles it easily and
  // total counts must match the closed form for this decomposed query.
  auto schema = Schema::Create();
  CqPtr q = ParseCq(schema, "U(x), W(y)");
  RelationId u = schema->AddRelation("U", 1);
  RelationId w = schema->AddRelation("W", 1);
  Database endo(schema);
  for (int i = 0; i < 150; ++i) {
    endo.Insert(Fact(u, {Constant::Named("u" + std::to_string(i))}));
    endo.Insert(Fact(w, {Constant::Named("w" + std::to_string(i))}));
  }
  PartitionedDatabase db = PartitionedDatabase::AllEndogenous(endo);
  Polynomial counts = lifted_.CountBySize(*q, db);
  // GMC = (2^150 - 1)^2 (nonempty choice on each side, free rest).
  BigInt expected = (BigInt::Pow(2, 150) - 1) * (BigInt::Pow(2, 150) - 1);
  EXPECT_EQ(counts.SumOfCoefficients(), expected);
}

TEST_F(FgmcTest, GroundAtomQueries) {
  auto schema = Schema::Create();
  CqPtr q = ParseCq(schema, "R(a,b)");
  PartitionedDatabase db = ParsePartitionedDatabase(schema, "R(a,b) R(c,d)");
  Polynomial expected = brute_.CountBySize(*q, db);
  EXPECT_EQ(lifted_.CountBySize(*q, db), expected);
  EXPECT_EQ(lineage_.CountBySize(*q, db), expected);
  // Ground fact absent: everything zero.
  PartitionedDatabase empty_db = ParsePartitionedDatabase(schema, "R(c,d)");
  EXPECT_TRUE(lifted_.CountBySize(*q, empty_db).IsZero());
}

TEST_F(FgmcTest, FmcOnPurelyEndogenous) {
  auto schema = Schema::Create();
  CqPtr q = ParseCq(schema, "R(x,x)");
  Database db = ParseDatabase(schema, "R(a,a) R(a,b)");
  Polynomial counts = brute_.FmcBySize(*q, db);
  // Supports: any subset containing R(a,a): sizes 1 and 2.
  EXPECT_EQ(counts.Coefficient(1), BigInt(1));
  EXPECT_EQ(counts.Coefficient(2), BigInt(1));
}

TEST_F(FgmcTest, NegationHandledByBruteForce) {
  auto schema = Schema::Create();
  CqPtr q = ParseCq(schema, "A(x), !B(x)");
  PartitionedDatabase db = ParsePartitionedDatabase(schema, "A(a) B(a) A(c)");
  Polynomial counts = brute_.CountBySize(*q, db);
  // Worlds satisfying: must contain A(c) (A(a) is blocked when B(a) in),
  // or contain A(a) but not B(a).
  // Enumerate: subsets of {A(a),B(a),A(c)}: satisfied iff A(c)∈S or
  // (A(a)∈S ∧ B(a)∉S): by size: j=1: {A(a)},{A(c)} -> 2; j=2:
  // {A(a),A(c)},{B(a),A(c)},{A(a),B(a)}? last: A(a) blocked, no A(c) -> no.
  // -> 2; j=3: all: A(c) present -> 1.
  EXPECT_EQ(counts.Coefficient(1), BigInt(2));
  EXPECT_EQ(counts.Coefficient(2), BigInt(2));
  EXPECT_EQ(counts.Coefficient(3), BigInt(1));
}

}  // namespace
}  // namespace shapley
