#include "shapley/engines/game.h"

#include <random>

#include <gtest/gtest.h>

#include "shapley/arith/factorial.h"

namespace shapley {
namespace {

TEST(GameTest, SingleWinningPlayerTakesAll) {
  // v(S) = 1 iff player 0 in S: Sh(0) = 1, others 0.
  BinaryWealth wealth = [](uint64_t mask) { return (mask & 1) != 0; };
  EXPECT_EQ(ShapleyValueBySubsets(4, wealth, 0), BigRational(1));
  for (size_t p = 1; p < 4; ++p) {
    EXPECT_EQ(ShapleyValueBySubsets(4, wealth, p), BigRational(0));
  }
}

TEST(GameTest, UnanimityGameSplitsEqually) {
  // v(S) = 1 iff S = full set: everyone gets 1/n.
  for (size_t n : {2, 3, 5}) {
    uint64_t full = (uint64_t{1} << n) - 1;
    BinaryWealth wealth = [full](uint64_t mask) { return mask == full; };
    for (size_t p = 0; p < n; ++p) {
      EXPECT_EQ(ShapleyValueBySubsets(n, wealth, p),
                BigRational(BigInt(1), BigInt(static_cast<int64_t>(n))));
    }
  }
}

TEST(GameTest, SubsetsMatchPermutationsOnRandomGames) {
  std::mt19937_64 rng(23);
  for (int trial = 0; trial < 40; ++trial) {
    size_t n = 2 + rng() % 5;  // 2..6 players.
    // Random monotone game from random generator coalitions.
    std::vector<uint64_t> generators;
    for (int g = 0; g < 3; ++g) {
      uint64_t gen = rng() % (uint64_t{1} << n);
      if (gen != 0) generators.push_back(gen);
    }
    BinaryWealth wealth = [&generators](uint64_t mask) {
      for (uint64_t gen : generators) {
        if ((mask & gen) == gen) return true;
      }
      return false;
    };
    for (size_t p = 0; p < n; ++p) {
      EXPECT_EQ(ShapleyValueBySubsets(n, wealth, p),
                ShapleyValueByPermutations(n, wealth, p))
          << "trial " << trial << " player " << p;
    }
  }
}

TEST(GameTest, EfficiencyOnArbitraryBinaryGames) {
  std::mt19937_64 rng(29);
  for (int trial = 0; trial < 30; ++trial) {
    size_t n = 2 + rng() % 4;
    // Arbitrary (possibly non-monotone) binary game with v(∅) = 0.
    std::vector<char> table(size_t{1} << n);
    for (size_t m = 1; m < table.size(); ++m) table[m] = rng() % 2;
    table[0] = 0;
    BinaryWealth wealth = [&table](uint64_t mask) { return table[mask] != 0; };
    BigRational sum(0);
    for (size_t p = 0; p < n; ++p) {
      sum += ShapleyValueBySubsets(n, wealth, p);
    }
    EXPECT_EQ(sum, BigRational(static_cast<int64_t>(table.back())))
        << "trial " << trial;
  }
}

TEST(GameTest, Lemma63SingletonWinnerIsMaximal) {
  // Monotone binary game with v({s}) = 1: Sh(p) <= Sh(s) for all p.
  std::mt19937_64 rng(31);
  for (int trial = 0; trial < 30; ++trial) {
    size_t n = 3 + rng() % 4;
    std::vector<uint64_t> generators = {uint64_t{1}};  // Player 0 singleton.
    for (int g = 0; g < 3; ++g) {
      uint64_t gen = rng() % (uint64_t{1} << n);
      if (gen != 0) generators.push_back(gen);
    }
    BinaryWealth wealth = [&generators](uint64_t mask) {
      for (uint64_t gen : generators) {
        if ((mask & gen) == gen) return true;
      }
      return false;
    };
    BigRational s_value = ShapleyValueBySubsets(n, wealth, 0);
    for (size_t p = 1; p < n; ++p) {
      EXPECT_LE(ShapleyValueBySubsets(n, wealth, p), s_value)
          << "trial " << trial;
    }
  }
}

TEST(GameTest, SizeLimitsEnforced) {
  BinaryWealth wealth = [](uint64_t) { return true; };
  EXPECT_THROW(ShapleyValueBySubsets(26, wealth, 0), std::invalid_argument);
  EXPECT_THROW(ShapleyValueByPermutations(10, wealth, 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace shapley
