#include "shapley/engines/constants.h"

#include <gtest/gtest.h>

#include "shapley/data/parser.h"
#include "shapley/gen/generators.h"
#include "shapley/query/query_parser.h"

namespace shapley {
namespace {

class ConstantsTest : public ::testing::Test {
 protected:
  ConstantsTest() : schema_(Schema::Create()) {}

  ConstantPartition SplitByPrefix(const Database& db, const char* prefix) {
    ConstantPartition partition;
    for (Constant c : db.Constants()) {
      if (c.name().rfind(prefix, 0) == 0) {
        partition.endogenous.insert(c);
      } else {
        partition.exogenous.insert(c);
      }
    }
    return partition;
  }

  std::shared_ptr<Schema> schema_;
};

TEST_F(ConstantsTest, PaperExampleQStar) {
  // Publication/Keyword with two authors, one Shapley paper each... a1's
  // paper is the only Shapley paper: a1 takes all the credit.
  Database db = ParseDatabase(schema_,
      "Publication(a1, p1) Publication(a2, p2) "
      "Keyword(p1, Shapley) Keyword(p2, Databases)");
  CqPtr q = ParseCq(schema_, "Publication(x,y), Keyword(y,$Shapley)");
  ConstantPartition partition = SplitByPrefix(db, "a");

  auto values = AllSvcConstBruteForce(*q, db, partition);
  EXPECT_EQ(values.at(Constant::Named("a1")), BigRational(1));
  EXPECT_EQ(values.at(Constant::Named("a2")), BigRational(0));
}

TEST_F(ConstantsTest, SharedCreditSplits) {
  // Two authors on the single Shapley paper: 1/2 each.
  Database db = ParseDatabase(schema_,
      "Publication(a1, p1) Publication(a2, p1) Keyword(p1, Shapley)");
  CqPtr q = ParseCq(schema_, "Publication(x,y), Keyword(y,$Shapley)");
  ConstantPartition partition = SplitByPrefix(db, "a");
  auto values = AllSvcConstBruteForce(*q, db, partition);
  BigRational half(BigInt(1), BigInt(2));
  EXPECT_EQ(values.at(Constant::Named("a1")), half);
  EXPECT_EQ(values.at(Constant::Named("a2")), half);
}

TEST_F(ConstantsTest, FgmcConstCountsCoalitions) {
  Database db = ParseDatabase(schema_,
      "Publication(a1, p1) Publication(a2, p1) Keyword(p1, Shapley)");
  CqPtr q = ParseCq(schema_, "Publication(x,y), Keyword(y,$Shapley)");
  ConstantPartition partition = SplitByPrefix(db, "a");
  Polynomial counts = FgmcConstBySize(*q, db, partition);
  // Coalitions: {} no, {a1} yes, {a2} yes, {a1,a2} yes.
  EXPECT_EQ(counts.Coefficient(0), BigInt(0));
  EXPECT_EQ(counts.Coefficient(1), BigInt(2));
  EXPECT_EQ(counts.Coefficient(2), BigInt(1));
}

TEST_F(ConstantsTest, EfficiencyOverConstants) {
  auto schema = Schema::Create();
  CqPtr q = ParseCq(schema, "R(x,y), S(y,z)");
  for (uint64_t seed = 0; seed < 6; ++seed) {
    RandomDatabaseOptions options;
    options.num_facts = 6;
    options.domain_size = 4;
    options.exogenous_fraction = 0.0;
    options.seed = seed + 60;
    Database db = RandomPartitionedDatabase(schema, options).AllFacts();
    ConstantPartition partition;
    size_t i = 0;
    for (Constant c : db.Constants()) {
      ((i++ % 3 == 0) ? partition.exogenous : partition.endogenous).insert(c);
    }
    if (partition.endogenous.empty()) continue;
    auto values = AllSvcConstBruteForce(*q, db, partition);
    BigRational sum(0);
    for (const auto& [c, v] : values) sum += v;
    std::set<Constant> all = partition.exogenous;
    all.insert(partition.endogenous.begin(), partition.endogenous.end());
    bool full = q->Evaluate(db.InducedByConstants(all));
    bool empty = q->Evaluate(db.InducedByConstants(partition.exogenous));
    int expected = (full && !empty) ? 1 : 0;
    EXPECT_EQ(sum, BigRational(expected)) << "seed " << seed;
  }
}

TEST_F(ConstantsTest, ViaFgmcMatchesBruteForce) {
  auto schema = Schema::Create();
  CqPtr q = ParseCq(schema, "R(x,y), S(y,z)");
  FgmcConstOracle oracle = [&q](const Database& d,
                                const ConstantPartition& p) {
    return FgmcConstBySize(*q, d, p);
  };
  for (uint64_t seed = 0; seed < 6; ++seed) {
    RandomDatabaseOptions options;
    options.num_facts = 6;
    options.domain_size = 4;
    options.exogenous_fraction = 0.0;
    options.seed = seed + 70;
    Database db = RandomPartitionedDatabase(schema, options).AllFacts();
    ConstantPartition partition;
    size_t i = 0;
    for (Constant c : db.Constants()) {
      ((i++ % 2 == 0) ? partition.endogenous : partition.exogenous).insert(c);
    }
    for (Constant c : partition.endogenous) {
      EXPECT_EQ(SvcConstViaFgmcConst(*q, db, partition, c, oracle),
                SvcConstBruteForce(*q, db, partition, c))
          << "seed " << seed;
    }
  }
}

TEST_F(ConstantsTest, ValidationRejectsBadPartitions) {
  Database db = ParseDatabase(schema_, "R(a,b)");
  CqPtr q = ParseCq(schema_, "R(x,y)");
  ConstantPartition overlapping;
  overlapping.endogenous = {Constant::Named("a"), Constant::Named("b")};
  overlapping.exogenous = {Constant::Named("a")};
  EXPECT_THROW(FgmcConstBySize(*q, db, overlapping), std::invalid_argument);

  ConstantPartition incomplete;
  incomplete.endogenous = {Constant::Named("a")};
  EXPECT_THROW(FgmcConstBySize(*q, db, incomplete), std::invalid_argument);
}

TEST_F(ConstantsTest, NonMonotoneRejected) {
  Database db = ParseDatabase(schema_, "A(a)");
  CqPtr q = ParseCq(schema_, "A(x), !B(x)");
  ConstantPartition partition;
  partition.endogenous = {Constant::Named("a")};
  EXPECT_THROW(FgmcConstBySize(*q, db, partition), std::invalid_argument);
}

}  // namespace
}  // namespace shapley
