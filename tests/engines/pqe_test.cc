#include "shapley/engines/pqe.h"

#include <random>

#include <gtest/gtest.h>

#include "shapley/data/parser.h"
#include "shapley/gen/generators.h"
#include "shapley/query/query_parser.h"

namespace shapley {
namespace {

class PqeTest : public ::testing::Test {
 protected:
  PqeTest() : schema_(Schema::Create()) {}

  static BigRational Frac(int64_t num, int64_t den) {
    return BigRational(BigInt(num), BigInt(den));
  }

  std::shared_ptr<Schema> schema_;
  BruteForcePqe brute_;
  LineagePqe lineage_;
  LiftedPqe lifted_;
};

TEST_F(PqeTest, SingleFactProbability) {
  CqPtr q = ParseCq(schema_, "R(x,y)");
  ProbabilisticDatabase db(schema_);
  db.AddFact(ParseFact(schema_, "R(a,b)"), Frac(1, 3));
  EXPECT_EQ(brute_.Probability(*q, db), Frac(1, 3));
  EXPECT_EQ(lineage_.Probability(*q, db), Frac(1, 3));
  EXPECT_EQ(lifted_.Probability(*q, db), Frac(1, 3));
}

TEST_F(PqeTest, IndependentDisjunction) {
  CqPtr q = ParseCq(schema_, "R(x,y)");
  ProbabilisticDatabase db(schema_);
  db.AddFact(ParseFact(schema_, "R(a,b)"), Frac(1, 2));
  db.AddFact(ParseFact(schema_, "R(c,d)"), Frac(1, 2));
  // 1 - (1/2)^2 = 3/4.
  EXPECT_EQ(brute_.Probability(*q, db), Frac(3, 4));
  EXPECT_EQ(lifted_.Probability(*q, db), Frac(3, 4));
}

TEST_F(PqeTest, JoinProbability) {
  CqPtr q = ParseCq(schema_, "R(x,y), S(y)");
  ProbabilisticDatabase db(schema_);
  db.AddFact(ParseFact(schema_, "R(a,b)"), Frac(1, 2));
  db.AddFact(ParseFact(schema_, "S(b)"), Frac(1, 3));
  EXPECT_EQ(brute_.Probability(*q, db), Frac(1, 6));
  EXPECT_EQ(lifted_.Probability(*q, db), Frac(1, 6));
  EXPECT_EQ(lineage_.Probability(*q, db), Frac(1, 6));
}

TEST_F(PqeTest, EnginesAgreeOnRandomInstances) {
  auto schema = Schema::Create();
  CqPtr q = ParseCq(schema, "R(x), S(x,y)");
  std::mt19937_64 rng(9);
  for (uint64_t seed = 0; seed < 15; ++seed) {
    RandomDatabaseOptions options;
    options.num_facts = 8;
    options.domain_size = 3;
    options.exogenous_fraction = 0.0;
    options.seed = seed + 200;
    PartitionedDatabase pdb = RandomPartitionedDatabase(schema, options);
    ProbabilisticDatabase db(schema);
    for (const Fact& f : pdb.endogenous().facts()) {
      db.AddFact(f, Frac(1 + static_cast<int64_t>(rng() % 9), 10));
    }
    BigRational expected = brute_.Probability(*q, db);
    EXPECT_EQ(lineage_.Probability(*q, db), expected) << "seed " << seed;
    EXPECT_EQ(lifted_.Probability(*q, db), expected) << "seed " << seed;
  }
}

TEST_F(PqeTest, DeterministicFactsActExogenous) {
  auto schema = Schema::Create();
  CqPtr q = ParseCq(schema, "R(x,y), S(y)");
  ProbabilisticDatabase db(schema);
  db.AddFact(ParseFact(schema, "R(a,b)"), BigRational(1));
  db.AddFact(ParseFact(schema, "S(b)"), Frac(2, 5));
  EXPECT_EQ(brute_.Probability(*q, db), Frac(2, 5));
  EXPECT_EQ(lifted_.Probability(*q, db), Frac(2, 5));
  EXPECT_EQ(lineage_.Probability(*q, db), Frac(2, 5));
}

TEST_F(PqeTest, HardQueryBruteVsLineage) {
  auto schema = Schema::Create();
  CqPtr q = ParseCq(schema, "R(x), S(x,y), T(y)");
  PartitionedDatabase gadget = RstGadget(schema, 2, 2, 1.0, 3);
  ProbabilisticDatabase db(schema);
  std::mt19937_64 rng(11);
  for (const Fact& f : gadget.endogenous().facts()) {
    db.AddFact(f, Frac(1 + static_cast<int64_t>(rng() % 9), 10));
  }
  EXPECT_EQ(lineage_.Probability(*q, db), brute_.Probability(*q, db));
  EXPECT_THROW(lifted_.Probability(*q, db), std::invalid_argument);
}

TEST_F(PqeTest, SppqeShapeDetection) {
  auto schema = Schema::Create();
  PartitionedDatabase pdb =
      ParsePartitionedDatabase(schema, "R(a,b) R(c,d) | S(e)");
  ProbabilisticDatabase sppqe =
      ProbabilisticDatabase::FromPartitioned(pdb, Frac(1, 2));
  EXPECT_TRUE(sppqe.IsSingleProperProbability());
  EXPECT_FALSE(sppqe.IsSingleProbability());  // Has a probability-1 fact.

  PartitionedDatabase endo_only = ParsePartitionedDatabase(schema, "R(a,b)");
  ProbabilisticDatabase spqe =
      ProbabilisticDatabase::FromPartitioned(endo_only, Frac(1, 3));
  EXPECT_TRUE(spqe.IsSingleProbability());
}

}  // namespace
}  // namespace shapley
