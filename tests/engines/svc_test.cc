#include "shapley/engines/svc.h"

#include <gtest/gtest.h>

#include "shapley/data/parser.h"
#include "shapley/engines/pqe.h"
#include "shapley/gen/generators.h"
#include "shapley/query/query_parser.h"

namespace shapley {
namespace {

class SvcTest : public ::testing::Test {
 protected:
  SvcTest() : schema_(Schema::Create()) {}

  std::shared_ptr<Schema> schema_;
  BruteForceSvc brute_;
  PermutationSvc permutations_;
};

TEST_F(SvcTest, PaperStyleHandExample) {
  // q = R(x,y), S(y); D = {R(a,b), S(b)}: both facts are symmetric
  // bottlenecks — each has Shapley value 1/2.
  CqPtr q = ParseCq(schema_, "R(x,y), S(y)");
  PartitionedDatabase db = ParsePartitionedDatabase(schema_, "R(a,b) S(b)");
  BigRational half(BigInt(1), BigInt(2));
  EXPECT_EQ(brute_.Value(*q, db, ParseFact(schema_, "R(a,b)")), half);
  EXPECT_EQ(brute_.Value(*q, db, ParseFact(schema_, "S(b)")), half);
}

TEST_F(SvcTest, ExogenousSatisfactionZeroesTheGame) {
  CqPtr q = ParseCq(schema_, "R(x,y)");
  PartitionedDatabase db = ParsePartitionedDatabase(schema_, "R(a,b) | R(c,d)");
  EXPECT_EQ(brute_.Value(*q, db, ParseFact(schema_, "R(a,b)")), BigRational(0));
}

TEST_F(SvcTest, NullPlayerHasZeroValue) {
  CqPtr q = ParseCq(schema_, "R(x,y), S(y)");
  PartitionedDatabase db =
      ParsePartitionedDatabase(schema_, "R(a,b) S(b) T(z9)");
  EXPECT_EQ(brute_.Value(*q, db, ParseFact(schema_, "T(z9)")), BigRational(0));
}

TEST_F(SvcTest, EfficiencyAxiom) {
  // Sum of Shapley values equals v(Dn) − v(∅).
  auto schema = Schema::Create();
  UcqPtr q = ParseUcq(schema, "R(x), S(x,y) | T(y)");
  for (uint64_t seed = 0; seed < 15; ++seed) {
    RandomDatabaseOptions options;
    options.num_facts = 7;
    options.domain_size = 3;
    options.exogenous_fraction = 0.3;
    options.seed = seed + 31;
    PartitionedDatabase db = RandomPartitionedDatabase(schema, options);
    auto values = brute_.AllValues(*q, db);
    BigRational sum(0);
    for (const auto& [fact, value] : values) sum += value;
    int v_full = q->Evaluate(db.AllFacts()) ? 1 : 0;
    int v_empty = q->Evaluate(db.exogenous()) ? 1 : 0;
    EXPECT_EQ(sum, BigRational(v_full - v_empty)) << "seed " << seed;
  }
}

TEST_F(SvcTest, SubsetFormulaMatchesPermutationFormula) {
  auto schema = Schema::Create();
  CqPtr q = ParseCq(schema, "R(x), S(x,y), T(y)");
  for (uint64_t seed = 0; seed < 8; ++seed) {
    RandomDatabaseOptions options;
    options.num_facts = 6;
    options.domain_size = 3;
    options.exogenous_fraction = 0.2;
    options.seed = seed + 77;
    PartitionedDatabase db = RandomPartitionedDatabase(schema, options);
    if (db.NumEndogenous() == 0 || db.NumEndogenous() > 8) continue;
    for (const Fact& f : db.endogenous().facts()) {
      EXPECT_EQ(brute_.Value(*q, db, f), permutations_.Value(*q, db, f))
          << "seed " << seed;
    }
  }
}

TEST_F(SvcTest, ViaFgmcMatchesBruteForceAllEngines) {
  auto schema = Schema::Create();
  CqPtr hier = ParseCq(schema, "R(x), S(x,y)");
  SvcViaFgmc via_brute(std::make_shared<BruteForceFgmc>());
  SvcViaFgmc via_lineage(std::make_shared<LineageFgmc>());
  SvcViaFgmc via_lifted(std::make_shared<LiftedFgmc>());

  for (uint64_t seed = 0; seed < 12; ++seed) {
    RandomDatabaseOptions options;
    options.num_facts = 8;
    options.domain_size = 3;
    options.exogenous_fraction = 0.25;
    options.seed = seed + 13;
    PartitionedDatabase db = RandomPartitionedDatabase(schema, options);
    if (db.NumEndogenous() == 0) continue;
    for (const Fact& f : db.endogenous().facts()) {
      BigRational expected = brute_.Value(*hier, db, f);
      EXPECT_EQ(via_brute.Value(*hier, db, f), expected) << "seed " << seed;
      EXPECT_EQ(via_lineage.Value(*hier, db, f), expected) << "seed " << seed;
      EXPECT_EQ(via_lifted.Value(*hier, db, f), expected) << "seed " << seed;
    }
  }
}

TEST_F(SvcTest, LiftedPipelineIsThePolynomialAlgorithm) {
  // Hierarchical sjf-CQ on an instance far beyond brute force: 60 facts.
  auto schema = Schema::Create();
  CqPtr q = ParseCq(schema, "R(x), S(x,y)");
  RelationId r = schema->AddRelation("R", 1);
  RelationId s = schema->AddRelation("S", 2);
  Database endo(schema);
  for (int i = 0; i < 20; ++i) {
    Constant xi = Constant::Named("x" + std::to_string(i));
    endo.Insert(Fact(r, {xi}));
    endo.Insert(Fact(s, {xi, Constant::Named("y" + std::to_string(i % 5))}));
    endo.Insert(Fact(s, {xi, Constant::Named("z" + std::to_string(i % 7))}));
  }
  PartitionedDatabase db = PartitionedDatabase::AllEndogenous(endo);
  ASSERT_EQ(db.NumEndogenous(), 60u);

  SvcViaFgmc via_lifted(std::make_shared<LiftedFgmc>());
  Fact probe = Fact(r, {Constant::Named("x0")});
  BigRational value = via_lifted.Value(*q, db, probe);
  EXPECT_GT(value, BigRational(0));
  EXPECT_LT(value, BigRational(1));
}

TEST_F(SvcTest, MaxValueReturnsArgmax) {
  auto schema = Schema::Create();
  // S(b) participates in both supports; it must dominate.
  CqPtr q = ParseCq(schema, "R(x,y), S(y)");
  PartitionedDatabase db =
      ParsePartitionedDatabase(schema, "R(a,b) R(c,b) S(b)");
  auto [fact, value] = brute_.MaxValue(*q, db);
  EXPECT_EQ(fact, ParseFact(schema, "S(b)"));
  auto values = brute_.AllValues(*q, db);
  for (const auto& [f, v] : values) EXPECT_LE(v, value);
}

TEST_F(SvcTest, SymmetryAxiom) {
  auto schema = Schema::Create();
  CqPtr q = ParseCq(schema, "R(x,y), S(y)");
  PartitionedDatabase db =
      ParsePartitionedDatabase(schema, "R(a,b) R(c,b) S(b)");
  auto values = brute_.AllValues(*q, db);
  EXPECT_EQ(values.at(ParseFact(schema, "R(a,b)")),
            values.at(ParseFact(schema, "R(c,b)")));
}

TEST_F(SvcTest, NegatedQueriesSupported) {
  auto schema = Schema::Create();
  CqPtr q = ParseCq(schema, "A(x), !B(x)");
  PartitionedDatabase db = ParsePartitionedDatabase(schema, "A(a) B(a)");
  // A(a) alone satisfies; adding B(a) un-satisfies: B(a) has negative value.
  BigRational va = brute_.Value(*q, db, ParseFact(schema, "A(a)"));
  BigRational vb = brute_.Value(*q, db, ParseFact(schema, "B(a)"));
  EXPECT_GT(va, BigRational(0));
  EXPECT_LT(vb, BigRational(0));
  // Efficiency still holds: v(full) − v(∅) = 0 − 0 = 0.
  EXPECT_EQ(va + vb, BigRational(0));
}

TEST_F(SvcTest, ValueOfNonEndogenousFactThrows) {
  auto schema = Schema::Create();
  CqPtr q = ParseCq(schema, "R(x,y)");
  PartitionedDatabase db = ParsePartitionedDatabase(schema, "R(a,b) | R(c,d)");
  EXPECT_THROW(brute_.Value(*q, db, ParseFact(schema, "R(c,d)")),
               std::invalid_argument);
  EXPECT_THROW(brute_.Value(*q, db, ParseFact(schema, "R(z,z)")),
               std::invalid_argument);
}

}  // namespace
}  // namespace shapley
