// Edge cases for the lifted safe-plan engine: repeated variables in atoms,
// constants in patterns, junk facts that match no binding, empty relations,
// and mixed exogenous/endogenous universes.

#include <gtest/gtest.h>

#include "shapley/data/parser.h"
#include "shapley/engines/fgmc.h"
#include "shapley/engines/lifted.h"
#include "shapley/query/query_parser.h"

namespace shapley {
namespace {

class LiftedEdgeTest : public ::testing::Test {
 protected:
  LiftedEdgeTest() : schema_(Schema::Create()) {}
  std::shared_ptr<Schema> schema_;
  BruteForceFgmc brute_;
  LiftedFgmc lifted_;
};

TEST_F(LiftedEdgeTest, RepeatedVariableInAtom) {
  // R(x,x): only diagonal facts match; off-diagonal ones are junk.
  CqPtr q = ParseCq(schema_, "R(x,x)");
  PartitionedDatabase db =
      ParsePartitionedDatabase(schema_, "R(a,a) R(a,b) R(b,b) R(c,a)");
  EXPECT_EQ(lifted_.CountBySize(*q, db), brute_.CountBySize(*q, db));
}

TEST_F(LiftedEdgeTest, RepeatedVariableAcrossPositionsWithJoin) {
  CqPtr q = ParseCq(schema_, "R(x,x), S(x)");
  PartitionedDatabase db =
      ParsePartitionedDatabase(schema_, "R(a,a) R(b,c) S(a) S(b)");
  EXPECT_EQ(lifted_.CountBySize(*q, db), brute_.CountBySize(*q, db));
}

TEST_F(LiftedEdgeTest, ConstantInMiddlePosition) {
  CqPtr q = ParseCq(schema_, "T(x, k, y)");
  PartitionedDatabase db = ParsePartitionedDatabase(
      schema_, "T(a,k,b) T(a,m,b) T(c,k,d) | T(e,k,f)");
  EXPECT_EQ(lifted_.CountBySize(*q, db), brute_.CountBySize(*q, db));
}

TEST_F(LiftedEdgeTest, EmptyRelationMeansZero) {
  CqPtr q = ParseCq(schema_, "R(x), S(x,y)");
  schema_->AddRelation("S", 2);
  PartitionedDatabase db = ParsePartitionedDatabase(schema_, "R(a) R(b)");
  Polynomial counts = lifted_.CountBySize(*q, db);
  EXPECT_TRUE(counts.IsZero());
  EXPECT_EQ(brute_.CountBySize(*q, db), counts);
}

TEST_F(LiftedEdgeTest, AllExogenousUniverse) {
  CqPtr q = ParseCq(schema_, "R(x), S(x,y)");
  PartitionedDatabase db =
      ParsePartitionedDatabase(schema_, "| R(a) S(a,b)");
  Polynomial counts = lifted_.CountBySize(*q, db);
  // Satisfied with certainty; zero endogenous facts: FGMC_0 = 1.
  EXPECT_EQ(counts, Polynomial::Constant(1));
}

TEST_F(LiftedEdgeTest, BystanderRelationsAreFreeFactors) {
  CqPtr q = ParseCq(schema_, "R(x)");
  PartitionedDatabase db =
      ParsePartitionedDatabase(schema_, "R(a) Z(b,c) Z(d,e) Z(f,g)");
  Polynomial counts = lifted_.CountBySize(*q, db);
  EXPECT_EQ(counts, brute_.CountBySize(*q, db));
  // GMC = 2^3 (any subset of Z-facts) * 1 (R(a) required).
  EXPECT_EQ(counts.SumOfCoefficients(), BigInt(8));
}

TEST_F(LiftedEdgeTest, DeepHierarchicalQuery) {
  // Three-level hierarchy: R(x), S(x,y), T(x,y,z).
  CqPtr q = ParseCq(schema_, "R(x), S(x,y), T(x,y,z)");
  PartitionedDatabase db = ParsePartitionedDatabase(
      schema_,
      "R(a) R(b) S(a,u) S(b,u) T(a,u,p) T(a,u,q) T(b,w,p) | S(a,w)");
  EXPECT_EQ(lifted_.CountBySize(*q, db), brute_.CountBySize(*q, db));
}

TEST_F(LiftedEdgeTest, ProbabilityModeMatchesOnEdgeCases) {
  CqPtr q = ParseCq(schema_, "R(x,x), S(x)");
  std::map<Fact, BigRational> probs;
  probs.emplace(ParseFact(schema_, "R(a,a)"), BigRational(BigInt(1), BigInt(3)));
  probs.emplace(ParseFact(schema_, "R(b,c)"), BigRational(BigInt(1), BigInt(2)));
  probs.emplace(ParseFact(schema_, "S(a)"), BigRational(BigInt(2), BigInt(3)));
  BigRational lifted_p = LiftedProbability(*q, probs);
  // Direct: only the R(a,a) ∧ S(a) combination matters: 1/3 * 2/3 = 2/9.
  EXPECT_EQ(lifted_p, BigRational(BigInt(2), BigInt(9)));
}

TEST_F(LiftedEdgeTest, RefusesUnsupportedShapes) {
  EXPECT_THROW(RequireLiftedCompatible(*ParseCq(schema_, "P(x,y), P(y,z)")),
               std::invalid_argument);
  EXPECT_THROW(RequireLiftedCompatible(*ParseCq(schema_, "A(x), W(x,y), B(y)")),
               std::invalid_argument);
  EXPECT_THROW(RequireLiftedCompatible(*ParseCq(schema_, "A(x), !C(x)")),
               std::invalid_argument);
  EXPECT_NO_THROW(RequireLiftedCompatible(*ParseCq(schema_, "A(x), W(x,y)")));
}

}  // namespace
}  // namespace shapley
