#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "shapley/engines/fgmc.h"
#include "shapley/engines/svc.h"
#include "shapley/gen/generators.h"
#include "shapley/query/query_parser.h"
#include "shapley/service/shapley_service.h"

namespace shapley {
namespace {

QueryPtr ParseQuery(const std::shared_ptr<Schema>& schema, const char* text) {
  UcqPtr ucq = ParseUcq(schema, text);
  if (ucq->disjuncts().size() == 1) return ucq->disjuncts()[0];
  return ucq;
}

// Many client threads hammering Submit() on one shared service: every
// response must be bit-identical to the serial engines, no request may be
// lost, and the shared cache must stay coherent. This is the concurrency
// contract of the serving layer.
TEST(ServiceConcurrencyTest, ConcurrentClientsGetBitIdenticalValues) {
  constexpr size_t kClients = 8;
  constexpr size_t kRequestsPerClient = 8;

  auto schema = Schema::Create();
  QueryPtr easy = ParseQuery(schema, "R(x), S(x,y)");
  QueryPtr hard = ParseQuery(schema, "R(x), S(x,y), T(y)");

  // Pre-build instances and serial expectations on the main thread (the
  // generators mutate the schema; the service must only see finished
  // values).
  struct Case {
    QueryPtr query;
    PartitionedDatabase db;
    std::map<Fact, BigRational> expected;
    std::string expected_engine;
  };
  SvcViaFgmc serial_lifted(std::make_shared<LiftedFgmc>());
  BruteForceSvc serial_brute;
  std::vector<Case> cases;
  for (size_t k = 0; k < kClients * kRequestsPerClient; ++k) {
    RandomDatabaseOptions options;
    options.num_facts = 6;
    options.domain_size = 3;
    options.exogenous_fraction = 0.2;
    options.seed = 1000 + 7 * k;
    Case c;
    c.query = (k % 2 == 0) ? easy : hard;
    c.db = RandomPartitionedDatabase(schema, options);
    SvcEngine& serial = (k % 2 == 0)
                            ? static_cast<SvcEngine&>(serial_lifted)
                            : static_cast<SvcEngine&>(serial_brute);
    c.expected = serial.AllValues(*c.query, c.db);
    c.expected_engine = serial.name();
    cases.push_back(std::move(c));
  }

  ShapleyService service(ServiceOptions{.threads = 4});

  std::vector<std::vector<std::future<SvcResponse>>> per_client(kClients);
  std::vector<std::thread> clients;
  for (size_t client = 0; client < kClients; ++client) {
    clients.emplace_back([&, client] {
      for (size_t r = 0; r < kRequestsPerClient; ++r) {
        const Case& c = cases[client * kRequestsPerClient + r];
        SvcRequest request;
        request.query = c.query;
        request.db = c.db;
        per_client[client].push_back(service.Submit(std::move(request)));
      }
    });
  }
  for (std::thread& t : clients) t.join();

  for (size_t client = 0; client < kClients; ++client) {
    for (size_t r = 0; r < kRequestsPerClient; ++r) {
      const Case& c = cases[client * kRequestsPerClient + r];
      SvcResponse response = per_client[client][r].get();
      ASSERT_TRUE(response.ok())
          << "client " << client << " request " << r << ": "
          << response.error->ToString();
      EXPECT_EQ(response.engine, c.expected_engine);
      EXPECT_TRUE(response.routed_by_classifier);
      EXPECT_EQ(response.values, c.expected)
          << "client " << client << " request " << r;
    }
  }
  EXPECT_EQ(service.requests_submitted(), kClients * kRequestsPerClient);
  EXPECT_EQ(service.requests_completed(), kClients * kRequestsPerClient);
  EXPECT_EQ(service.requests_failed(), 0u);
}

// Repeated identical instances from concurrent clients answer from the
// shared cache: the lifted pipeline's oracle polynomials are computed once
// and reused, not once per client.
TEST(ServiceConcurrencyTest, ConcurrentRepeatsShareTheOracleCache) {
  auto schema = Schema::Create();
  QueryPtr q = ParseQuery(schema, "R(x), S(x,y)");
  RandomDatabaseOptions options;
  options.num_facts = 8;
  options.domain_size = 3;
  options.seed = 77;
  PartitionedDatabase db = RandomPartitionedDatabase(schema, options);

  ShapleyService service(ServiceOptions{.threads = 4});
  std::vector<std::future<SvcResponse>> futures;
  for (size_t k = 0; k < 32; ++k) {
    SvcRequest request;
    request.query = q;
    request.db = db;
    futures.push_back(service.Submit(std::move(request)));
  }
  SvcViaFgmc serial(std::make_shared<LiftedFgmc>());
  std::map<Fact, BigRational> expected = serial.AllValues(*q, db);
  for (auto& future : futures) {
    SvcResponse response = future.get();
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(response.values, expected);
  }
  ASSERT_NE(service.cache(), nullptr);
  // 32 identical instances, 1 + |Dn| distinct oracle keys: most of the
  // (32 - 1) * (1 + |Dn|) repeat requests must hit (concurrent misses on
  // one key may compute independently, so allow slack).
  EXPECT_GT(service.cache()->hits(), service.cache()->misses());
  EXPECT_GT(service.cache()->bytes_used(), 0u);
}

// Shutdown during a flood: whatever was accepted resolves (served or
// cancelled), the destructor joins cleanly, and nothing deadlocks.
TEST(ServiceConcurrencyTest, ShutdownMidFloodResolvesEveryFuture) {
  auto schema = Schema::Create();
  QueryPtr q = ParseQuery(schema, "R(x), S(x,y)");
  RandomDatabaseOptions options;
  options.num_facts = 6;
  options.seed = 5;
  PartitionedDatabase db = RandomPartitionedDatabase(schema, options);

  std::vector<std::future<SvcResponse>> futures;
  {
    ShapleyService service(ServiceOptions{.threads = 2});
    for (size_t k = 0; k < 64; ++k) {
      SvcRequest request;
      request.query = q;
      request.db = db;
      futures.push_back(service.Submit(std::move(request)));
    }
    service.Shutdown();
    // Destructor drains the queue; queued-but-unstarted requests resolve
    // with kCancelled.
  }
  size_t served = 0, cancelled = 0;
  for (auto& future : futures) {
    SvcResponse response = future.get();
    if (response.ok()) {
      ++served;
    } else {
      EXPECT_EQ(response.error->code, SvcErrorCode::kCancelled);
      ++cancelled;
    }
  }
  EXPECT_EQ(served + cancelled, 64u);
}

}  // namespace
}  // namespace shapley
