#include "shapley/service/shapley_service.h"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <vector>

#include "shapley/data/parser.h"
#include "shapley/engines/fgmc.h"
#include "shapley/engines/svc.h"
#include "shapley/gen/generators.h"
#include "shapley/query/query_parser.h"

namespace shapley {
namespace {

QueryPtr ParseQuery(const std::shared_ptr<Schema>& schema, const char* text) {
  UcqPtr ucq = ParseUcq(schema, text);
  if (ucq->disjuncts().size() == 1) return ucq->disjuncts()[0];
  return ucq;
}

PartitionedDatabase RandomDb(const std::shared_ptr<Schema>& schema,
                             uint64_t seed, size_t num_facts = 7) {
  RandomDatabaseOptions options;
  options.num_facts = num_facts;
  options.domain_size = 3;
  options.exogenous_fraction = 0.25;
  options.seed = seed;
  return RandomPartitionedDatabase(schema, options);
}

// A database with n endogenous R-facts (beyond any brute-force guard when
// n > kBruteForceMaxEndogenous).
PartitionedDatabase WideDb(const std::shared_ptr<Schema>& schema, size_t n) {
  std::string text;
  for (size_t i = 0; i < n; ++i) {
    text += "R(a" + std::to_string(i) + ") ";
  }
  text += "S(a0,b) T(b)";
  return ParsePartitionedDatabase(schema, text);
}

// The dichotomy as routing policy: the tractable hierarchical sjf-CQ goes
// to the lifted polynomial engine, the #P-hard non-hierarchical one falls
// back to guarded brute force — and both answers match the serial engines
// bit for bit.
TEST(ShapleyServiceTest, RoutesByDichotomyAndMatchesSerialEngines) {
  auto schema = Schema::Create();
  QueryPtr easy = ParseQuery(schema, "R(x), S(x,y)");
  QueryPtr hard = ParseQuery(schema, "R(x), S(x,y), T(y)");
  PartitionedDatabase db = RandomDb(schema, 7);

  ShapleyService service(ServiceOptions{.threads = 2});

  SvcRequest easy_request;
  easy_request.query = easy;
  easy_request.db = db;
  SvcResponse easy_response = service.Submit(easy_request).get();
  ASSERT_TRUE(easy_response.ok()) << easy_response.error->ToString();
  EXPECT_EQ(easy_response.engine, "via-fgmc(lifted-safe-plan)");
  EXPECT_TRUE(easy_response.routed_by_classifier);
  EXPECT_EQ(easy_response.verdict.tractability, Tractability::kFP);
  EXPECT_EQ(easy_response.verdict.query_class, "sjf-CQ");
  SvcViaFgmc serial_lifted(std::make_shared<LiftedFgmc>());
  EXPECT_EQ(easy_response.values, serial_lifted.AllValues(*easy, db));

  SvcRequest hard_request;
  hard_request.query = hard;
  hard_request.db = db;
  SvcResponse hard_response = service.Submit(hard_request).get();
  ASSERT_TRUE(hard_response.ok()) << hard_response.error->ToString();
  EXPECT_EQ(hard_response.engine, "brute-force");
  EXPECT_TRUE(hard_response.routed_by_classifier);
  EXPECT_EQ(hard_response.verdict.tractability, Tractability::kSharpPHard);
  BruteForceSvc serial_brute;
  EXPECT_EQ(hard_response.values, serial_brute.AllValues(*hard, db));
}

// The acceptance bar of the serving layer: a 64-request mixed-class batch
// submitted through the async front matches the serial per-engine
// AllValues bit for bit, with the verdict attached to every response.
TEST(ShapleyServiceTest, MixedClassBatch64IsBitIdenticalToSerialEngines) {
  auto schema = Schema::Create();
  QueryPtr easy = ParseQuery(schema, "R(x), S(x,y)");
  QueryPtr hard = ParseQuery(schema, "R(x), S(x,y), T(y)");

  std::vector<SvcRequest> requests;
  for (size_t k = 0; k < 64; ++k) {
    SvcRequest request;
    request.query = (k % 2 == 0) ? easy : hard;
    request.db = RandomDb(schema, 100 + 13 * k);
    requests.push_back(std::move(request));
  }
  // Keep copies: SubmitBatch consumes the request objects.
  std::vector<SvcRequest> reference = requests;

  ShapleyService service(ServiceOptions{.threads = 4});
  std::vector<std::future<SvcResponse>> futures =
      service.SubmitBatch(std::move(requests));
  ASSERT_EQ(futures.size(), 64u);

  SvcViaFgmc serial_lifted(std::make_shared<LiftedFgmc>());
  BruteForceSvc serial_brute;
  for (size_t k = 0; k < futures.size(); ++k) {
    SvcResponse response = futures[k].get();
    ASSERT_TRUE(response.ok()) << "request " << k << ": "
                               << response.error->ToString();
    EXPECT_NE(response.verdict.query_class, "");
    SvcEngine& serial = (k % 2 == 0)
                            ? static_cast<SvcEngine&>(serial_lifted)
                            : static_cast<SvcEngine&>(serial_brute);
    EXPECT_EQ(response.engine, serial.name()) << "request " << k;
    EXPECT_EQ(response.values,
              serial.AllValues(*reference[k].query, reference[k].db))
        << "request " << k;
  }
  EXPECT_EQ(service.requests_completed(), 64u);
  EXPECT_EQ(service.requests_failed(), 0u);
}

TEST(ShapleyServiceTest, ClassifyOnlyRunsNoEngine) {
  auto schema = Schema::Create();
  ShapleyService service(ServiceOptions{.threads = 1});

  SvcRequest request;
  request.query = ParseQuery(schema, "R(x), S(x,y), T(y)");
  request.mode = SvcMode::kClassifyOnly;
  SvcResponse response = service.Compute(request);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.engine, "");
  EXPECT_EQ(response.verdict.tractability, Tractability::kSharpPHard);
  EXPECT_TRUE(response.values.empty());
  EXPECT_TRUE(response.ranked.empty());
}

TEST(ShapleyServiceTest, MaxValueAndTopKAgreeWithAllValues) {
  auto schema = Schema::Create();
  QueryPtr q = ParseQuery(schema, "R(x), S(x,y)");
  PartitionedDatabase db = RandomDb(schema, 21);
  ASSERT_GT(db.NumEndogenous(), 2u);

  ShapleyService service(ServiceOptions{.threads = 2});

  SvcRequest all;
  all.query = q;
  all.db = db;
  SvcResponse all_response = service.Compute(all);
  ASSERT_TRUE(all_response.ok());

  SvcRequest max;
  max.query = q;
  max.db = db;
  max.mode = SvcMode::kMaxValue;
  SvcResponse max_response = service.Compute(max);
  ASSERT_TRUE(max_response.ok());
  ASSERT_EQ(max_response.ranked.size(), 1u);
  BruteForceSvc serial;
  auto [expected_fact, expected_value] = serial.MaxValue(*q, db);
  EXPECT_EQ(max_response.ranked[0].first, expected_fact);
  EXPECT_EQ(max_response.ranked[0].second, expected_value);

  SvcRequest topk;
  topk.query = q;
  topk.db = db;
  topk.mode = SvcMode::kTopK;
  topk.top_k = 3;
  SvcResponse topk_response = service.Compute(topk);
  ASSERT_TRUE(topk_response.ok());
  ASSERT_EQ(topk_response.ranked.size(),
            std::min<size_t>(3, db.NumEndogenous()));
  // Descending, ties by fact order, consistent with AllValues.
  for (size_t i = 0; i + 1 < topk_response.ranked.size(); ++i) {
    const auto& a = topk_response.ranked[i];
    const auto& b = topk_response.ranked[i + 1];
    EXPECT_TRUE(b.second < a.second ||
                (a.second == b.second && a.first < b.first));
  }
  EXPECT_EQ(topk_response.ranked[0].second, expected_value);
  for (const auto& [fact, value] : topk_response.ranked) {
    EXPECT_EQ(all_response.values.at(fact), value);
  }
}

TEST(ShapleyServiceTest, OversizedUnservableInstanceFailsWithStructuredCapacity) {
  auto schema = Schema::Create();
  // Negation rules out every engine once the exhaustive guard is passed:
  // lifted and ddnnf refuse non-monotone queries, brute/permutations are
  // guarded. Non-hierarchical with negation → #P-hard by [Reshef et al.].
  QueryPtr hard_neg = ParseQuery(schema, "R(x), S(x,y), !T(y)");
  PartitionedDatabase big = WideDb(schema, 30);
  ASSERT_GT(big.NumEndogenous(), kBruteForceMaxEndogenous);

  ShapleyService service(ServiceOptions{.threads = 1});
  SvcRequest request;
  request.query = hard_neg;
  request.db = big;
  SvcResponse response = service.Submit(request).get();
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.error->code, SvcErrorCode::kCapacityExceeded);
  // The verdict still explains *why* there is no polynomial way out.
  EXPECT_EQ(response.verdict.tractability, Tractability::kSharpPHard);
  EXPECT_EQ(response.engine, "");  // No engine ran.
}

TEST(ShapleyServiceTest, MonotoneQueryBeyondBruteGuardRoutesToDdnnf) {
  auto schema = Schema::Create();
  // #P-hard class, but this *instance* has trivial lineage, and d-DNNF
  // compilation is the only registered engine whose caps admit a monotone
  // query with |Dn| > the exhaustive guard — routing must find it instead
  // of failing.
  QueryPtr hard = ParseQuery(schema, "R(x), S(x,y), T(y)");
  PartitionedDatabase big = WideDb(schema, 30);

  ShapleyService service(ServiceOptions{.threads = 1});
  SvcRequest request;
  request.query = hard;
  request.db = big;
  SvcResponse response = service.Submit(request).get();
  ASSERT_TRUE(response.ok()) << response.error->ToString();
  EXPECT_EQ(response.engine, "via-fgmc(lineage-ddnnf)");
  EXPECT_TRUE(response.routed_by_classifier);
  EXPECT_EQ(response.values.size(), big.NumEndogenous());
}

TEST(ShapleyServiceTest, BruteForceEngineThrowsStructuredSvcException) {
  auto schema = Schema::Create();
  QueryPtr q = ParseQuery(schema, "R(x)");
  PartitionedDatabase big = WideDb(schema, 30);
  BruteForceSvc brute;
  try {
    brute.AllValues(*q, big);
    FAIL() << "expected SvcException";
  } catch (const SvcException& e) {
    EXPECT_EQ(e.error().code, SvcErrorCode::kCapacityExceeded);
    EXPECT_EQ(e.error().engine, "brute-force");
  }
  // And it is still an invalid_argument for pre-structured call sites.
  EXPECT_THROW(brute.AllValues(*q, big), std::invalid_argument);
}

TEST(ShapleyServiceTest, EngineOverridesAreValidatedAgainstCaps) {
  auto schema = Schema::Create();
  QueryPtr hard = ParseQuery(schema, "R(x), S(x,y), T(y)");
  PartitionedDatabase db = RandomDb(schema, 3);

  ShapleyService service(ServiceOptions{.threads = 1});

  SvcRequest unknown;
  unknown.query = hard;
  unknown.db = db;
  unknown.engine = "no-such-engine";
  SvcResponse unknown_response = service.Compute(unknown);
  ASSERT_FALSE(unknown_response.ok());
  EXPECT_EQ(unknown_response.error->code, SvcErrorCode::kInvalidRequest);

  SvcRequest lifted;
  lifted.query = hard;  // Non-hierarchical: outside the lifted class.
  lifted.db = db;
  lifted.engine = "lifted";
  SvcResponse lifted_response = service.Compute(lifted);
  ASSERT_FALSE(lifted_response.ok());
  EXPECT_EQ(lifted_response.error->code, SvcErrorCode::kUnsupportedQuery);
  EXPECT_EQ(lifted_response.error->engine, "lifted");

  // A supported explicit override runs and is marked as not routed.
  SvcRequest brute;
  brute.query = hard;
  brute.db = db;
  brute.engine = "brute";
  SvcResponse brute_response = service.Compute(brute);
  ASSERT_TRUE(brute_response.ok());
  EXPECT_FALSE(brute_response.routed_by_classifier);
  EXPECT_EQ(brute_response.engine, "brute-force");
}

TEST(ShapleyServiceTest, DeadlinesAndCancellationFailFast) {
  auto schema = Schema::Create();
  QueryPtr q = ParseQuery(schema, "R(x), S(x,y)");
  PartitionedDatabase db = RandomDb(schema, 9);

  ShapleyService service(ServiceOptions{.threads = 1});

  SvcRequest late;
  late.query = q;
  late.db = db;
  late.deadline =
      std::chrono::steady_clock::now() - std::chrono::milliseconds(5);
  SvcResponse late_response = service.Submit(late).get();
  ASSERT_FALSE(late_response.ok());
  EXPECT_EQ(late_response.error->code, SvcErrorCode::kDeadlineExceeded);

  CancelToken token = MakeCancelToken();
  token->store(true);
  SvcRequest cancelled;
  cancelled.query = q;
  cancelled.db = db;
  cancelled.cancel = token;
  SvcResponse cancelled_response = service.Submit(cancelled).get();
  ASSERT_FALSE(cancelled_response.ok());
  EXPECT_EQ(cancelled_response.error->code, SvcErrorCode::kCancelled);
}

TEST(ShapleyServiceTest, MalformedRequestsAreStructuredErrors) {
  auto schema = Schema::Create();
  ShapleyService service(ServiceOptions{.threads = 1});

  SvcRequest no_query;
  SvcResponse no_query_response = service.Submit(no_query).get();
  ASSERT_FALSE(no_query_response.ok());
  EXPECT_EQ(no_query_response.error->code, SvcErrorCode::kInvalidRequest);

  // MaxValue over an empty Dn: the engine's invalid_argument becomes a
  // structured error instead of escaping the worker thread.
  SvcRequest empty_dn;
  empty_dn.query = ParseQuery(schema, "R(x)");
  empty_dn.db = ParsePartitionedDatabase(schema, "| R(a)");
  empty_dn.mode = SvcMode::kMaxValue;
  SvcResponse empty_response = service.Submit(empty_dn).get();
  ASSERT_FALSE(empty_response.ok());
  EXPECT_EQ(empty_response.error->code, SvcErrorCode::kInvalidRequest);
}

TEST(ShapleyServiceTest, ShutdownResolvesNewRequestsAsCancelled) {
  auto schema = Schema::Create();
  QueryPtr q = ParseQuery(schema, "R(x)");
  ShapleyService service(ServiceOptions{.threads = 1});
  service.Shutdown();

  SvcRequest request;
  request.query = q;
  request.db = ParsePartitionedDatabase(schema, "R(a)");
  SvcResponse response = service.Submit(request).get();
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.error->code, SvcErrorCode::kCancelled);
}

TEST(ShapleyServiceTest, DefaultRegistryListsTheFiveEngines) {
  EngineRegistry registry = EngineRegistry::Default();
  EXPECT_EQ(registry.Names(),
            (std::vector<std::string>{"brute", "ddnnf", "lifted",
                                      "permutations", "sampling"}));
  ASSERT_NE(registry.Find("brute"), nullptr);
  EXPECT_EQ(registry.Find("brute")->caps.max_endogenous,
            kBruteForceMaxEndogenous);
  EXPECT_TRUE(registry.Find("lifted")->caps.hierarchical_sjf_cq_only);
  EXPECT_TRUE(registry.Find("ddnnf")->caps.monotone_only);
  EXPECT_FALSE(registry.Find("brute")->caps.approximate);
  EXPECT_TRUE(registry.Find("sampling")->caps.approximate);
  EXPECT_NE(registry.Find("sampling")->caps.error_model, "");
  EXPECT_EQ(registry.Find("nope"), nullptr);
  EXPECT_THROW(registry.Create("nope"), SvcException);
  EXPECT_EQ(registry.Create("lifted")->name(), "via-fgmc(lifted-safe-plan)");
}

// The headline of the approximation subsystem: the exact same instance
// that fails with a structured kCapacityExceeded (non-monotone, beyond
// every exact engine's reach) completes via the sampling engine once the
// request opts in — with the (ε, δ) contract attached to the response.
TEST(ShapleyServiceTest, AllowApproxRoutesPreviouslyRefusedInstanceToSampler) {
  auto schema = Schema::Create();
  QueryPtr hard_neg = ParseQuery(schema, "R(x), S(x,y), !T(y)");
  PartitionedDatabase big = WideDb(schema, 30);
  ASSERT_GT(big.NumEndogenous(), kBruteForceMaxEndogenous);

  ShapleyService service(ServiceOptions{.threads = 2});

  SvcRequest refused;
  refused.query = hard_neg;
  refused.db = big;
  SvcResponse refused_response = service.Compute(refused);
  ASSERT_FALSE(refused_response.ok());
  EXPECT_EQ(refused_response.error->code, SvcErrorCode::kCapacityExceeded);
  EXPECT_FALSE(refused_response.approx.has_value());

  SvcRequest allowed;
  allowed.query = hard_neg;
  allowed.db = big;
  allowed.allow_approx = true;
  allowed.approx = ApproxParams{.epsilon = 0.2, .delta = 0.1, .seed = 13};
  SvcResponse response = service.Compute(allowed);
  ASSERT_TRUE(response.ok()) << response.error->ToString();
  EXPECT_EQ(response.engine, "sampling");
  EXPECT_TRUE(response.routed_by_classifier);
  EXPECT_EQ(response.values.size(), big.NumEndogenous());
  ASSERT_TRUE(response.approx.has_value());
  EXPECT_EQ(response.approx->seed, 13u);
  // Ranges are per fact: every endogenous fact here is an R-fact, and R
  // only occurs positively — the per-request range-2 "query has negation"
  // tax no longer applies, so the derived budget is 4x tighter.
  EXPECT_EQ(response.approx->range, 1.0);
  EXPECT_GE(response.approx->samples, HoeffdingSamples(0.2, 0.1, 1.0));
  EXPECT_EQ(response.approx->strategy, "hoeffding");
  EXPECT_LE(response.approx->half_width, 0.2 + 1e-12);

  // Same seed through the service → bit-identical estimates, on any pool.
  SvcRequest rerun = allowed;
  EXPECT_EQ(service.Compute(rerun).values, response.values);
}

// allow_approx must also survive an exact engine dying on capacity at RUN
// time (the d-DNNF compiler can blow its node cap on instances routing
// cannot pre-screen): the service retries once with an admitting
// approximate engine instead of surfacing the refusal the caller opted
// out of.
TEST(ShapleyServiceTest, RunTimeCapacityFailureFallsBackToSamplerOnOptIn) {
  // A stand-in for "compilation blew up": admits every monotone query on
  // paper, always fails with a capacity error when run.
  class ExplodingEngine : public SvcEngine {
   public:
    std::string name() const override { return "exploding"; }
    EngineCaps caps() const override { return {.monotone_only = true}; }
    BigRational Value(const BooleanQuery&, const PartitionedDatabase&,
                      const Fact&) override {
      throw SvcException({SvcErrorCode::kCapacityExceeded,
                          "node cap exceeded", "exploding"});
    }
  };

  auto schema = Schema::Create();
  QueryPtr hard = ParseQuery(schema, "R(x), S(x,y), T(y)");
  PartitionedDatabase big = WideDb(schema, 30);

  // Replace ddnnf so the exploding engine is the routed exact choice for
  // monotone instances beyond the brute guard.
  EngineRegistry registry = EngineRegistry::Default();
  registry.Register({"ddnnf", "always-capacity-failing stand-in",
                     ExplodingEngine().caps(),
                     [] { return std::make_shared<ExplodingEngine>(); }});

  ShapleyService service(ServiceOptions{.threads = 1}, std::move(registry));

  SvcRequest refused;
  refused.query = hard;
  refused.db = big;
  SvcResponse refused_response = service.Compute(refused);
  ASSERT_FALSE(refused_response.ok());
  EXPECT_EQ(refused_response.error->code, SvcErrorCode::kCapacityExceeded);

  SvcRequest allowed;
  allowed.query = hard;
  allowed.db = big;
  allowed.allow_approx = true;
  allowed.approx = ApproxParams{.epsilon = 0.2, .delta = 0.1, .seed = 5};
  SvcResponse response = service.Compute(allowed);
  ASSERT_TRUE(response.ok()) << response.error->ToString();
  EXPECT_EQ(response.engine, "sampling");
  EXPECT_EQ(response.values.size(), big.NumEndogenous());
  ASSERT_TRUE(response.approx.has_value());
}

// Approximation is opt-in, never preferred: when an exact engine admits
// the instance, allow_approx must not change the routing — and exact
// responses carry no approx block.
TEST(ShapleyServiceTest, ExactEnginesStillWinWhenTheyAdmitTheInstance) {
  auto schema = Schema::Create();
  QueryPtr easy = ParseQuery(schema, "R(x), S(x,y)");
  PartitionedDatabase db = RandomDb(schema, 7);

  ShapleyService service(ServiceOptions{.threads = 1});
  SvcRequest request;
  request.query = easy;
  request.db = db;
  request.allow_approx = true;
  SvcResponse response = service.Compute(request);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.engine, "via-fgmc(lifted-safe-plan)");
  EXPECT_FALSE(response.approx.has_value());
}

// An explicit engine override is consent enough — "sampling" works without
// allow_approx, and its caps admit any query class at any |Dn|.
TEST(ShapleyServiceTest, ExplicitSamplingOverrideServesSmallInstancesToo) {
  auto schema = Schema::Create();
  QueryPtr easy = ParseQuery(schema, "R(x), S(x,y)");
  PartitionedDatabase db = RandomDb(schema, 7);

  ShapleyService service(ServiceOptions{.threads = 1});
  SvcRequest request;
  request.query = easy;
  request.db = db;
  request.engine = "sampling";
  request.approx = ApproxParams{.epsilon = 0.1, .delta = 0.05, .seed = 3};
  SvcResponse response = service.Compute(request);
  ASSERT_TRUE(response.ok()) << response.error->ToString();
  EXPECT_EQ(response.engine, "sampling");
  EXPECT_FALSE(response.routed_by_classifier);
  ASSERT_TRUE(response.approx.has_value());

  // Cross-validation through the serving layer: estimate within the
  // reported half-width of the exact lifted answer.
  SvcViaFgmc exact(std::make_shared<LiftedFgmc>());
  std::map<Fact, BigRational> reference = exact.AllValues(*easy, db);
  for (const auto& [fact, value] : response.values) {
    EXPECT_NEAR(value.ToDouble(), reference.at(fact).ToDouble(),
                response.approx->half_width);
  }
}

// Strategy plumbing, request → engine → response: an adaptive strategy
// override is honored, echoed back in ApproxInfo.strategy, and its sample
// count never exceeds the Hoeffding baseline the same contract would have
// drawn up front — with bit-identical reruns through the service pool.
TEST(ShapleyServiceTest, AdaptiveStrategyIsEchoedAndNeverExceedsBaseline) {
  auto schema = Schema::Create();
  // Negated so no exact engine admits the beyond-guard instance (the
  // monotone variant would route to the d-DNNF pipeline instead).
  QueryPtr hard = ParseQuery(schema, "R(x), S(x,y), !T(y)");
  PartitionedDatabase big = WideDb(schema, 30);
  ASSERT_GT(big.NumEndogenous(), kBruteForceMaxEndogenous);

  ShapleyService service(ServiceOptions{.threads = 2});
  for (ApproxStrategy strategy :
       {ApproxStrategy::kBernstein, ApproxStrategy::kStratified}) {
    SCOPED_TRACE(ToString(strategy));
    SvcRequest request;
    request.query = hard;
    request.db = big;
    request.allow_approx = true;
    request.approx = ApproxParams{
        .epsilon = 0.1, .delta = 0.1, .seed = 21, .strategy = strategy};
    SvcRequest rerun = request;

    SvcResponse response = service.Compute(std::move(request));
    ASSERT_TRUE(response.ok()) << response.error->ToString();
    EXPECT_EQ(response.engine, "sampling");
    ASSERT_TRUE(response.approx.has_value());
    EXPECT_EQ(response.approx->strategy, std::string(ToString(strategy)));
    EXPECT_LE(response.approx->samples, response.approx->hoeffding_baseline);
    EXPECT_EQ(response.approx->fact_half_widths.size(), big.NumEndogenous());
    EXPECT_EQ(response.values.size(), big.NumEndogenous());

    SvcResponse again = service.Compute(std::move(rerun));
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(again.values, response.values);
    EXPECT_EQ(again.approx->samples, response.approx->samples);
  }
}

// An out-of-range strategy in the request must come back as a structured
// SvcError from the sampling engine — not an exception through the future,
// not a silent fallback to a default strategy.
TEST(ShapleyServiceTest, UnknownApproxStrategyFailsWithStructuredError) {
  auto schema = Schema::Create();
  QueryPtr easy = ParseQuery(schema, "R(x), S(x,y)");
  PartitionedDatabase db = RandomDb(schema, 7);

  ShapleyService service(ServiceOptions{.threads = 1});
  SvcRequest request;
  request.query = easy;
  request.db = db;
  request.engine = "sampling";
  request.approx.strategy = static_cast<ApproxStrategy>(99);
  SvcResponse response = service.Compute(std::move(request));
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.error->code, SvcErrorCode::kInvalidRequest);
  EXPECT_EQ(response.error->engine, "sampling");
  EXPECT_NE(response.error->message.find("strategy"), std::string::npos);
  EXPECT_FALSE(response.approx.has_value());

  // The string side of the contract: every name the CLI accepts parses,
  // anything else is a parse failure before a request is even built.
  EXPECT_EQ(ParseApproxStrategy("bernstein"), ApproxStrategy::kBernstein);
  EXPECT_EQ(ParseApproxStrategy("stratified"), ApproxStrategy::kStratified);
  EXPECT_EQ(ParseApproxStrategy("hoeffding"), ApproxStrategy::kHoeffding);
  EXPECT_EQ(ParseApproxStrategy("wald"), std::nullopt);
}

// Strategy overrides ride the same verdict-cache fast path as everything
// else: a repeated query stream classifies once regardless of which
// sampling strategy serves each request, and the verdict in every response
// is identical.
TEST(ShapleyServiceTest, StrategyOverridesLeaveVerdictCachingUnchanged) {
  auto schema = Schema::Create();
  QueryPtr hard = ParseQuery(schema, "R(x), S(x,y), !T(y)");
  PartitionedDatabase big = WideDb(schema, 28);

  ShapleyService service(ServiceOptions{.threads = 1});
  const ApproxStrategy strategies[] = {ApproxStrategy::kHoeffding,
                                       ApproxStrategy::kBernstein,
                                       ApproxStrategy::kStratified};
  std::string verdict_class;
  for (size_t k = 0; k < 6; ++k) {
    SvcRequest request;
    request.query = hard;
    request.db = big;
    request.allow_approx = true;
    request.approx = ApproxParams{
        .epsilon = 0.15, .delta = 0.1, .seed = 4, .strategy = strategies[k % 3]};
    SvcResponse response = service.Compute(std::move(request));
    ASSERT_TRUE(response.ok()) << response.error->ToString();
    ASSERT_TRUE(response.approx.has_value());
    EXPECT_EQ(response.approx->strategy,
              std::string(ToString(strategies[k % 3])));
    if (k == 0) {
      verdict_class = response.verdict.query_class;
    } else {
      EXPECT_EQ(response.verdict.query_class, verdict_class);
    }
  }
  // 1 classification + 5 cache hits: strategies never fork the verdict key.
  EXPECT_EQ(service.verdict_cache_hits(), 5u);
}

// Verdict memoization: classification is a pure function of the query, so
// a repeated-query stream classifies once and hits the cache thereafter —
// with identical verdicts in every response.
TEST(ShapleyServiceTest, VerdictCacheSkipsReclassificationOnRepeatedQueries) {
  auto schema = Schema::Create();
  QueryPtr query = ParseQuery(schema, "R(x), S(x,y), T(y)");

  ShapleyService service(ServiceOptions{.threads = 1});
  EXPECT_EQ(service.verdict_cache_hits(), 0u);

  SvcResponse first;
  for (size_t k = 0; k < 8; ++k) {
    SvcRequest request;
    request.query = query;
    request.db = RandomDb(schema, 300 + k);
    SvcResponse response = service.Compute(request);
    ASSERT_TRUE(response.ok());
    if (k == 0) {
      first = response;
    } else {
      EXPECT_EQ(response.verdict.tractability, first.verdict.tractability);
      EXPECT_EQ(response.verdict.query_class, first.verdict.query_class);
    }
  }
  EXPECT_EQ(service.verdict_cache_hits(), 7u);
  EXPECT_EQ(service.verdict_cache_misses(), 1u);

  // Disabled cache (0 entries) keeps working, just without hits.
  ShapleyService uncached(
      ServiceOptions{.threads = 1, .verdict_cache_entries = 0});
  SvcRequest request;
  request.query = query;
  request.db = RandomDb(schema, 300);
  ASSERT_TRUE(uncached.Compute(request).ok());
  EXPECT_EQ(uncached.verdict_cache_hits(), 0u);
}

}  // namespace
}  // namespace shapley
