// End-to-end tests of the shard router over REAL TCP: a router process
// fronting three in-process `serve` stacks on ephemeral ports.
//
//  (a) a mixed exact + sampling + structured-failure batch submitted
//      THROUGH the router comes back BIT-IDENTICAL to in-process
//      ShapleyService::Compute(), and lands on exactly the backends the
//      rendezvous shard map predicts;
//  (b) failover: with one backend killed — before the batch, or mid-batch
//      via HttpServer::Abort() (a crash simulation: connections die both
//      ways) — every id is still answered, bit-identical, with the
//      retried requests landing on the key's fallback shard and ZERO
//      drops;
//  (c) when no backend can serve a shard, the router answers a structured
//      kUpstreamUnavailable (HTTP 503), never a dropped or mangled id;
//  (d) the cluster surface: /v1/cluster, fleet-summed /v1/stats, proxied
//      /v1/engines, /healthz with role "router", and the health poller
//      restoring a flapped backend;
//  (e) RetagNdjsonLine rewrites ONLY the id — unknown response fields
//      cross the router verbatim (forward compatibility);
//  (f) the router's /v1/debug/hot is ONE merged fleet view: folding each
//      backend's own sketches client-side with MergeHeavySummaries
//      reproduces it exactly, and the counts are exact under capacity.

#include "shapley/cluster/router.h"

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "shapley/cluster/shard_map.h"
#include "shapley/common/version.h"
#include "shapley/data/parser.h"
#include "shapley/net/client.h"
#include "shapley/net/server.h"
#include "shapley/obs/heavy.h"
#include "shapley/query/query_parser.h"
#include "shapley/service/shapley_service.h"

namespace shapley {
namespace {

using cluster::RouterOptions;
using cluster::ShardRouter;
using net::Json;
using net::ShapleyClient;

QueryPtr ParseQuery(const std::shared_ptr<Schema>& schema,
                    std::string_view text) {
  UcqPtr ucq = ParseUcq(schema, text);
  if (ucq->disjuncts().size() == 1) return ucq->disjuncts()[0];
  return ucq;
}

/// One backend serving stack on an ephemeral port.
struct Stack {
  explicit Stack(ServiceOptions service_options = {.threads = 2})
      : service(service_options), server(&service) {
    server.Start();
  }
  ShapleyService service;
  net::HttpServer server;
};

/// Router options tuned for tests: no background poller (health changes
/// only through observed failures — deterministic), fast dial retries so
/// failover to a dead port costs milliseconds, not the production backoff.
RouterOptions FastRouterOptions() {
  RouterOptions options;
  options.health_poll_ms = 0;
  options.client.connect_attempts = 2;
  options.client.base_backoff_ms = 1;
  options.client.max_backoff_ms = 2;
  return options;
}

/// N backend stacks plus a router over them, torn down in reverse order.
struct Fleet {
  explicit Fleet(size_t n, RouterOptions options = FastRouterOptions()) {
    for (size_t i = 0; i < n; ++i) {
      backends.push_back(std::make_unique<Stack>());
      specs.push_back("127.0.0.1:" +
                      std::to_string(backends.back()->server.port()));
    }
    router = std::make_unique<ShardRouter>(specs, options);
    router->Start();
  }
  ~Fleet() { router->Stop(); }

  /// The placement the router must agree with: any process with the same
  /// backend list computes the same rendezvous ranking.
  size_t HomeShard(const SvcRequest& request) const {
    return cluster::ShardMap(specs).Rank(cluster::ShardKeyFor(request))[0];
  }

  std::vector<std::unique_ptr<Stack>> backends;
  std::vector<std::string> specs;
  std::unique_ptr<ShardRouter> router;
};

/// The full bit-identical comparison the acceptance criterion names:
/// values, ranked order, engine, verdict, ApproxInfo and error codes.
void ExpectBitIdentical(const std::vector<SvcResponse>& actual,
                        const std::vector<SvcResponse>& expected) {
  ASSERT_EQ(actual.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    SCOPED_TRACE("request " + std::to_string(i));
    EXPECT_EQ(actual[i].ok(), expected[i].ok());
    EXPECT_EQ(actual[i].values, expected[i].values);
    EXPECT_EQ(actual[i].ranked, expected[i].ranked);
    EXPECT_EQ(actual[i].engine, expected[i].engine);
    EXPECT_EQ(actual[i].verdict.query_class, expected[i].verdict.query_class);
    ASSERT_EQ(actual[i].approx.has_value(), expected[i].approx.has_value());
    if (expected[i].approx.has_value()) {
      EXPECT_EQ(actual[i].approx->samples, expected[i].approx->samples);
      EXPECT_EQ(actual[i].approx->fact_samples,
                expected[i].approx->fact_samples);
      EXPECT_EQ(actual[i].approx->fact_half_widths,
                expected[i].approx->fact_half_widths);
      EXPECT_EQ(actual[i].approx->strategy, expected[i].approx->strategy);
    }
    ASSERT_EQ(actual[i].error.has_value(), expected[i].error.has_value());
    if (expected[i].error.has_value()) {
      EXPECT_EQ(actual[i].error->code, expected[i].error->code);
    }
  }
}

/// A cheap lifted-side instance; distinct `j` → distinct constants →
/// distinct canonical fingerprint → an independent shard-map key.
SvcRequest EasyInstance(const std::shared_ptr<Schema>& schema, int j) {
  const std::string a = "a" + std::to_string(j);
  SvcRequest request;
  request.query = ParseQuery(schema, "R(x), S(x,y)");
  request.db = ParsePartitionedDatabase(
      schema, "R(" + a + ") S(" + a + ",b) | S(" + a + ",c)");
  return request;
}

/// An instance sized to take real time — a fixed-count sampling run (no
/// early stopping, so the cost is a known ~tens of thousands of query
/// evaluations, far longer than the kill delay below) that is still
/// BIT-IDENTICAL wherever it executes (pure function of seed and
/// instance). `j`-dependent constants make every instance its own
/// shard-map key.
SvcRequest SlowInstance(const std::shared_ptr<Schema>& schema, int j) {
  SvcRequest request;
  request.query = ParseQuery(schema, "S(x,y), R(x), !T(y)");
  std::string db_text;
  for (int i = 0; i < 12; ++i) {
    const std::string a = "a" + std::to_string(j) + "_" + std::to_string(i);
    db_text += "R(" + a + ") ";
    db_text += "S(" + a + ",b" + std::to_string(i % 4) + ") ";
  }
  db_text += "T(b0) T(b1) | T(b2)";
  request.db = ParsePartitionedDatabase(schema, db_text);
  request.engine = "sampling";
  request.approx.epsilon = 0.025;
  request.approx.delta = 0.05;
  request.approx.seed = 5 + static_cast<uint64_t>(j);
  request.approx.strategy = ApproxStrategy::kHoeffding;
  return request;
}

/// The mixed batch of the acceptance criterion: exact lifted, exact
/// brute, sampling under every adaptive strategy, two structured
/// failures, a ranked mode — plus `extra_easy` distinct easy instances so
/// the batch demonstrably spans every shard.
std::vector<SvcRequest> MixedBatch(const std::shared_ptr<Schema>& schema,
                                   int extra_easy) {
  QueryPtr easy = ParseQuery(schema, "R(x), S(x,y)");
  QueryPtr hard = ParseQuery(schema, "R(x), S(x,y), T(y)");
  QueryPtr negated = ParseQuery(schema, "S(x,y), R(x), !T(y)");
  PartitionedDatabase db = ParsePartitionedDatabase(
      schema, "R(a) R(b) S(a,c) S(b,d) T(c) | T(d) S(a,d)");

  std::vector<SvcRequest> requests;
  {
    SvcRequest r;  // → lifted (tractable side of the dichotomy).
    r.query = easy;
    r.db = db;
    requests.push_back(r);
  }
  {
    SvcRequest r;  // → guarded brute force (#P-hard side).
    r.query = hard;
    r.db = db;
    requests.push_back(r);
  }
  for (ApproxStrategy strategy :
       {ApproxStrategy::kHoeffding, ApproxStrategy::kBernstein,
        ApproxStrategy::kStratified}) {
    SvcRequest r;  // → sampling by explicit override, per strategy.
    r.query = negated;
    r.db = db;
    r.engine = "sampling";
    r.approx.epsilon = 0.1;
    r.approx.seed = 11;
    r.approx.strategy = strategy;
    requests.push_back(r);
  }
  {
    SvcRequest r;  // → kUnsupportedQuery (lifted cannot take negation).
    r.query = negated;
    r.db = db;
    r.engine = "lifted";
    requests.push_back(r);
  }
  {
    SvcRequest r;  // → kInvalidRequest (unknown engine).
    r.query = easy;
    r.db = db;
    r.engine = "no-such-engine";
    requests.push_back(r);
  }
  for (int j = 0; j < extra_easy; ++j) {
    requests.push_back(EasyInstance(schema, j));
  }
  return requests;
}

std::vector<SvcResponse> ReferenceResponses(
    const std::vector<SvcRequest>& requests) {
  ShapleyService reference(ServiceOptions{.threads = 2});
  std::vector<SvcResponse> expected;
  for (const SvcRequest& request : requests) {
    expected.push_back(reference.Compute(request));
  }
  return expected;
}

TEST(RouterTest, MixedBatchThroughRouterIsBitIdenticalToInProcessCompute) {
  auto schema = Schema::Create();
  std::vector<SvcRequest> requests = MixedBatch(schema, /*extra_easy=*/12);
  Fleet fleet(3);

  // The test computes the placement the router MUST produce — rendezvous
  // hashing is deterministic from (key, backend ids) alone.
  std::vector<size_t> expected_routed(fleet.backends.size(), 0);
  for (const SvcRequest& request : requests) {
    ++expected_routed[fleet.HomeShard(request)];
  }

  std::vector<SvcResponse> expected = ReferenceResponses(requests);
  ShapleyClient client("127.0.0.1", fleet.router->port());
  std::vector<SvcResponse> actual = client.ComputeBatch(requests);
  ExpectBitIdentical(actual, expected);

  // Every backend served exactly its predicted share (no failures, so
  // routed == home-shard group size), and the batch genuinely scattered.
  size_t shards_used = 0;
  for (size_t i = 0; i < fleet.backends.size(); ++i) {
    SCOPED_TRACE("backend " + std::to_string(i));
    EXPECT_EQ(fleet.router->backend(i)->routed(), expected_routed[i]);
    EXPECT_EQ(fleet.router->backend(i)->failed(), 0u);
    if (expected_routed[i] > 0) ++shards_used;
  }
  EXPECT_GE(shards_used, 2u);  // 19 independent keys over 3 backends.

  // Identical instances always revisit their home shard: a repeat batch
  // doubles every per-backend count instead of re-spraying.
  std::vector<SvcResponse> again = client.ComputeBatch(requests);
  ExpectBitIdentical(again, expected);
  for (size_t i = 0; i < fleet.backends.size(); ++i) {
    EXPECT_EQ(fleet.router->backend(i)->routed(), 2 * expected_routed[i]);
  }
}

TEST(RouterTest, ComputeProxiesBackendStatusAndBodyVerbatim) {
  auto schema = Schema::Create();
  Fleet fleet(3);
  ShapleyClient client("127.0.0.1", fleet.router->port());

  SvcRequest ok_request = EasyInstance(schema, 0);
  SvcResponse ok_response = client.Compute(ok_request);
  EXPECT_TRUE(ok_response.ok());
  EXPECT_EQ(client.last_status(), 200);

  // A structured backend failure keeps its documented status through the
  // proxy hop — the router forwards, it does not reinterpret.
  SvcRequest invalid = EasyInstance(schema, 1);
  invalid.engine = "no-such-engine";
  SvcResponse invalid_response = client.Compute(invalid);
  ASSERT_TRUE(invalid_response.error.has_value());
  EXPECT_EQ(invalid_response.error->code, SvcErrorCode::kInvalidRequest);
  EXPECT_EQ(client.last_status(), 400);
}

TEST(RouterTest, KillBeforeBatchFailsOverWithZeroDrops) {
  auto schema = Schema::Create();
  std::vector<SvcRequest> requests = MixedBatch(schema, /*extra_easy=*/12);
  Fleet fleet(3);

  // Kill the backend that owns the most requests. With the poller off the
  // router still believes it healthy, so the scatter MUST discover the
  // crash through transport failures and re-route — the path under test.
  std::vector<size_t> owned(fleet.backends.size(), 0);
  for (const SvcRequest& request : requests) {
    ++owned[fleet.HomeShard(request)];
  }
  size_t victim = 0;
  for (size_t i = 1; i < owned.size(); ++i) {
    if (owned[i] > owned[victim]) victim = i;
  }
  ASSERT_GE(owned[victim], 1u);
  fleet.backends[victim]->server.Abort();

  std::vector<SvcResponse> expected = ReferenceResponses(requests);
  ShapleyClient client("127.0.0.1", fleet.router->port());
  std::vector<SvcResponse> actual = client.ComputeBatch(requests);

  // Zero drops, bit-identical — the victim's whole share was re-sent to
  // each key's fallback shard and answered there.
  ExpectBitIdentical(actual, expected);
  EXPECT_FALSE(fleet.router->backend(victim)->healthy());
  EXPECT_EQ(fleet.router->backend(victim)->failed(), owned[victim]);
  size_t retried = 0;
  for (size_t i = 0; i < fleet.backends.size(); ++i) {
    retried += fleet.router->backend(i)->retried();
  }
  EXPECT_EQ(retried, owned[victim]);
}

TEST(RouterTest, KillMidBatchFailsOverWithZeroDrops) {
  auto schema = Schema::Create();
  // Six slow, mutually distinct #P-hard instances: by pigeonhole some
  // backend owns at least two, and each takes long enough that NO line of
  // its sub-batch has streamed when the kill lands 40 ms in.
  std::vector<SvcRequest> requests;
  for (int j = 0; j < 6; ++j) requests.push_back(SlowInstance(schema, j));

  Fleet fleet(3);
  std::vector<size_t> owned(fleet.backends.size(), 0);
  for (const SvcRequest& request : requests) {
    ++owned[fleet.HomeShard(request)];
  }
  size_t victim = 0;
  for (size_t i = 1; i < owned.size(); ++i) {
    if (owned[i] > owned[victim]) victim = i;
  }
  ASSERT_GE(owned[victim], 2u);

  std::vector<SvcResponse> actual;
  std::thread submitter([&] {
    ShapleyClient client("127.0.0.1", fleet.router->port());
    actual = client.ComputeBatch(requests);
  });
  // Let the scatter reach every backend, then crash the busiest one with
  // its sub-batch in flight: connections die both ways, mid-stream.
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  fleet.backends[victim]->server.Abort();
  submitter.join();

  // Every id answered exactly once and bit-identical to in-process ground
  // truth — the undelivered ids were recomputed on their fallback shards.
  std::vector<SvcResponse> expected = ReferenceResponses(requests);
  ExpectBitIdentical(actual, expected);
  EXPECT_FALSE(fleet.router->backend(victim)->healthy());
  size_t retried = 0;
  for (size_t i = 0; i < fleet.backends.size(); ++i) {
    retried += fleet.router->backend(i)->retried();
  }
  EXPECT_EQ(retried, owned[victim]);
}

TEST(RouterTest, AllBackendsDownYieldStructuredUpstreamUnavailable) {
  auto schema = Schema::Create();
  Fleet fleet(1);
  fleet.backends[0]->server.Abort();

  ShapleyClient client("127.0.0.1", fleet.router->port());

  // Single compute: the dial fails, the shard is marked down, and the
  // router answers the documented 503 — a structured error, not a hangup.
  SvcResponse response = client.Compute(EasyInstance(schema, 0));
  ASSERT_TRUE(response.error.has_value());
  EXPECT_EQ(response.error->code, SvcErrorCode::kUpstreamUnavailable);
  EXPECT_EQ(client.last_status(), 503);

  // Batch: every id gets its own kUpstreamUnavailable line, none dropped.
  std::vector<SvcRequest> requests = {EasyInstance(schema, 1),
                                      EasyInstance(schema, 2)};
  std::vector<SvcResponse> responses = client.ComputeBatch(requests);
  ASSERT_EQ(responses.size(), requests.size());
  for (const SvcResponse& r : responses) {
    ASSERT_TRUE(r.error.has_value());
    EXPECT_EQ(r.error->code, SvcErrorCode::kUpstreamUnavailable);
  }

  int status = 0;
  const std::string body = client.RawGet("/v1/cluster", &status);
  ASSERT_EQ(status, 200);
  std::optional<Json> cluster = Json::Parse(body);
  ASSERT_TRUE(cluster.has_value());
  EXPECT_EQ(*cluster->Find("requests_unserved")->IfUint64(), 3u);
  const Json::Array* shards = cluster->Find("shards")->IfArray();
  ASSERT_NE(shards, nullptr);
  ASSERT_EQ(shards->size(), 1u);
  EXPECT_EQ((*shards)[0].Find("healthy")->IfBool(), false);
}

TEST(RouterTest, ClusterStatsEnginesAndHealthzDescribeTheFleet) {
  auto schema = Schema::Create();
  Fleet fleet(3);
  ShapleyClient client("127.0.0.1", fleet.router->port());

  std::vector<SvcRequest> requests;
  for (int j = 0; j < 5; ++j) requests.push_back(EasyInstance(schema, j));
  for (const SvcResponse& r : client.ComputeBatch(requests)) {
    ASSERT_TRUE(r.ok());
  }

  // /healthz: answered by the router itself, with the router role.
  int status = 0;
  std::optional<Json> health = Json::Parse(client.RawGet("/healthz", &status));
  ASSERT_EQ(status, 200);
  ASSERT_TRUE(health.has_value());
  EXPECT_EQ(*health->Find("status")->IfString(), "ok");
  EXPECT_EQ(*health->Find("version")->IfString(), kShapleyVersion);
  EXPECT_EQ(*health->Find("role")->IfString(), "router");

  // /v1/cluster: the shard map with per-backend health and counters.
  std::optional<Json> cluster =
      Json::Parse(client.RawGet("/v1/cluster", &status));
  ASSERT_EQ(status, 200);
  ASSERT_TRUE(cluster.has_value());
  EXPECT_EQ(*cluster->Find("role")->IfString(), "router");
  EXPECT_EQ(*cluster->Find("hash")->IfString(), "rendezvous-fnv1a64");
  EXPECT_EQ(*cluster->Find("requests_routed")->IfUint64(), 5u);
  EXPECT_EQ(*cluster->Find("requests_failed_over")->IfUint64(), 0u);
  EXPECT_EQ(*cluster->Find("requests_unserved")->IfUint64(), 0u);
  const Json::Array* shards = cluster->Find("shards")->IfArray();
  ASSERT_NE(shards, nullptr);
  ASSERT_EQ(shards->size(), fleet.backends.size());
  uint64_t routed_total = 0;
  for (size_t i = 0; i < shards->size(); ++i) {
    const Json& shard = (*shards)[i];
    EXPECT_EQ(*shard.Find("id")->IfString(), fleet.specs[i]);
    EXPECT_EQ(shard.Find("healthy")->IfBool(), true);
    routed_total += *shard.Find("routed")->IfUint64();
    EXPECT_EQ(*shard.Find("failed")->IfUint64(), 0u);
  }
  EXPECT_EQ(routed_total, 5u);

  // /v1/stats through the router LOOKS like one backend: the fleet's
  // service counters summed (probes are /healthz-only and touch none of
  // them), plus the router's own server block.
  Json stats = client.Stats();
  const Json* service = stats.Find("service");
  ASSERT_NE(service, nullptr);
  EXPECT_EQ(*service->Find("requests_submitted")->IfUint64(), 5u);
  EXPECT_EQ(*service->Find("requests_completed")->IfUint64(), 5u);
  EXPECT_EQ(*service->Find("requests_inflight")->IfUint64(), 0u);
  ASSERT_NE(stats.Find("server"), nullptr);
  EXPECT_GE(*stats.Find("server")->Find("requests_served")->IfUint64(), 1u);

  // /v1/engines: proxied from a healthy backend, same registry.
  Json engines = client.Engines();
  const Json::Array* list = engines.Find("engines")->IfArray();
  ASSERT_NE(list, nullptr);
  bool saw_sampling = false;
  for (const Json& engine : *list) {
    if (*engine.Find("name")->IfString() == "sampling") saw_sampling = true;
  }
  EXPECT_TRUE(saw_sampling);
}

TEST(RouterTest, HealthPollerRestoresAFlappedBackend) {
  RouterOptions options = FastRouterOptions();
  options.health_poll_ms = 50;
  Fleet fleet(2, options);

  // Flap a live backend down by hand: only a successful probe may restore
  // it, and the poller supplies exactly that.
  fleet.router->backend(0)->set_healthy(false);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (!fleet.router->backend(0)->healthy() &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(fleet.router->backend(0)->healthy());
}

TEST(RouterTest, RetagNdjsonLinePreservesUnknownFieldsVerbatim) {
  // A response line from some FUTURE backend: fields this build has never
  // heard of, nested arbitrarily. The router may rewrite the id and
  // NOTHING else.
  const std::string line =
      R"js({"id":3,"values":[{"fact":"R(a)","value":"1/2"}],)js"
      R"js("future_field":{"deep":[1,2,{"x":"y"}]},"another":true})js";
  const std::string retagged = cluster::RetagNdjsonLine(line, 41);
  EXPECT_EQ(retagged,
            R"js({"id":41,"values":[{"fact":"R(a)","value":"1/2"}],)js"
            R"js("future_field":{"deep":[1,2,{"x":"y"}]},"another":true})js");

  // The id moves to the front even when the input buried it.
  EXPECT_EQ(cluster::RetagNdjsonLine(R"js({"a":1,"id":9})js", 2),
            R"js({"id":2,"a":1})js");

  // Undecodable lines throw (the batch gather treats that as a transport
  // failure of the shard) instead of forwarding garbage under a new id.
  EXPECT_THROW(cluster::RetagNdjsonLine("not json", 1), std::runtime_error);
}

TEST(RouterTest, DebugHotMergesBackendSketchesIntoOneFleetView) {
  auto schema = Schema::Create();
  Fleet fleet(3);
  ShapleyClient router_client("127.0.0.1", fleet.router->port());

  // 8 distinct shard keys (spanning the fleet), each computed 3 times so
  // real counts accrue on whichever backend owns the key.
  for (int round = 0; round < 3; ++round) {
    for (int j = 0; j < 8; ++j) {
      const SvcResponse response =
          router_client.Compute(EasyInstance(schema, j));
      EXPECT_TRUE(response.ok());
    }
  }

  // Fold each backend's OWN sketches client-side...
  obs::HeavySummary keys_fold;
  obs::HeavySummary classes_fold;
  for (const auto& backend : fleet.backends) {
    ShapleyClient direct("127.0.0.1", backend->server.port());
    int status = 0;
    const std::string body = direct.RawGet("/v1/debug/hot", &status);
    ASSERT_EQ(status, 200);
    const auto parsed = Json::Parse(body);
    ASSERT_TRUE(parsed.has_value());
    const Json* sketches = parsed->Find("sketches");
    ASSERT_NE(sketches, nullptr);
    ASSERT_NE(sketches->Find("shard_key"), nullptr);
    ASSERT_NE(sketches->Find("query_class"), nullptr);
    const auto keys = obs::ParseHeavySummary(*sketches->Find("shard_key"));
    const auto classes =
        obs::ParseHeavySummary(*sketches->Find("query_class"));
    ASSERT_TRUE(keys.has_value());
    ASSERT_TRUE(classes.has_value());
    keys_fold = obs::MergeHeavySummaries(keys_fold, *keys);
    classes_fold = obs::MergeHeavySummaries(classes_fold, *classes);
  }

  // ...and the router's /v1/debug/hot must report EXACTLY that fold: the
  // router keeps no sketch of its own, so nothing is ever double-counted.
  int status = 0;
  const std::string hot = router_client.RawGet("/v1/debug/hot", &status);
  ASSERT_EQ(status, 200);
  const auto parsed = Json::Parse(hot);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_NE(parsed->Find("role"), nullptr);
  EXPECT_EQ(parsed->Find("role")->Dump(), "\"router\"");
  ASSERT_NE(parsed->Find("backends"), nullptr);
  EXPECT_EQ(parsed->Find("backends")->IfUint64().value_or(0), 3u);
  const Json* sketches = parsed->Find("sketches");
  ASSERT_NE(sketches, nullptr);
  ASSERT_NE(sketches->Find("shard_key"), nullptr);
  ASSERT_NE(sketches->Find("query_class"), nullptr);
  const auto merged_keys =
      obs::ParseHeavySummary(*sketches->Find("shard_key"));
  const auto merged_classes =
      obs::ParseHeavySummary(*sketches->Find("query_class"));
  ASSERT_TRUE(merged_keys.has_value());
  ASSERT_TRUE(merged_classes.has_value());
  EXPECT_EQ(merged_keys->hitters, keys_fold.hitters);
  EXPECT_EQ(merged_keys->total, keys_fold.total);
  EXPECT_EQ(merged_keys->evictions, keys_fold.evictions);
  EXPECT_EQ(merged_classes->hitters, classes_fold.hitters);
  EXPECT_EQ(merged_classes->total, classes_fold.total);

  // Under capacity the fleet view is EXACT: 8 distinct keys, 3 hits each,
  // and one query class carrying all 24 requests.
  EXPECT_EQ(merged_keys->total, 24u);
  ASSERT_EQ(merged_keys->hitters.size(), 8u);
  for (const obs::HeavyHitter& hitter : merged_keys->hitters) {
    EXPECT_EQ(hitter.count, 3u);
    EXPECT_EQ(hitter.error, 0u);
  }
  EXPECT_EQ(merged_classes->total, 24u);
  ASSERT_EQ(merged_classes->hitters.size(), 1u);
  EXPECT_EQ(merged_classes->hitters[0].count, 24u);
}

}  // namespace
}  // namespace shapley
