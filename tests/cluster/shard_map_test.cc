// The shard map's contract, pinned down without any network:
//
//  (a) StableHash64 IS FNV-1a 64 (reference vectors) — the hash is part
//      of the wire-level contract, since every router instance must
//      compute the same placement;
//  (b) rendezvous ranking: deterministic, a permutation of the backends,
//      and MINIMALLY DISRUPTIVE — deleting one backend remaps exactly the
//      keys that lived on it, every other key keeps its shard;
//  (c) Pick honors eligibility and falls through the ranking in order;
//  (d) ShardKeyFor is the canonical instance fingerprint: equal instances
//      (even textually different ones) share a key, distinct instances
//      get distinct keys, and a query-less request yields "".

#include "shapley/cluster/shard_map.h"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "shapley/data/parser.h"
#include "shapley/query/query_parser.h"

namespace shapley {
namespace {

using cluster::ShardKeyFor;
using cluster::ShardMap;
using cluster::StableHash64;

TEST(ShardMapTest, StableHash64MatchesFnv1a64ReferenceVectors) {
  // Offset basis and standard vectors — a regression here would silently
  // reshuffle every deployed fleet's placement.
  EXPECT_EQ(StableHash64(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(StableHash64("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(StableHash64("foobar"), 0x85944171f73967e8ull);
}

TEST(ShardMapTest, RankIsADeterministicPermutation) {
  const std::vector<std::string> ids = {"h0:1", "h1:1", "h2:1", "h3:1"};
  ShardMap map(ids);
  for (int k = 0; k < 50; ++k) {
    const std::string key = "key-" + std::to_string(k);
    const std::vector<size_t> rank = map.Rank(key);
    ASSERT_EQ(rank.size(), ids.size());
    std::vector<bool> seen(ids.size(), false);
    for (size_t i : rank) {
      ASSERT_LT(i, ids.size());
      EXPECT_FALSE(seen[i]);
      seen[i] = true;
    }
    // Same key, same map → same ranking, call after call.
    EXPECT_EQ(map.Rank(key), rank);
    // And an independently constructed map agrees (no hidden state).
    EXPECT_EQ(ShardMap(ids).Rank(key), rank);
  }
}

TEST(ShardMapTest, RemovingABackendRemapsOnlyItsOwnKeys) {
  const std::vector<std::string> ids = {"h0:1", "h1:1", "h2:1", "h3:1"};
  ShardMap full(ids);
  // The survivor map drops h1 — the rendezvous property says every key
  // NOT homed on h1 keeps its placement, and h1's keys fall to their
  // second-ranked backend.
  ShardMap survivors({"h0:1", "h2:1", "h3:1"});
  const auto survivor_index = [](size_t full_index) {
    return full_index < 1 ? full_index : full_index - 1;
  };

  size_t remapped = 0;
  for (int k = 0; k < 200; ++k) {
    const std::string key = "key-" + std::to_string(k);
    const std::vector<size_t> before = full.Rank(key);
    const size_t after = survivors.Rank(key)[0];
    if (before[0] == 1) {
      // A key that lived on the removed backend lands on its fallback.
      EXPECT_EQ(after, survivor_index(before[1]));
      ++remapped;
    } else {
      EXPECT_EQ(after, survivor_index(before[0]));
    }
  }
  // ~1/4 of 200 keys lived on h1; the property is vacuous if none did.
  EXPECT_GT(remapped, 0u);
}

TEST(ShardMapTest, PickHonorsEligibilityInRankOrder) {
  ShardMap map({"h0:1", "h1:1", "h2:1"});
  const std::string key = "some-key";
  const std::vector<size_t> rank = map.Rank(key);

  EXPECT_EQ(map.Pick(key, {true, true, true}), rank[0]);

  // Knock out the home shard: Pick falls to the next-ranked backend.
  std::vector<bool> eligible(3, true);
  eligible[rank[0]] = false;
  EXPECT_EQ(map.Pick(key, eligible), rank[1]);
  eligible[rank[1]] = false;
  EXPECT_EQ(map.Pick(key, eligible), rank[2]);
  EXPECT_EQ(map.Pick(key, {false, false, false}), ShardMap::npos);
}

TEST(ShardMapTest, ShardKeyIsTheCanonicalInstanceFingerprint) {
  auto schema = Schema::Create();
  const auto request_for = [&](const char* query_text, const char* db_text) {
    SvcRequest request;
    UcqPtr ucq = ParseUcq(schema, query_text);
    request.query =
        ucq->disjuncts().size() == 1 ? QueryPtr(ucq->disjuncts()[0]) : ucq;
    request.db = ParsePartitionedDatabase(schema, db_text);
    return request;
  };

  // Same instance, different surface text (fact order) → same key: the
  // fingerprint is canonical, so repeats warm the same backend cache.
  const SvcRequest a = request_for("R(x), S(x,y)", "R(a) S(a,b) | S(a,c)");
  const SvcRequest b = request_for("R(x), S(x,y)", "S(a,b) R(a) | S(a,c)");
  EXPECT_FALSE(ShardKeyFor(a).empty());
  EXPECT_EQ(ShardKeyFor(a), ShardKeyFor(b));

  // Any semantic difference — query, endogenous facts, or the
  // exogenous/endogenous split — moves the key.
  EXPECT_NE(ShardKeyFor(a),
            ShardKeyFor(request_for("R(x), S(x,y)", "R(a) S(a,b)")));
  EXPECT_NE(ShardKeyFor(a),
            ShardKeyFor(request_for("R(x)", "R(a) S(a,b) | S(a,c)")));
  EXPECT_NE(ShardKeyFor(a),
            ShardKeyFor(request_for("R(x), S(x,y)", "R(a) S(a,b) S(a,c)")));

  // No query → no fingerprint; the router falls back to hashing the body.
  SvcRequest empty;
  EXPECT_EQ(ShardKeyFor(empty), "");
}

}  // namespace
}  // namespace shapley
