// Integration tests: multi-module pipelines and the paper's running
// examples, end to end.

#include <gtest/gtest.h>

#include "shapley/analysis/classifier.h"
#include "shapley/analysis/structure.h"
#include "shapley/analysis/witnesses.h"
#include "shapley/data/parser.h"
#include "shapley/engines/constants.h"
#include "shapley/engines/fgmc.h"
#include "shapley/engines/svc.h"
#include "shapley/gen/generators.h"
#include "shapley/query/path_query.h"
#include "shapley/query/query_parser.h"
#include "shapley/reductions/interpolation.h"
#include "shapley/reductions/lemmas.h"

namespace shapley {
namespace {

TEST(EndToEndTest, ExampleE1ShatteringBreaksVariableConnectivity) {
  // Example E.1 of the paper: q = R(x,y) ∧ S(a,x) ∧ S(x,a) ∧ T(x,z) is
  // variable-connected (every atom contains x), but substituting x ↦ a —
  // one disjunct of the complete shattering — yields a query whose atoms
  // share no variable: the shattering destroys the Lemma 4.3 hypothesis.
  auto schema = Schema::Create();
  CqPtr q = ParseCq(schema, "R(x,y), S(a,x), S(x,a), T(x,z)");
  EXPECT_TRUE(IsVariableConnected(q->atoms()));

  CqPtr shattered = q->Substitute(Variable::Named("x"), Constant::Named("a"));
  EXPECT_FALSE(IsVariableConnected(shattered->atoms()));
  // And it is not even certifiably pseudo-connected (it has constants and
  // three variable-disjoint components).
  EXPECT_FALSE(CertifyPseudoConnected(*shattered).has_value());
}

TEST(EndToEndTest, LeakExampleFromSection41) {
  // The paper's q-leak example: q = ∃x [AB + BA](x,a) expressed as a UCQ;
  // the construction hypotheses of Lemma 4.3 fail on databases containing
  // the leak fact A(b,a) — verified through the leak detector inside the
  // analysis (see classifier_test) — yet Lemma 4.1 does not apply either
  // since the query has no certified island support. Classifier: unknown.
  auto schema = Schema::Create();
  UcqPtr q = ParseUcq(schema, "A(x,y), B(y,$a) | B(x,y), A(y,$a)");
  EXPECT_FALSE(CertifyPseudoConnected(*q).has_value());
  auto verdict = ClassifySvcComplexity(*q);
  EXPECT_EQ(verdict.tractability, Tractability::kUnknown);
}

TEST(EndToEndTest, TractablePipelineScalesBeyondBruteForce) {
  // Hierarchical sjf-CQ, 90 facts: SVC via lifted FGMC answers quickly and
  // satisfies the efficiency axiom (checked against the evaluation of the
  // query on the full database).
  auto schema = Schema::Create();
  CqPtr q = ParseCq(schema, "R(x), S(x,y)");
  RelationId r = schema->AddRelation("R", 1);
  RelationId s = schema->AddRelation("S", 2);
  Database endo(schema);
  for (int i = 0; i < 30; ++i) {
    Constant xi = Constant::Named("e2e_x" + std::to_string(i));
    endo.Insert(Fact(r, {xi}));
    endo.Insert(Fact(s, {xi, Constant::Named("e2e_y" + std::to_string(i % 4))}));
    endo.Insert(Fact(s, {xi, Constant::Named("e2e_z" + std::to_string(i % 6))}));
  }
  PartitionedDatabase db = PartitionedDatabase::AllEndogenous(endo);
  ASSERT_EQ(db.NumEndogenous(), 90u);

  SvcViaFgmc svc(std::make_shared<LiftedFgmc>());
  BigRational sum(0);
  for (const Fact& f : db.endogenous().facts()) {
    sum += svc.Value(*q, db, f);
  }
  EXPECT_EQ(sum, BigRational(1));  // Efficiency: v(Dn) − v(∅) = 1 − 0.
}

TEST(EndToEndTest, DichotomyMatchesEngineBehaviour) {
  // The classifier's FP verdicts come with a working polynomial engine; its
  // #P-hard verdicts leave only exponential engines. Spot-check both sides.
  auto schema1 = Schema::Create();
  CqPtr easy = ParseCq(schema1, "R(x), S(x,y)");
  EXPECT_EQ(ClassifySvcComplexity(*easy).tractability, Tractability::kFP);
  LiftedFgmc lifted;
  PartitionedDatabase db1 =
      ParsePartitionedDatabase(schema1, "R(a) S(a,b) R(c)");
  EXPECT_NO_THROW(lifted.CountBySize(*easy, db1));

  auto schema2 = Schema::Create();
  CqPtr hard = ParseCq(schema2, "R(x), S(x,y), T(y)");
  EXPECT_EQ(ClassifySvcComplexity(*hard).tractability,
            Tractability::kSharpPHard);
  PartitionedDatabase db2 = RstGadget(schema2, 2, 2, 1.0, 1);
  EXPECT_THROW(lifted.CountBySize(*hard, db2), std::invalid_argument);
}

TEST(EndToEndTest, ReductionChainThreeHops) {
  // FGMC --(Lemma 4.1)--> SVC --(Claim A.1)--> FGMC --(Claim A.2)--> SPPQE:
  // counting computed through a Shapley oracle that itself works through a
  // probability oracle. Exactness must survive the full chain.
  auto schema = Schema::Create();
  CqPtr q = ParseCq(schema, "R(x,y), S(y,z)");
  auto witness = CertifyPseudoConnected(*q);
  ASSERT_TRUE(witness.has_value());

  // SVC oracle built on FGMC-via-SPPQE.
  auto pqe = std::make_shared<BruteForcePqe>();
  auto fgmc_via_pqe = std::make_shared<InterpolationFgmc>(pqe);
  SvcViaFgmc svc_oracle(fgmc_via_pqe);

  PartitionedDatabase db =
      ParsePartitionedDatabase(schema, "R(a,b) S(b,c) R(d,b) | S(b,e)");
  Polynomial via_chain = FgmcViaSvcLemma41(*q, *witness, db, svc_oracle);
  BruteForceFgmc direct;
  EXPECT_EQ(via_chain, direct.CountBySize(*q, db));
}

TEST(EndToEndTest, AuthorExpertiseScenario) {
  // The Section 6.4 example on generated DBLP data: constant-level Shapley
  // values are zero exactly for authors with no Shapley-tagged paper.
  auto schema = Schema::Create();
  Database db = DblpDatabase(schema, 4, 6, 0.5, 7);
  CqPtr q = ParseCq(schema, "Publication(x,y), Keyword(y,$Shapley)");

  ConstantPartition partition;
  for (Constant c : db.Constants()) {
    if (c.name().rfind("author", 0) == 0) {
      partition.endogenous.insert(c);
    } else {
      partition.exogenous.insert(c);
    }
  }
  auto values = AllSvcConstBruteForce(*q, db, partition);

  RelationId publication = *schema->FindRelation("Publication");
  RelationId keyword = *schema->FindRelation("Keyword");
  Constant shapley = Constant::Named("Shapley");
  for (const auto& [author, value] : values) {
    bool has_shapley_paper = false;
    for (const Fact& f : db.FactsOf(publication)) {
      if (!(f.args()[0] == author)) continue;
      for (const Fact& k : db.FactsOf(keyword)) {
        if (k.args()[0] == f.args()[1] && k.args()[1] == shapley) {
          has_shapley_paper = true;
        }
      }
    }
    EXPECT_EQ(value > BigRational(0), has_shapley_paper)
        << author.name();
  }
}

TEST(EndToEndTest, RpqPipelineOnRoadNetwork) {
  // RPQ classified hard, yet exactly solvable at small scale; the Lemma 4.1
  // reduction on the graph instance agrees with brute force.
  auto schema = Schema::Create();
  RpqPtr q = RegularPathQuery::Create(schema, Regex::Parse("A A A"),
                                      Constant::Named("s"),
                                      Constant::Named("t"));
  EXPECT_EQ(ClassifySvcComplexity(*q).tractability, Tractability::kSharpPHard);

  Database graph = PathGraph(schema, "A", 3, 0.3, 5);
  PartitionedDatabase db = PartitionedDatabase::AllEndogenous(graph);
  if (db.NumEndogenous() <= 9) {
    auto witness = CertifyPseudoConnected(*q);
    ASSERT_TRUE(witness.has_value());
    BruteForceSvc oracle;
    BruteForceFgmc direct;
    EXPECT_EQ(FgmcViaSvcLemma41(*q, *witness, db, oracle),
              direct.CountBySize(*q, db));
  }
}

}  // namespace
}  // namespace shapley
